//! # fault-inject — the seeded fault corpus for repair sessions
//!
//! The VPP loop so far starts from an LLM *draft*; the repair workload
//! starts from a known-good **running** config that an operator (or a
//! bad change) has broken. This crate is the deterministic mutation
//! engine that produces those broken snapshots: it takes the rendered
//! Cisco configs of any `scenario-gen` scenario, parses them to the
//! `cisco-cfg` AST, applies one typed fault drawn from the paper's
//! observed error classes plus classic operator mistakes, and re-prints
//! canonically — so every mutation survives the print/parse cycle and
//! its **ground-truth metadata** (device, line span, class) stays
//! pinned to stable line numbers.
//!
//! ## Fault classes
//!
//! | class | mutation | first verifier that can see it |
//! |---|---|---|
//! | `wrong-neighbor` | a `neighbor` address rewritten | topology verifier |
//! | `missing-neighbor` | a neighbor's statements dropped | topology verifier |
//! | `community-wiped` | a `set community` clause removed | local carry check |
//! | `community-mistagged` | the tagged community value changed | local carry check |
//! | `permit-deny-flipped` | a route-map stanza action inverted | local check or intent diff |
//! | `prefix-bound-off-by-one` | a `network` statement's mask length ±1 | topology verifier |
//! | `clause-dropped` | a route-map stanza deleted | local deny check |
//! | `clause-reordered` | the final stanza rotated to the front | local deny check |
//! | `local-pref-inverted` | a `set local-preference` value inverted | local pref check |
//!
//! ## Determinism contract
//!
//! [`inject(configs, seed)`](inject) and [`corpus(configs, seed)`](corpus)
//! are pure functions of their inputs: the same snapshot and seed always
//! select the same router, class, and mutation site (splitmix64 stream,
//! `BTreeMap` iteration order, no ambient randomness). This is what makes
//! `BENCH_repair.json` reproducible and fault classes *enumerable* rather
//! than ad hoc.

use cisco_cfg::{CiscoConfig, SetClause};
use llm_sim::rng::SimRng;
use net_model::{Community, Prefix};
use std::collections::BTreeMap;

/// The typed fault classes the corpus can inject.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum FaultClass {
    /// A BGP neighbor statement rewritten to the wrong address.
    WrongNeighbor,
    /// A BGP neighbor's statements removed entirely.
    MissingNeighbor,
    /// A `set community` clause removed from a route-map stanza.
    CommunityWiped,
    /// The community value in a `set community` clause changed.
    CommunityMistagged,
    /// A route-map stanza's permit/deny action flipped.
    PermitDenyFlipped,
    /// A `network` statement's prefix length off by one.
    PrefixBoundOffByOne,
    /// A route-map stanza deleted from a multi-stanza map.
    ClauseDropped,
    /// A multi-stanza route-map's final stanza rotated to the front.
    ClauseReordered,
    /// A `set local-preference` value inverted across the default.
    LocalPrefInverted,
}

impl FaultClass {
    /// Every class, in injection-rotation order.
    pub const ALL: [FaultClass; 9] = [
        FaultClass::WrongNeighbor,
        FaultClass::MissingNeighbor,
        FaultClass::CommunityWiped,
        FaultClass::CommunityMistagged,
        FaultClass::PermitDenyFlipped,
        FaultClass::PrefixBoundOffByOne,
        FaultClass::ClauseDropped,
        FaultClass::ClauseReordered,
        FaultClass::LocalPrefInverted,
    ];

    /// Stable kebab-case name used in `BENCH_repair.json` keys.
    pub fn as_str(self) -> &'static str {
        match self {
            FaultClass::WrongNeighbor => "wrong-neighbor",
            FaultClass::MissingNeighbor => "missing-neighbor",
            FaultClass::CommunityWiped => "community-wiped",
            FaultClass::CommunityMistagged => "community-mistagged",
            FaultClass::PermitDenyFlipped => "permit-deny-flipped",
            FaultClass::PrefixBoundOffByOne => "prefix-bound-off-by-one",
            FaultClass::ClauseDropped => "clause-dropped",
            FaultClass::ClauseReordered => "clause-reordered",
            FaultClass::LocalPrefInverted => "local-pref-inverted",
        }
    }
}

impl std::fmt::Display for FaultClass {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.as_str())
    }
}

/// Ground-truth metadata for one injected fault: enough to score
/// localization without re-parsing any config.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct GroundTruth {
    /// The mutated router.
    pub device: String,
    /// The fault class.
    pub class: FaultClass,
    /// First changed line in the *mutated* text (1-based, inclusive).
    pub line_start: usize,
    /// Last changed line in the mutated text (1-based, inclusive). For a
    /// pure deletion this is the line now occupying the deletion point.
    pub line_end: usize,
    /// Human-readable description of the exact mutation.
    pub detail: String,
}

/// One broken snapshot: the full config set with exactly one router
/// mutated, plus the ground truth.
#[derive(Debug, Clone)]
pub struct Injection {
    /// All configs, keyed by router name; only `fault.device` differs
    /// from the clean snapshot.
    pub configs: BTreeMap<String, String>,
    /// What was broken, where.
    pub fault: GroundTruth,
}

/// The classes that can be injected into this config (parsed shape
/// permitting: a local-pref inversion needs a `set local-preference`,
/// a clause reorder needs a multi-stanza map, and so on).
pub fn applicable_classes(text: &str) -> Vec<FaultClass> {
    let (ast, warnings) = cisco_cfg::parse(text);
    if !warnings.is_empty() {
        return Vec::new();
    }
    FaultClass::ALL
        .into_iter()
        .filter(|c| class_applies(&ast, *c))
        .collect()
}

fn class_applies(ast: &CiscoConfig, class: FaultClass) -> bool {
    let bgp = ast.bgp.as_ref();
    let stanzas = || ast.route_maps.iter().flat_map(|m| &m.stanzas);
    match class {
        FaultClass::WrongNeighbor | FaultClass::MissingNeighbor => {
            bgp.map(|b| !b.neighbors.is_empty()).unwrap_or(false)
        }
        FaultClass::CommunityWiped | FaultClass::CommunityMistagged => stanzas().any(|s| {
            s.sets
                .iter()
                .any(|c| matches!(c, SetClause::Community { .. }))
        }),
        FaultClass::PermitDenyFlipped => stanzas().next().is_some(),
        FaultClass::PrefixBoundOffByOne => bgp.map(|b| !b.networks.is_empty()).unwrap_or(false),
        FaultClass::ClauseDropped | FaultClass::ClauseReordered => {
            ast.route_maps.iter().any(|m| m.stanzas.len() >= 2)
        }
        FaultClass::LocalPrefInverted => stanzas().any(|s| {
            s.sets
                .iter()
                .any(|c| matches!(c, SetClause::LocalPreference(_)))
        }),
    }
}

/// Mutates one clean config with one fault of `class`. Returns the
/// mutated canonical text and its ground-truth span/detail, or `None`
/// when the class does not apply to this config.
pub fn mutate_config(
    text: &str,
    class: FaultClass,
    rng: &mut SimRng,
) -> Option<(String, usize, usize, String)> {
    let (ast, warnings) = cisco_cfg::parse(text);
    if !warnings.is_empty() {
        return None;
    }
    // Canonicalize first so the changed-line diff below is exact.
    let base = cisco_cfg::print(&ast);
    let mut mutated_ast = ast.clone();
    let detail = apply_fault(&mut mutated_ast, class, rng)?;
    let mutated = cisco_cfg::print(&mutated_ast);
    if mutated == base {
        return None;
    }
    let (start, end) = changed_span(&base, &mutated);
    Some((mutated, start, end, detail))
}

fn apply_fault(ast: &mut CiscoConfig, class: FaultClass, rng: &mut SimRng) -> Option<String> {
    match class {
        FaultClass::WrongNeighbor => {
            let bgp = ast.bgp.as_mut()?;
            let i = rng.index(bgp.neighbors.len().max(1));
            let old = bgp.neighbors.get(i)?.addr;
            let mut octets = old.octets();
            // Walk the host octet forward until the address is fresh
            // (collisions would silently merge two neighbors).
            loop {
                octets[3] = octets[3].wrapping_add(1).max(1);
                let candidate = std::net::Ipv4Addr::from(octets);
                if bgp.neighbors.iter().all(|n| n.addr != candidate) {
                    bgp.neighbors[i].addr = candidate;
                    return Some(format!("neighbor {old} rewritten to {candidate}"));
                }
            }
        }
        FaultClass::MissingNeighbor => {
            let bgp = ast.bgp.as_mut()?;
            if bgp.neighbors.is_empty() {
                return None;
            }
            let i = rng.index(bgp.neighbors.len());
            let gone = bgp.neighbors.remove(i);
            Some(format!("neighbor {} statements removed", gone.addr))
        }
        FaultClass::CommunityWiped => {
            let (map, stanza, set) =
                pick_set_clause(ast, rng, |c| matches!(c, SetClause::Community { .. }))?;
            let name = ast.route_maps[map].name.clone();
            let seq = ast.route_maps[map].stanzas[stanza].seq;
            ast.route_maps[map].stanzas[stanza].sets.remove(set);
            Some(format!(
                "set community removed from route-map {name} seq {seq}"
            ))
        }
        FaultClass::CommunityMistagged => {
            let (map, stanza, set) =
                pick_set_clause(ast, rng, |c| matches!(c, SetClause::Community { .. }))?;
            let name = ast.route_maps[map].name.clone();
            if let SetClause::Community { communities, .. } =
                &mut ast.route_maps[map].stanzas[stanza].sets[set]
            {
                let old = *communities.first()?;
                let new = Community::new(old.high, old.low.wrapping_add(1));
                communities[0] = new;
                return Some(format!("route-map {name} tags {new} instead of {old}"));
            }
            None
        }
        FaultClass::PermitDenyFlipped => {
            let candidates: Vec<(usize, usize)> = ast
                .route_maps
                .iter()
                .enumerate()
                .flat_map(|(m, map)| (0..map.stanzas.len()).map(move |s| (m, s)))
                .collect();
            if candidates.is_empty() {
                return None;
            }
            let (m, s) = candidates[rng.index(candidates.len())];
            let name = ast.route_maps[m].name.clone();
            let stanza = &mut ast.route_maps[m].stanzas[s];
            stanza.permit = !stanza.permit;
            Some(format!(
                "route-map {name} seq {} flipped to {}",
                stanza.seq,
                if stanza.permit { "permit" } else { "deny" }
            ))
        }
        FaultClass::PrefixBoundOffByOne => {
            let bgp = ast.bgp.as_mut()?;
            if bgp.networks.is_empty() {
                return None;
            }
            let i = rng.index(bgp.networks.len());
            let old = bgp.networks[i].prefix;
            let len = if old.len() < 30 {
                old.len() + 1
            } else {
                old.len() - 1
            };
            let new = Prefix::new(old.network(), len).ok()?;
            bgp.networks[i].prefix = new;
            Some(format!("network {old} announced as {new}"))
        }
        FaultClass::ClauseDropped => {
            let candidates: Vec<usize> = ast
                .route_maps
                .iter()
                .enumerate()
                .filter(|(_, m)| m.stanzas.len() >= 2)
                .map(|(i, _)| i)
                .collect();
            if candidates.is_empty() {
                return None;
            }
            let m = candidates[rng.index(candidates.len())];
            // Drop a non-final stanza (the final one is usually the
            // permit-all catch-all; dropping a deny is the classic slip).
            let s = rng.index(ast.route_maps[m].stanzas.len() - 1);
            let name = ast.route_maps[m].name.clone();
            let gone = ast.route_maps[m].stanzas.remove(s);
            Some(format!("route-map {name} seq {} dropped", gone.seq))
        }
        FaultClass::ClauseReordered => {
            let candidates: Vec<usize> = ast
                .route_maps
                .iter()
                .enumerate()
                .filter(|(_, m)| m.stanzas.len() >= 2)
                .map(|(i, _)| i)
                .collect();
            if candidates.is_empty() {
                return None;
            }
            let m = candidates[rng.index(candidates.len())];
            let map = &mut ast.route_maps[m];
            // Rotate the final (catch-all) stanza to the front: with
            // first-match-wins every later stanza goes dead. Renumber so
            // the printed order is the evaluated order.
            let last = map.stanzas.pop().expect("len >= 2");
            map.stanzas.insert(0, last);
            let seqs: Vec<u32> = (1..=map.stanzas.len() as u32).map(|i| i * 10).collect();
            for (stanza, seq) in map.stanzas.iter_mut().zip(seqs) {
                stanza.seq = seq;
            }
            Some(format!("route-map {} catch-all moved first", map.name))
        }
        FaultClass::LocalPrefInverted => {
            let (map, stanza, set) =
                pick_set_clause(ast, rng, |c| matches!(c, SetClause::LocalPreference(_)))?;
            let name = ast.route_maps[map].name.clone();
            if let SetClause::LocalPreference(v) =
                &mut ast.route_maps[map].stanzas[stanza].sets[set]
            {
                let old = *v;
                *v = if old >= 100 { 50 } else { 200 };
                return Some(format!(
                    "route-map {name} local-preference {old} inverted to {}",
                    *v
                ));
            }
            None
        }
    }
}

/// Picks a `(map, stanza, set-clause)` index triple matching `pred`,
/// uniformly over all matches.
fn pick_set_clause(
    ast: &CiscoConfig,
    rng: &mut SimRng,
    pred: impl Fn(&SetClause) -> bool,
) -> Option<(usize, usize, usize)> {
    let mut candidates: Vec<(usize, usize, usize)> = Vec::new();
    for (m, map) in ast.route_maps.iter().enumerate() {
        for (s, stanza) in map.stanzas.iter().enumerate() {
            for (c, clause) in stanza.sets.iter().enumerate() {
                if pred(clause) {
                    candidates.push((m, s, c));
                }
            }
        }
    }
    if candidates.is_empty() {
        None
    } else {
        Some(candidates[rng.index(candidates.len())])
    }
}

/// The changed-line span between two texts: 1-based inclusive bounds in
/// the *mutated* text, computed by stripping the common line prefix and
/// suffix. A pure deletion has no changed line to point at, so its span
/// covers the deletion boundary: the surviving lines on either side of
/// the cut.
fn changed_span(base: &str, mutated: &str) -> (usize, usize) {
    let a: Vec<&str> = base.lines().collect();
    let b: Vec<&str> = mutated.lines().collect();
    let mut prefix = 0usize;
    while prefix < a.len() && prefix < b.len() && a[prefix] == b[prefix] {
        prefix += 1;
    }
    let mut suffix = 0usize;
    while suffix < a.len() - prefix
        && suffix < b.len() - prefix
        && a[a.len() - 1 - suffix] == b[b.len() - 1 - suffix]
    {
        suffix += 1;
    }
    let last = b.len().max(1);
    if b.len() - prefix - suffix == 0 {
        // Pure deletion: bracket the cut point.
        let start = prefix.max(1).min(last);
        let end = (prefix + 1).clamp(start, last);
        return (start, end);
    }
    let start = (prefix + 1).min(last);
    let end = (b.len() - suffix).clamp(start, last);
    (start, end)
}

/// Derives the injection RNG stream for a snapshot seed.
fn stream(seed: u64) -> SimRng {
    SimRng::seed_from_u64(
        seed.wrapping_mul(0xD6E8_FEB8_6659_FD93)
            .wrapping_add(0x5851_F42D),
    )
}

/// Injects one fault into a clean snapshot: picks a class uniformly over
/// the classes applicable *somewhere* in the snapshot, then a router
/// uniformly over the routers that class applies to. Deterministic per
/// `(configs, seed)`. Returns `None` only for snapshots where no class
/// applies at all (no BGP anywhere).
pub fn inject(configs: &BTreeMap<String, String>, seed: u64) -> Option<Injection> {
    let mut rng = stream(seed);
    let per_router: Vec<(&String, Vec<FaultClass>)> = configs
        .iter()
        .map(|(name, text)| (name, applicable_classes(text)))
        .collect();
    let mut classes: Vec<FaultClass> = FaultClass::ALL
        .into_iter()
        .filter(|c| per_router.iter().any(|(_, cs)| cs.contains(c)))
        .collect();
    // A mutation can still come back as a no-op for a particular router
    // (e.g. the drawn site renders identically); rotate through the
    // remaining classes rather than give up.
    while !classes.is_empty() {
        let class = classes.remove(rng.index(classes.len()));
        let routers: Vec<&String> = per_router
            .iter()
            .filter(|(_, cs)| cs.contains(&class))
            .map(|(n, _)| *n)
            .collect();
        let router = routers[rng.index(routers.len())];
        if let Some(injection) = build(configs, router, class, &mut rng) {
            return Some(injection);
        }
    }
    None
}

/// The enumerable corpus for one snapshot: one injection per applicable
/// fault class (router drawn per class). Deterministic per
/// `(configs, seed)`.
pub fn corpus(configs: &BTreeMap<String, String>, seed: u64) -> Vec<Injection> {
    let mut rng = stream(seed);
    let per_router: Vec<(&String, Vec<FaultClass>)> = configs
        .iter()
        .map(|(name, text)| (name, applicable_classes(text)))
        .collect();
    let mut out = Vec::new();
    for class in FaultClass::ALL {
        let routers: Vec<&String> = per_router
            .iter()
            .filter(|(_, cs)| cs.contains(&class))
            .map(|(n, _)| *n)
            .collect();
        if routers.is_empty() {
            continue;
        }
        let router = routers[rng.index(routers.len())];
        if let Some(injection) = build(configs, router, class, &mut rng) {
            out.push(injection);
        }
    }
    out
}

fn build(
    configs: &BTreeMap<String, String>,
    router: &str,
    class: FaultClass,
    rng: &mut SimRng,
) -> Option<Injection> {
    let clean = configs.get(router)?;
    let (mutated, line_start, line_end, detail) = mutate_config(clean, class, rng)?;
    let mut configs = configs.clone();
    configs.insert(router.to_string(), mutated);
    Some(Injection {
        configs,
        fault: GroundTruth {
            device: router.to_string(),
            class,
            line_start,
            line_end,
            detail,
        },
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    const CLEAN: &str = "\
hostname R1
!
interface Ethernet0/1
 ip address 2.0.0.1 255.255.255.0
!
interface Ethernet0/2
 ip address 3.0.0.1 255.255.255.0
!
router bgp 1
 bgp router-id 1.0.0.1
 network 2.0.0.0 mask 255.255.255.0
 network 3.0.0.0 mask 255.255.255.0
 neighbor 2.0.0.2 remote-as 2
 neighbor 2.0.0.2 send-community
 neighbor 2.0.0.2 route-map ADD_COMM_R2 in
 neighbor 2.0.0.2 route-map FILTER_COMM_OUT_R2 out
 neighbor 3.0.0.2 remote-as 3
 neighbor 3.0.0.2 send-community
!
ip community-list standard cl-101-1 permit 101:1
!
route-map ADD_COMM_R2 permit 10
 set community 100:1 additive
!
route-map FILTER_COMM_OUT_R2 deny 10
 match community cl-101-1
route-map FILTER_COMM_OUT_R2 permit 20
!
route-map PREF permit 10
 set local-preference 200
!
";

    fn snapshot() -> BTreeMap<String, String> {
        let (ast, warnings) = cisco_cfg::parse(CLEAN);
        assert!(warnings.is_empty(), "{warnings:?}");
        BTreeMap::from([("R1".to_string(), cisco_cfg::print(&ast))])
    }

    #[test]
    fn every_class_applies_to_the_rich_config() {
        let snap = snapshot();
        assert_eq!(
            applicable_classes(&snap["R1"]),
            FaultClass::ALL.to_vec(),
            "the test config exercises every class"
        );
    }

    #[test]
    fn corpus_covers_all_classes_with_valid_ground_truth() {
        let snap = snapshot();
        let corpus = corpus(&snap, 7);
        assert_eq!(corpus.len(), FaultClass::ALL.len());
        for inj in &corpus {
            let text = &inj.configs["R1"];
            assert_ne!(
                text, &snap["R1"],
                "{:?} must change the text",
                inj.fault.class
            );
            let n = text.lines().count();
            assert!(inj.fault.line_start >= 1, "{:?}", inj.fault);
            assert!(
                inj.fault.line_start <= inj.fault.line_end,
                "{:?}",
                inj.fault
            );
            assert!(inj.fault.line_end <= n, "{:?} vs {n} lines", inj.fault);
            // The span really covers a changed line.
            let clean_lines: Vec<&str> = snap["R1"].lines().collect();
            let mutated_lines: Vec<&str> = text.lines().collect();
            let changed = (inj.fault.line_start..=inj.fault.line_end)
                .any(|i| clean_lines.get(i - 1) != mutated_lines.get(i - 1));
            assert!(changed, "{:?} span must cover a difference", inj.fault);
        }
    }

    #[test]
    fn injection_is_deterministic_per_seed() {
        let snap = snapshot();
        let a = inject(&snap, 42).unwrap();
        let b = inject(&snap, 42).unwrap();
        assert_eq!(a.fault, b.fault);
        assert_eq!(a.configs, b.configs);
        // Different seeds explore different faults eventually.
        let classes: std::collections::BTreeSet<FaultClass> = (0..32)
            .filter_map(|s| inject(&snap, s))
            .map(|i| i.fault.class)
            .collect();
        assert!(
            classes.len() >= 5,
            "seeds must spread over classes: {classes:?}"
        );
    }

    #[test]
    fn mutations_survive_the_print_parse_cycle() {
        let snap = snapshot();
        for inj in corpus(&snap, 3) {
            let text = &inj.configs["R1"];
            let (ast, warnings) = cisco_cfg::parse(text);
            assert!(warnings.is_empty(), "{:?}: {warnings:?}", inj.fault.class);
            assert_eq!(
                &cisco_cfg::print(&ast),
                text,
                "{:?} must already be canonical",
                inj.fault.class
            );
        }
    }

    #[test]
    fn changed_span_handles_edits_and_deletions() {
        assert_eq!(changed_span("a\nb\nc\n", "a\nX\nc\n"), (2, 2));
        // Deletions bracket the cut point.
        assert_eq!(changed_span("a\nb\nc\n", "a\nc\n"), (1, 2));
        assert_eq!(changed_span("a\nb\nc\n", "b\nc\n"), (1, 1));
        assert_eq!(changed_span("a\nb\n", "a\nb\nX\n"), (3, 3));
        assert_eq!(changed_span("a\nb\nc\n", "a\nX\nY\nc\n"), (2, 3));
    }

    #[test]
    fn local_pref_inversion_crosses_the_default() {
        let snap = snapshot();
        let mut rng = SimRng::seed_from_u64(1);
        let (text, _, _, detail) =
            mutate_config(&snap["R1"], FaultClass::LocalPrefInverted, &mut rng).unwrap();
        assert!(text.contains("set local-preference 50"), "{detail}: {text}");
        assert!(!text.contains("set local-preference 200"));
    }
}

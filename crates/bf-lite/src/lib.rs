//! # bf-lite — the Batfish substrate
//!
//! Implements the three Batfish "questions" COSYNTH uses, over the shared
//! vendor-independent model:
//!
//! 1. **Parse** ([`parse_config`]): tolerant vendor front ends returning
//!    parse warnings — the syntax-verifier channel.
//! 2. **SearchRoutePolicies** ([`questions::search_route_policies_question`]):
//!    symbolic route-policy queries with counterexamples, used for the
//!    Lightyear-style local policy checks of use case 2.
//! 3. **BGP control-plane simulation** ([`sim`]): route propagation to a
//!    fixed point over a multi-router snapshot, used as the paper's final
//!    whole-network no-transit check ("we simulate the entire BGP
//!    communication using Batfish as a final step").
//!
//! ## Simulation model (documented scope)
//!
//! eBGP only (every session in the paper's topologies is external);
//! sessions come up iff both sides declare each other consistently on a
//! shared subnet; best-path selection follows
//! `net_model::RouteAdvertisement::better_than` (local-pref, AS-path
//! length, origin, MED, neighbor address); `network` statements originate
//! unconditionally (the connected route exists whenever the interface
//! does); redistribution from IGPs is analyzed symbolically
//! (`policy_symbolic::effective_export_behavior`) rather than simulated —
//! the paper's multi-router experiments are BGP-only.

pub mod parse_q;
pub mod questions;
pub mod sim;

pub use parse_q::{parse_config, ParsedConfig, Vendor};
pub use questions::{
    check_local_policy, check_local_policy_in, search_route_policies_question, space_for_checks,
    space_for_checks_in, LocalPolicyCheck,
};
pub use sim::{BgpSession, Rib, SimReport, Snapshot};

//! BGP control-plane simulation to a fixed point.
//!
//! The paper's final step for use case 2: "we simulate the entire BGP
//! communication using Batfish ... to ensure that the global policy is
//! satisfied". This module is that simulator: eBGP route propagation over
//! a snapshot of devices with import/export policies applied concretely
//! via `config_ir::eval`, synchronous rounds to a deterministic fixed
//! point, then RIB queries for the global checks.

use config_ir::{eval_policy_chain, Device, PolicyEnv, PolicyOutcome};
use net_model::{AsPath, Prefix, Protocol, RouteAdvertisement};
use std::collections::BTreeMap;
use std::net::Ipv4Addr;

/// A resolved eBGP session between two devices in a snapshot.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BgpSession {
    /// Index of the exporting device.
    pub from: usize,
    /// Index of the importing device.
    pub to: usize,
    /// Exporter's address on the shared subnet (becomes next hop).
    pub from_addr: Ipv4Addr,
    /// Importer's address (the exporter's `neighbor` statement target).
    pub to_addr: Ipv4Addr,
}

/// A device's BGP RIB: best route per prefix.
pub type Rib = BTreeMap<Prefix, RouteAdvertisement>;

/// A network snapshot: devices plus derived sessions.
pub struct Snapshot {
    /// The devices, in a fixed order.
    pub devices: Vec<Device>,
    /// Established sessions (directed; one per direction).
    pub sessions: Vec<BgpSession>,
    /// Session declarations that could not be established, with reasons —
    /// surfaced by the whole-network check when propagation silently
    /// fails.
    pub session_problems: Vec<String>,
}

impl Snapshot {
    /// Builds a snapshot, resolving sessions from the configs: an
    /// `A → B` session exists iff A declares a neighbor at one of B's
    /// interface addresses with B's AS, B declares A's address with A's
    /// AS, and the two addresses share a subnet.
    ///
    /// Resolution is index-backed: one pass builds an address → owning
    /// devices map, so each neighbor lookup is a map probe instead of a
    /// scan over every device's interfaces. The seed implementation's
    /// scan was quadratic in device count — invisible at star sizes,
    /// the dominant snapshot cost at the 512-router families. Tie-break
    /// semantics are identical: the lowest-indexed BGP-speaking device
    /// (other than the declarer) owning the address decides the
    /// session, and its verdict is final.
    pub fn new(devices: Vec<Device>) -> Self {
        // Address → device indices (BGP speakers with a live interface
        // at that address), in device order.
        let mut owners: BTreeMap<Ipv4Addr, Vec<usize>> = BTreeMap::new();
        for (i, d) in devices.iter().enumerate() {
            if d.bgp.is_none() {
                continue;
            }
            for iface in &d.interfaces {
                if iface.shutdown {
                    continue;
                }
                if let Some(a) = iface.address {
                    let owner_list = owners.entry(a.addr).or_default();
                    if owner_list.last() != Some(&i) {
                        owner_list.push(i);
                    }
                }
            }
        }
        let mut sessions = Vec::new();
        let mut problems = Vec::new();
        for (ai, a) in devices.iter().enumerate() {
            let Some(abgp) = &a.bgp else { continue };
            'neighbors: for n in &abgp.neighbors {
                // The device owning the neighbor address (never the
                // declarer itself).
                let Some(&bi) = owners
                    .get(&n.addr)
                    .into_iter()
                    .flatten()
                    .find(|&&bi| bi != ai)
                else {
                    problems.push(format!(
                        "{}: neighbor {} matches no device interface",
                        a.name, n.addr
                    ));
                    continue 'neighbors;
                };
                let b = &devices[bi];
                let bbgp = b.bgp.as_ref().expect("owners are BGP speakers");
                let b_iface = b
                    .interfaces
                    .iter()
                    .find(|i| i.address.map(|x| x.addr) == Some(n.addr) && !i.shutdown)
                    .expect("owners hold the address on a live interface");
                // Remote-as must match B's AS.
                if n.remote_as != Some(bbgp.asn) {
                    problems.push(format!(
                        "{}: neighbor {} remote-as {:?} does not match {}'s AS {}",
                        a.name, n.addr, n.remote_as, b.name, bbgp.asn
                    ));
                    continue 'neighbors;
                }
                // A must have an interface on the same subnet; that
                // address is what B must declare.
                let Some(a_iface) = a.interfaces.iter().find(|i| {
                    !i.shutdown
                        && i.address
                            .map(|x| x.same_subnet(&b_iface.address.expect("found by address")))
                            .unwrap_or(false)
                }) else {
                    problems.push(format!(
                        "{}: no interface on a shared subnet with {} ({})",
                        a.name, b.name, n.addr
                    ));
                    continue 'neighbors;
                };
                let a_addr = a_iface.address.expect("filtered").addr;
                // B must declare A back with A's AS.
                let back = bbgp
                    .neighbors
                    .iter()
                    .any(|m| m.addr == a_addr && m.remote_as == Some(abgp.asn));
                if !back {
                    problems.push(format!(
                        "{}: {} does not declare neighbor {} AS {} back",
                        a.name, b.name, a_addr, abgp.asn
                    ));
                    continue 'neighbors;
                }
                sessions.push(BgpSession {
                    from: ai,
                    to: bi,
                    from_addr: a_addr,
                    to_addr: n.addr,
                });
            }
        }
        Snapshot {
            devices,
            sessions,
            session_problems: problems,
        }
    }

    /// Index of a device by name.
    pub fn device_index(&self, name: &str) -> Option<usize> {
        self.devices.iter().position(|d| d.name == name)
    }
}

/// The result of running the simulation.
#[derive(Debug, Clone)]
pub struct SimReport {
    /// Final RIB per device (same order as the snapshot's devices).
    pub ribs: Vec<Rib>,
    /// Rounds until the fixed point.
    pub rounds: usize,
    /// True if the iteration bound was hit before convergence (a policy
    /// oscillation — should not happen with the paper's policies).
    pub diverged: bool,
}

impl SimReport {
    /// The best route for `prefix` at device index `i`, if any.
    pub fn route_at(&self, i: usize, prefix: &Prefix) -> Option<&RouteAdvertisement> {
        self.ribs.get(i).and_then(|r| r.get(prefix))
    }
}

/// Locally originated routes: `network` statements become connected-origin
/// entries with an empty AS path.
fn originated(device: &Device) -> Vec<RouteAdvertisement> {
    let Some(bgp) = &device.bgp else {
        return Vec::new();
    };
    bgp.networks
        .iter()
        .map(|p| RouteAdvertisement {
            prefix: *p,
            as_path: AsPath::empty(),
            communities: Default::default(),
            med: None,
            local_pref: None,
            next_hop: None,
            origin: net_model::Origin::Igp,
            protocol: Protocol::Connected,
        })
        .collect()
}

/// Recomputes one session's accepted routes (export policy → eBGP
/// attribute rewrite → loop check → import policy) from the exporter's
/// current RIB.
fn session_accepted(
    snapshot: &Snapshot,
    s: &BgpSession,
    exporter_rib: &Rib,
) -> Vec<RouteAdvertisement> {
    let exporter = &snapshot.devices[s.from];
    let importer = &snapshot.devices[s.to];
    let ebgp = exporter.bgp.as_ref().expect("session implies bgp");
    let nbr = ebgp
        .neighbor(s.to_addr)
        .expect("session built from neighbor");
    // The policy environment is per-session, not per-route; building it
    // in the inner loop was the simulator's hottest allocation.
    let env = PolicyEnv::for_neighbor(exporter, s.to_addr);
    let ibgp = importer.bgp.as_ref().expect("session implies bgp");
    let inbr = ibgp
        .neighbor(s.from_addr)
        .expect("session checked both ways");
    let ienv = PolicyEnv::for_neighbor(importer, s.from_addr);
    let mut accepted = Vec::new();
    for route in exporter_rib.values() {
        // eBGP loop prevention at the exporter (split horizon on AS path
        // happens at import; exporting is fine).
        match eval_policy_chain(&env, &nbr.export_policy, route) {
            PolicyOutcome::Permit(mut out) => {
                if !nbr.send_community {
                    out.communities.clear();
                }
                // eBGP export: prepend own AS, set next hop, strip
                // local-pref and (one hop) keep MED.
                out.as_path = out.as_path.prepend(ebgp.asn);
                out.next_hop = Some(s.from_addr);
                out.local_pref = None;
                out.protocol = Protocol::Bgp;
                if out.would_loop(ibgp.asn) {
                    continue;
                }
                match eval_policy_chain(&ienv, &inbr.import_policy, &out) {
                    PolicyOutcome::Permit(r) => accepted.push(r),
                    PolicyOutcome::Deny => {}
                }
            }
            PolicyOutcome::Deny => {}
        }
    }
    accepted
}

/// Best-path RIB for one device from its originations and the accepted
/// routes of its incoming sessions. Originations (Connected protocol,
/// empty AS path) always win.
fn best_rib(device: &Device, incoming: &[usize], accepted: &[Vec<RouteAdvertisement>]) -> Rib {
    let mut rib: Rib = BTreeMap::new();
    for r in originated(device) {
        rib.insert(r.prefix, r);
    }
    for &si in incoming {
        for r in &accepted[si] {
            match rib.get(&r.prefix) {
                Some(cur) => {
                    let cur_local = cur.protocol == Protocol::Connected;
                    if !cur_local && r.better_than(cur) {
                        rib.insert(r.prefix, r.clone());
                    }
                }
                None => {
                    rib.insert(r.prefix, r.clone());
                }
            }
        }
    }
    rib
}

/// Runs synchronous rounds of export→import until RIBs stop changing.
///
/// Convergence tracking is incremental: each round only re-exports the
/// sessions of devices whose RIB changed in the previous round (the
/// dirty set) and only rebuilds the RIBs of devices whose adj-RIB-in
/// actually changed. The seed implementation cloned and compared every
/// device's full RIB map every round — fine at star sizes, quadratic
/// pain at fleet sizes.
pub fn run(snapshot: &Snapshot) -> SimReport {
    let n = snapshot.devices.len();
    // Accepted routes per directed session (the adj-RIB-in, sliced by
    // session rather than keyed by exporter so parallel sessions between
    // the same pair cannot collide).
    let mut accepted: Vec<Vec<RouteAdvertisement>> = vec![Vec::new(); snapshot.sessions.len()];
    let mut by_exporter: Vec<Vec<usize>> = vec![Vec::new(); n];
    let mut by_importer: Vec<Vec<usize>> = vec![Vec::new(); n];
    for (si, s) in snapshot.sessions.iter().enumerate() {
        by_exporter[s.from].push(si);
        by_importer[s.to].push(si);
    }
    // Seed with originations; every device starts dirty.
    let mut ribs: Vec<Rib> = snapshot
        .devices
        .iter()
        .map(|d| {
            let mut rib = BTreeMap::new();
            for r in originated(d) {
                rib.insert(r.prefix, r);
            }
            rib
        })
        .collect();
    let mut dirty: Vec<bool> = vec![true; n];
    let max_rounds = 4 * n + 8;
    let mut rounds = 0;
    let mut diverged = false;
    while dirty.iter().any(|&d| d) {
        rounds += 1;
        if rounds > max_rounds {
            diverged = true;
            break;
        }
        // Phase 1: re-export from dirty devices; note importers whose
        // adj-RIB-in changed. Reads `ribs` only, so rounds stay
        // synchronous.
        let mut touched = vec![false; n];
        for from in 0..n {
            if !dirty[from] {
                continue;
            }
            for &si in &by_exporter[from] {
                let s = &snapshot.sessions[si];
                let fresh = session_accepted(snapshot, s, &ribs[from]);
                if fresh != accepted[si] {
                    accepted[si] = fresh;
                    touched[s.to] = true;
                }
            }
        }
        // Phase 2: rebuild RIBs of touched devices; changed RIBs form
        // the next round's dirty set.
        let mut next_dirty = vec![false; n];
        for (to, was_touched) in touched.into_iter().enumerate() {
            if !was_touched {
                continue;
            }
            let rib = best_rib(&snapshot.devices[to], &by_importer[to], &accepted);
            if rib != ribs[to] {
                ribs[to] = rib;
                next_dirty[to] = true;
            }
        }
        dirty = next_dirty;
    }
    SimReport {
        ribs,
        rounds,
        diverged,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use config_ir::{IrBgp, IrInterface, IrNeighbor};
    use net_model::Asn;

    fn pfx(s: &str) -> Prefix {
        s.parse().unwrap()
    }

    /// Two routers on 10.0.0.0/24: r1 (AS 1, announces 1.0.0.0/24) and
    /// r2 (AS 2, announces 2.0.0.0/24), open policies.
    fn pair() -> Vec<Device> {
        let mut r1 = Device::named("r1");
        let mut i = IrInterface::named("Ethernet0/0");
        i.address = Some("10.0.0.1/24".parse().unwrap());
        r1.interfaces.push(i);
        let mut b1 = IrBgp::new(Asn(1));
        b1.networks.push(pfx("1.0.0.0/24"));
        let mut n = IrNeighbor::new("10.0.0.2".parse().unwrap());
        n.remote_as = Some(Asn(2));
        n.send_community = true;
        b1.neighbors.push(n);
        r1.bgp = Some(b1);

        let mut r2 = Device::named("r2");
        let mut i = IrInterface::named("Ethernet0/0");
        i.address = Some("10.0.0.2/24".parse().unwrap());
        r2.interfaces.push(i);
        let mut b2 = IrBgp::new(Asn(2));
        b2.networks.push(pfx("2.0.0.0/24"));
        let mut n = IrNeighbor::new("10.0.0.1".parse().unwrap());
        n.remote_as = Some(Asn(1));
        n.send_community = true;
        b2.neighbors.push(n);
        r2.bgp = Some(b2);
        vec![r1, r2]
    }

    #[test]
    fn sessions_resolve_bidirectionally() {
        let snap = Snapshot::new(pair());
        assert_eq!(snap.sessions.len(), 2, "{:?}", snap.session_problems);
        assert!(snap.session_problems.is_empty());
    }

    #[test]
    fn wrong_remote_as_blocks_session() {
        let mut devices = pair();
        devices[0].bgp.as_mut().unwrap().neighbors[0].remote_as = Some(Asn(99));
        let snap = Snapshot::new(devices);
        // r1→r2 fails (wrong AS); r2→r1 fails (r1 doesn't declare back
        // correctly... it does declare the address but the session check
        // is per-direction, and r2's back-check looks for r1 declaring
        // r2's AS which now fails).
        assert!(snap.sessions.len() < 2);
        assert!(!snap.session_problems.is_empty());
    }

    #[test]
    fn routes_propagate_both_ways() {
        let snap = Snapshot::new(pair());
        let report = run(&snap);
        assert!(!report.diverged);
        let r1 = snap.device_index("r1").unwrap();
        let r2 = snap.device_index("r2").unwrap();
        let got = report
            .route_at(r1, &pfx("2.0.0.0/24"))
            .expect("r1 learns 2/24");
        assert_eq!(got.as_path, AsPath::single(Asn(2)));
        assert_eq!(got.next_hop, Some("10.0.0.2".parse().unwrap()));
        let got = report
            .route_at(r2, &pfx("1.0.0.0/24"))
            .expect("r2 learns 1/24");
        assert_eq!(got.as_path, AsPath::single(Asn(1)));
    }

    #[test]
    fn export_policy_filters() {
        let mut devices = pair();
        // r1 denies everything outbound.
        let mut deny = config_ir::IrPolicy::new("DENY_ALL");
        deny.clauses.push(config_ir::IrClause::deny_all("10"));
        devices[0].policies.push(deny);
        devices[0].bgp.as_mut().unwrap().neighbors[0]
            .export_policy
            .push("DENY_ALL".into());
        let snap = Snapshot::new(devices);
        let report = run(&snap);
        let r2 = snap.device_index("r2").unwrap();
        assert!(report.route_at(r2, &pfx("1.0.0.0/24")).is_none());
        // The other direction still works.
        let r1 = snap.device_index("r1").unwrap();
        assert!(report.route_at(r1, &pfx("2.0.0.0/24")).is_some());
    }

    #[test]
    fn import_policy_modifies() {
        let mut devices = pair();
        let mut lp = config_ir::IrPolicy::new("SET_LP");
        let mut c = config_ir::IrClause::permit_all("10");
        c.modifiers.push(config_ir::Modifier::SetLocalPref(250));
        lp.clauses.push(c);
        devices[0].policies.push(lp);
        devices[0].bgp.as_mut().unwrap().neighbors[0]
            .import_policy
            .push("SET_LP".into());
        let snap = Snapshot::new(devices);
        let report = run(&snap);
        let r1 = snap.device_index("r1").unwrap();
        let got = report.route_at(r1, &pfx("2.0.0.0/24")).unwrap();
        assert_eq!(got.local_pref, Some(250));
    }

    #[test]
    fn three_node_line_transits() {
        // r1 — r2 — r3 with open policies: r3 learns r1's prefix through
        // r2 with path [2, 1].
        let mut devices = pair();
        let mut r3 = Device::named("r3");
        let mut i = IrInterface::named("Ethernet0/1");
        i.address = Some("10.0.1.2/24".parse().unwrap());
        r3.interfaces.push(i);
        let mut b3 = IrBgp::new(Asn(3));
        let mut n = IrNeighbor::new("10.0.1.1".parse().unwrap());
        n.remote_as = Some(Asn(2));
        n.send_community = true;
        b3.neighbors.push(n);
        r3.bgp = Some(b3);
        // Give r2 a second interface and neighbor to r3.
        {
            let r2 = &mut devices[1];
            let mut i = IrInterface::named("Ethernet0/1");
            i.address = Some("10.0.1.1/24".parse().unwrap());
            r2.interfaces.push(i);
            let b2 = r2.bgp.as_mut().unwrap();
            let mut n = IrNeighbor::new("10.0.1.2".parse().unwrap());
            n.remote_as = Some(Asn(3));
            n.send_community = true;
            b2.neighbors.push(n);
        }
        devices.push(r3);
        let snap = Snapshot::new(devices);
        assert_eq!(snap.sessions.len(), 4, "{:?}", snap.session_problems);
        let report = run(&snap);
        assert!(!report.diverged);
        let r3i = snap.device_index("r3").unwrap();
        let got = report
            .route_at(r3i, &pfx("1.0.0.0/24"))
            .expect("transit route");
        assert_eq!(
            got.as_path,
            [Asn(2), Asn(1)].into_iter().collect::<AsPath>()
        );
    }

    #[test]
    fn as_loop_prevention() {
        // r2's prefix must not come back to r2 via r1.
        let snap = Snapshot::new(pair());
        let report = run(&snap);
        let r2 = snap.device_index("r2").unwrap();
        let own = report.route_at(r2, &pfx("2.0.0.0/24")).unwrap();
        assert_eq!(own.protocol, Protocol::Connected, "kept the origination");
        assert!(own.as_path.is_empty());
    }

    #[test]
    fn send_community_off_strips() {
        let mut devices = pair();
        // r2 adds a community on export but has send_community off.
        let mut tag = config_ir::IrPolicy::new("TAG");
        let mut c = config_ir::IrClause::permit_all("10");
        c.modifiers.push(config_ir::Modifier::SetCommunities {
            communities: std::collections::BTreeSet::from(["100:1".parse().unwrap()]),
            additive: true,
        });
        tag.clauses.push(c);
        devices[1].policies.push(tag);
        {
            let b2 = devices[1].bgp.as_mut().unwrap();
            b2.neighbors[0].export_policy.push("TAG".into());
            b2.neighbors[0].send_community = false;
        }
        let snap = Snapshot::new(devices);
        let report = run(&snap);
        let r1 = snap.device_index("r1").unwrap();
        let got = report.route_at(r1, &pfx("2.0.0.0/24")).unwrap();
        assert!(got.communities.is_empty(), "{got}");
    }

    #[test]
    fn convergence_is_fast() {
        let snap = Snapshot::new(pair());
        let report = run(&snap);
        assert!(report.rounds <= 6, "rounds = {}", report.rounds);
    }
}

//! The `searchRoutePolicies` question and Lightyear-style local policy
//! checks built on it.

use config_ir::Device;
use net_model::{Community, RouteAdvertisement};
use policy_symbolic::{search_route_policies, RouteQuery, RouteSpace};

/// Runs a route-policy search against one device's named policy chain,
/// building a fresh symbolic space for the query.
pub fn search_route_policies_question(
    device: &Device,
    chain: &[String],
    query: &RouteQuery,
) -> Option<RouteAdvertisement> {
    let mut space = RouteSpace::for_devices(&[device]);
    search_route_policies(&mut space, device, chain, query)
}

/// A local policy check in the style of Lightyear's per-router invariants,
/// expressed as "no counterexample route may exist".
#[derive(Debug, Clone)]
pub enum LocalPolicyCheck {
    /// Every route permitted by the chain must carry this community on
    /// output (R1's ingress tagging policy).
    PermittedRoutesCarry {
        /// The policy chain to check.
        chain: Vec<String>,
        /// The community that must be present on output.
        community: Community,
    },
    /// No route carrying this community on input may be permitted (R1's
    /// egress filtering policy).
    RoutesWithCommunityDenied {
        /// The policy chain to check.
        chain: Vec<String>,
        /// The community that must cause a deny.
        community: Community,
    },
    /// Routes permitted by the chain must not lose this input community
    /// (the `additive` check: tagging must not wipe existing communities).
    PermittedRoutesPreserve {
        /// The policy chain to check.
        chain: Vec<String>,
        /// The community that must survive.
        community: Community,
    },
    /// Every route permitted by the chain must come out with this
    /// local-preference (the prefer-customer intent's ingress policy).
    /// Checked concretely — local-pref is not a symbolic space variable.
    PermittedRoutesSetLocalPref {
        /// The policy chain to check.
        chain: Vec<String>,
        /// The required local-preference value.
        value: u32,
    },
}

impl LocalPolicyCheck {
    /// A one-line description for reports.
    pub fn describe(&self) -> String {
        match self {
            LocalPolicyCheck::PermittedRoutesCarry { chain, community } => format!(
                "every route permitted by {} must carry community {community}",
                chain.join(",")
            ),
            LocalPolicyCheck::RoutesWithCommunityDenied { chain, community } => format!(
                "routes carrying community {community} must be denied by {}",
                chain.join(",")
            ),
            LocalPolicyCheck::PermittedRoutesPreserve { chain, community } => format!(
                "routes permitted by {} must not lose community {community}",
                chain.join(",")
            ),
            LocalPolicyCheck::PermittedRoutesSetLocalPref { chain, value } => format!(
                "routes permitted by {} must carry local-preference {value}",
                chain.join(",")
            ),
        }
    }

    /// Whether the check is decided symbolically (needs a [`RouteSpace`])
    /// rather than by a concrete probe. Callers that cache spaces per
    /// router draft (cosynth's `RouteSpaceCache`) use this to skip space
    /// construction for the concrete variants.
    pub fn is_symbolic(&self) -> bool {
        !matches!(self, LocalPolicyCheck::PermittedRoutesSetLocalPref { .. })
    }

    /// The community the check constrains, for the symbolic variants.
    fn community(&self) -> Option<Community> {
        match self {
            LocalPolicyCheck::PermittedRoutesCarry { community, .. }
            | LocalPolicyCheck::RoutesWithCommunityDenied { community, .. }
            | LocalPolicyCheck::PermittedRoutesPreserve { community, .. } => Some(*community),
            LocalPolicyCheck::PermittedRoutesSetLocalPref { .. } => None,
        }
    }

    /// The violation query for this check (symbolic variants only; the
    /// local-pref check is concrete and handled in
    /// [`check_local_policy`] directly).
    fn violation_query(&self) -> Option<(Vec<String>, RouteQuery)> {
        match self {
            LocalPolicyCheck::PermittedRoutesCarry { chain, community } => Some((
                chain.clone(),
                RouteQuery {
                    action_permit: true,
                    output_communities_absent: vec![*community],
                    ..Default::default()
                },
            )),
            LocalPolicyCheck::RoutesWithCommunityDenied { chain, community } => Some((
                chain.clone(),
                RouteQuery {
                    action_permit: true,
                    input_communities_present: vec![*community],
                    ..Default::default()
                },
            )),
            LocalPolicyCheck::PermittedRoutesPreserve { chain, community } => Some((
                chain.clone(),
                RouteQuery {
                    action_permit: true,
                    input_communities_present: vec![*community],
                    output_communities_absent: vec![*community],
                    ..Default::default()
                },
            )),
            LocalPolicyCheck::PermittedRoutesSetLocalPref { .. } => None,
        }
    }
}

/// Checks a local policy on a device, building a fresh symbolic space
/// for the query. Returns `Ok(())` when the invariant holds, or the
/// violating route (the example Batfish prints and the humanizer
/// forwards).
///
/// Callers that verify the same router draft repeatedly (the VPP
/// rectification loop) should build the space once with
/// [`space_for_checks`] and use [`check_local_policy_in`] instead.
pub fn check_local_policy(
    device: &Device,
    check: &LocalPolicyCheck,
) -> Result<(), RouteAdvertisement> {
    if !check.is_symbolic() {
        return check_local_policy_concrete(device, check);
    }
    let mut space = space_for_checks(device, std::slice::from_ref(check));
    check_local_policy_in(&mut space, device, check)
}

/// Checks a local policy against a caller-supplied space (built with
/// [`space_for_checks`] over a check set including this one). The space
/// may be shared across checks and across verification rounds of the
/// same draft: the underlying BDD manager is monotone, so reuse only
/// warms its unique table and op caches.
pub fn check_local_policy_in(
    space: &mut RouteSpace,
    device: &Device,
    check: &LocalPolicyCheck,
) -> Result<(), RouteAdvertisement> {
    if !check.is_symbolic() {
        return check_local_policy_concrete(device, check);
    }
    let (chain, query) = check.violation_query().expect("symbolic variant");
    // Release-mode guard, not a debug_assert: a space missing the
    // check's community would silently make "carries c" constant-false
    // (the symbolic query treats out-of-universe communities as absent)
    // and report a spurious violation. Misuse must be loud.
    assert!(
        check
            .community()
            .is_none_or(|c| space.community_var(c).is_some()),
        "space was not built over this check's community (build it with \
         space_for_checks over a check set including this one): {}",
        check.describe()
    );
    match search_route_policies(space, device, &chain, &query) {
        Some(route) => Err(route),
        None => Ok(()),
    }
}

/// The concrete probe behind [`LocalPolicyCheck::PermittedRoutesSetLocalPref`]:
/// a preference map must permit and must stamp the value (a deny would
/// starve the session of the neighbor's routes). The contract matches
/// the prompt sentence — "set local-preference N on ALL routes" — so an
/// unconditional permit+set chain is expected; a map that discriminates
/// by prefix/community is judged only on this one probe (local-pref is
/// not a symbolic space variable).
fn check_local_policy_concrete(
    device: &Device,
    check: &LocalPolicyCheck,
) -> Result<(), RouteAdvertisement> {
    let LocalPolicyCheck::PermittedRoutesSetLocalPref { chain, value } = check else {
        unreachable!("symbolic checks are routed through a RouteSpace")
    };
    let probe = RouteAdvertisement::bgp("192.0.2.0/24".parse().expect("TEST-NET-1"));
    let env = config_ir::PolicyEnv::new(device);
    match config_ir::eval_policy_chain(&env, chain, &probe) {
        config_ir::PolicyOutcome::Permit(out) if out.local_pref == Some(*value) => Ok(()),
        config_ir::PolicyOutcome::Permit(out) => Err(out),
        config_ir::PolicyOutcome::Deny => Err(probe),
    }
}

/// Builds the symbolic space for a device draft under a set of checks:
/// the device's own community/AS-path universes plus every symbolic
/// check's community. The checks' communities must be space variables
/// even if the (possibly buggy) config never mentions them — otherwise
/// "carries community c" would be trivially false rather than checkable.
///
/// One space built here serves *all* the given checks, which is what
/// makes per-draft caching sound: a community variable unconstrained by
/// both the policy and the query never appears on a counterexample path,
/// so witnesses are identical to those from a single-check space.
pub fn space_for_checks(device: &Device, checks: &[LocalPolicyCheck]) -> RouteSpace {
    space_for_checks_in(
        bdd::Manager::with_capacity(RouteSpace::DEFAULT_NODE_CAPACITY),
        device,
        checks,
    )
}

/// [`space_for_checks`] over a caller-supplied BDD manager — the pooled
/// path. The manager is recycled in place (see
/// [`RouteSpace::in_manager`]): a worker that keeps managers resident
/// across sessions pays table allocation once per worker instead of
/// once per space, and a grown unique table stays grown. Results are
/// bit-identical to the fresh path — `Ref`s depend only on the op
/// sequence, never on table capacity.
pub fn space_for_checks_in(
    mgr: bdd::Manager,
    device: &Device,
    checks: &[LocalPolicyCheck],
) -> RouteSpace {
    let mut communities = device.community_universe();
    for check in checks {
        if let Some(c) = check.community() {
            communities.insert(c);
        }
    }
    let mut aspaths = std::collections::BTreeSet::new();
    for p in &device.policies {
        for cl in &p.clauses {
            for cond in &cl.conditions {
                if let config_ir::Condition::MatchAsPath(re) = cond {
                    aspaths.insert(re.clone());
                }
            }
        }
    }
    RouteSpace::in_manager(mgr, communities, aspaths)
}

#[cfg(test)]
mod tests {
    use super::*;
    use config_ir::{ClauseAction, Condition, IrClause, IrCommunitySet, IrPolicy, Modifier};
    use std::collections::BTreeSet;

    fn comm(s: &str) -> Community {
        s.parse().unwrap()
    }

    /// A device with R1-style ingress tagging: ADD_COMM adds 100:1
    /// additively (correct) or non-additively (buggy).
    fn tagging_device(additive: bool) -> Device {
        let mut d = Device::named("r1");
        let mut p = IrPolicy::new("ADD_COMM");
        p.clauses.push(IrClause {
            id: "10".into(),
            action: ClauseAction::Permit,
            conditions: vec![],
            modifiers: vec![Modifier::SetCommunities {
                communities: BTreeSet::from([comm("100:1")]),
                additive,
            }],
        });
        d.policies.push(p);
        d
    }

    #[test]
    fn carry_check_passes_for_tagging_policy() {
        let d = tagging_device(true);
        let check = LocalPolicyCheck::PermittedRoutesCarry {
            chain: vec!["ADD_COMM".into()],
            community: comm("100:1"),
        };
        assert!(check_local_policy(&d, &check).is_ok());
    }

    #[test]
    fn carry_check_fails_without_tagging() {
        let mut d = Device::named("r1");
        let mut p = IrPolicy::new("NOOP");
        p.clauses.push(IrClause::permit_all("10"));
        d.policies.push(p);
        let check = LocalPolicyCheck::PermittedRoutesCarry {
            chain: vec!["NOOP".into()],
            community: comm("100:1"),
        };
        let violation = check_local_policy(&d, &check).unwrap_err();
        assert!(!violation.communities.contains(&comm("100:1")));
    }

    #[test]
    fn preserve_check_catches_missing_additive() {
        // The Section 4.2 "Adding Communities" bug: non-additive set wipes
        // pre-existing communities.
        let buggy = tagging_device(false);
        // The input community that gets wiped must be in the universe;
        // model a route already carrying 999:9 by including it via a set.
        let mut buggy = buggy;
        buggy
            .community_sets
            .push(IrCommunitySet::single("other", comm("999:9")));
        let check = LocalPolicyCheck::PermittedRoutesPreserve {
            chain: vec!["ADD_COMM".into()],
            community: comm("999:9"),
        };
        let violation = check_local_policy(&buggy, &check).unwrap_err();
        assert!(violation.communities.contains(&comm("999:9")));
        // The additive version preserves.
        let mut good = tagging_device(true);
        good.community_sets
            .push(IrCommunitySet::single("other", comm("999:9")));
        assert!(check_local_policy(&good, &check).is_ok());
    }

    #[test]
    fn deny_check_catches_and_semantics() {
        // Egress filter with AND semantics: one deny clause requiring BOTH
        // 101:1 and 102:1. Routes with only 101:1 slip through — the
        // counterexample the paper describes Batfish producing.
        let mut d = Device::named("r1");
        d.community_sets
            .push(IrCommunitySet::single("c2", comm("101:1")));
        d.community_sets
            .push(IrCommunitySet::single("c3", comm("102:1")));
        let mut p = IrPolicy::new("FILTER_COMM_OUT_R2");
        p.clauses.push(IrClause {
            id: "10".into(),
            action: ClauseAction::Deny,
            conditions: vec![
                Condition::community_set("c2"),
                Condition::community_set("c3"),
            ],
            modifiers: vec![],
        });
        p.clauses.push(IrClause::permit_all("20"));
        d.policies.push(p);
        let check = LocalPolicyCheck::RoutesWithCommunityDenied {
            chain: vec!["FILTER_COMM_OUT_R2".into()],
            community: comm("101:1"),
        };
        let violation = check_local_policy(&d, &check).unwrap_err();
        assert!(violation.communities.contains(&comm("101:1")));
        // The OR-shaped fix: one condition listing both sets.
        let fixed_policy = {
            let mut p = IrPolicy::new("FILTER_COMM_OUT_R2");
            p.clauses.push(IrClause {
                id: "10".into(),
                action: ClauseAction::Deny,
                conditions: vec![Condition::MatchCommunity(vec!["c2".into(), "c3".into()])],
                modifiers: vec![],
            });
            p.clauses.push(IrClause::permit_all("20"));
            p
        };
        d.policies.clear();
        d.policies.push(fixed_policy);
        assert!(check_local_policy(&d, &check).is_ok());
    }

    #[test]
    fn local_pref_check_is_concrete() {
        let mut d = Device::named("r1");
        let mut p = IrPolicy::new("PREF_CUST");
        let mut clause = IrClause::permit_all("10");
        clause.modifiers.push(Modifier::SetLocalPref(200));
        p.clauses.push(clause);
        d.policies.push(p);
        let check = LocalPolicyCheck::PermittedRoutesSetLocalPref {
            chain: vec!["PREF_CUST".into()],
            value: 200,
        };
        assert!(check_local_policy(&d, &check).is_ok());
        // Wrong value is a violation carrying the evaluated route.
        let wrong = LocalPolicyCheck::PermittedRoutesSetLocalPref {
            chain: vec!["PREF_CUST".into()],
            value: 50,
        };
        let witness = check_local_policy(&d, &wrong).unwrap_err();
        assert_eq!(witness.local_pref, Some(200));
        // A missing map denies the probe — also a violation.
        let missing = LocalPolicyCheck::PermittedRoutesSetLocalPref {
            chain: vec!["NOPE".into()],
            value: 200,
        };
        assert!(check_local_policy(&d, &missing).is_err());
    }

    #[test]
    fn describe_is_informative() {
        let check = LocalPolicyCheck::RoutesWithCommunityDenied {
            chain: vec!["X".into()],
            community: comm("101:1"),
        };
        let s = check.describe();
        assert!(s.contains("101:1"));
        assert!(s.contains('X'));
    }

    #[test]
    fn question_wrapper_builds_space() {
        let d = tagging_device(true);
        let q = RouteQuery::any_permitted();
        assert!(search_route_policies_question(&d, &["ADD_COMM".to_string()], &q).is_some());
    }
}

//! The parse question: vendor detection, parsing, warning collection.

use config_ir::Device;
use net_model::ParseWarning;

/// Which vendor front end parsed a config.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Vendor {
    /// Cisco IOS.
    Cisco,
    /// Juniper Junos.
    Juniper,
}

/// The result of the parse question.
#[derive(Debug, Clone)]
pub struct ParsedConfig {
    /// Detected (or requested) vendor.
    pub vendor: Vendor,
    /// The lowered device model.
    pub device: Device,
    /// Parse warnings (syntax findings).
    pub warnings: Vec<ParseWarning>,
    /// Lowering notes (IR approximations, none on clean configs).
    pub notes: Vec<String>,
}

impl ParsedConfig {
    /// Whether the config parsed without any syntax findings.
    pub fn is_clean(&self) -> bool {
        self.warnings.is_empty()
    }
}

/// Detects the vendor from the text shape: Junos configs are brace
/// structured, IOS configs are line oriented.
pub fn detect_vendor(text: &str) -> Vendor {
    let opens = text.matches('{').count();
    let semis = text.matches(';').count();
    if opens >= 1 && semis >= 1 {
        Vendor::Juniper
    } else {
        Vendor::Cisco
    }
}

/// Parses a config with the given (or detected) vendor front end and
/// lowers it to the IR.
pub fn parse_config(text: &str, vendor: Option<Vendor>) -> ParsedConfig {
    let vendor = vendor.unwrap_or_else(|| detect_vendor(text));
    match vendor {
        Vendor::Cisco => {
            let (ast, warnings) = cisco_cfg::parse(text);
            let (device, notes) = config_ir::from_cisco(&ast);
            ParsedConfig {
                vendor,
                device,
                warnings,
                notes,
            }
        }
        Vendor::Juniper => {
            let (ast, warnings) = juniper_cfg::parse(text);
            let (device, notes) = config_ir::from_juniper(&ast);
            ParsedConfig {
                vendor,
                device,
                warnings,
                notes,
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn detects_cisco() {
        assert_eq!(
            detect_vendor("hostname r1\nrouter bgp 1\n neighbor 2.0.0.2 remote-as 2\n"),
            Vendor::Cisco
        );
    }

    #[test]
    fn detects_juniper() {
        assert_eq!(detect_vendor("system { host-name r1; }\n"), Vendor::Juniper);
    }

    #[test]
    fn parse_cisco_clean() {
        let p = parse_config(
            "hostname r1\nrouter bgp 1\n neighbor 2.0.0.2 remote-as 2\n",
            None,
        );
        assert_eq!(p.vendor, Vendor::Cisco);
        assert!(p.is_clean());
        assert_eq!(p.device.name, "r1");
        assert!(p.device.bgp.is_some());
    }

    #[test]
    fn parse_cisco_with_warnings() {
        let p = parse_config("hostname r1\nexit\n", None);
        assert!(!p.is_clean());
        assert_eq!(p.warnings.len(), 1);
    }

    #[test]
    fn parse_juniper() {
        let p = parse_config(
            "system { host-name r2; }\nrouting-options { autonomous-system 2; }\n",
            None,
        );
        assert_eq!(p.vendor, Vendor::Juniper);
        assert!(p.is_clean());
        assert_eq!(p.device.name, "r2");
    }

    #[test]
    fn explicit_vendor_overrides_detection() {
        // Juniper text forced through the Cisco parser yields warnings,
        // not a crash.
        let p = parse_config("system { host-name r1; }\n", Some(Vendor::Cisco));
        assert_eq!(p.vendor, Vendor::Cisco);
        assert!(!p.is_clean());
    }
}

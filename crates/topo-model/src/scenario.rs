//! Verification scenarios: a topology plus per-router policy intents and
//! whole-network expectations.
//!
//! The paper evaluates exactly two hand-built scenarios; a [`Scenario`]
//! is the generalized input the VPP loop runs on instead. It carries the
//! same two artifacts the star experiment had — the topology JSON and
//! the per-router policy specs the Modularizer turns into prompts — plus
//! the machine-checkable global expectations the Composer verifies after
//! simulation (the generalization of the star's hard-coded no-transit
//! checks).

use crate::json::quote;
use crate::topology::Topology;
use net_model::{Asn, Community, Prefix};
use std::fmt::Write as _;
use std::net::Ipv4Addr;

/// The local policy assigned to one router, in the formulaic vocabulary
/// the prompt contract supports: ingress community tagging, ingress
/// local-preference, and egress community filtering.
#[derive(Debug, Clone, Default, PartialEq, Hash)]
pub struct RouterPolicy {
    /// `(neighbor, community, route-map name)` ingress tags.
    pub ingress_tags: Vec<(Ipv4Addr, Community, String)>,
    /// `(neighbor, local-pref value, route-map name)` ingress preferences.
    pub ingress_prefs: Vec<(Ipv4Addr, u32, String)>,
    /// `(neighbor, communities-to-deny, route-map name)` egress filters.
    pub egress_filters: Vec<(Ipv4Addr, Vec<Community>, String)>,
}

impl RouterPolicy {
    /// Whether the policy is empty (plain eBGP forwarding).
    pub fn is_empty(&self) -> bool {
        self.ingress_tags.is_empty()
            && self.ingress_prefs.is_empty()
            && self.egress_filters.is_empty()
    }
}

/// A whole-network expectation checked against the converged RIBs.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub enum Expectation {
    /// `prefix` must appear in `at`'s RIB.
    Reachable {
        /// Observing device (router or stub name).
        at: String,
        /// The expected prefix.
        prefix: Prefix,
    },
    /// `prefix` must NOT appear in `at`'s RIB.
    Unreachable {
        /// Observing device.
        at: String,
        /// The forbidden prefix.
        prefix: Prefix,
    },
    /// `at`'s best route for `prefix` must originate from AS `origin`
    /// (the prefer-customer intent's observable).
    PreferVia {
        /// Observing device.
        at: String,
        /// The contested prefix.
        prefix: Prefix,
        /// Required origin AS of the winning route.
        origin: Asn,
    },
}

/// One generated verification scenario.
#[derive(Debug, Clone, PartialEq)]
pub struct Scenario {
    /// Unique scenario name (`ring-no-transit-s7-i3`).
    pub name: String,
    /// Topology family (`ring`, `chain`, `star`, …).
    pub family: String,
    /// Intent family (`no-transit`, `prefer-customer`, …).
    pub intent: String,
    /// The network.
    pub topology: Topology,
    /// Per-router policies, `(router name, policy)`; routers absent from
    /// the list get an empty policy (plain eBGP forwarding).
    pub policies: Vec<(String, RouterPolicy)>,
    /// The global expectations.
    pub expectations: Vec<Expectation>,
}

impl Scenario {
    /// The policy assigned to `router`, if any.
    pub fn policy_for(&self, router: &str) -> Option<&RouterPolicy> {
        self.policies
            .iter()
            .find(|(n, _)| n == router)
            .map(|(_, p)| p)
    }

    /// Serializes the scenario (topology JSON nested inside the policy
    /// spec) — the generator's on-disk artifact for debugging and for
    /// driving external tooling.
    pub fn to_json(&self) -> String {
        let mut out = String::from("{\n");
        let _ = writeln!(out, "  \"name\": {},", quote(&self.name));
        let _ = writeln!(out, "  \"family\": {},", quote(&self.family));
        let _ = writeln!(out, "  \"intent\": {},", quote(&self.intent));
        out.push_str("  \"policies\": [");
        for (i, (router, p)) in self.policies.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let tags: Vec<String> = p
                .ingress_tags
                .iter()
                .map(|(addr, c, map)| quote(&format!("{addr} {c} {map}")))
                .collect();
            let prefs: Vec<String> = p
                .ingress_prefs
                .iter()
                .map(|(addr, v, map)| quote(&format!("{addr} {v} {map}")))
                .collect();
            let filters: Vec<String> = p
                .egress_filters
                .iter()
                .map(|(addr, cs, map)| {
                    let cs: Vec<String> = cs.iter().map(|c| c.to_string()).collect();
                    quote(&format!("{addr} [{}] {map}", cs.join(" ")))
                })
                .collect();
            let _ = write!(
                out,
                "\n    {{ \"router\": {}, \"tags\": [{}], \"prefs\": [{}], \"filters\": [{}] }}",
                quote(router),
                tags.join(", "),
                prefs.join(", "),
                filters.join(", ")
            );
        }
        out.push_str(if self.policies.is_empty() {
            "],\n"
        } else {
            "\n  ],\n"
        });
        out.push_str("  \"expectations\": [");
        for (i, e) in self.expectations.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let line = match e {
                Expectation::Reachable { at, prefix } => format!("reachable {at} {prefix}"),
                Expectation::Unreachable { at, prefix } => format!("unreachable {at} {prefix}"),
                Expectation::PreferVia { at, prefix, origin } => {
                    format!("prefer-via {at} {prefix} {origin}")
                }
            };
            let _ = write!(out, "\n    {}", quote(&line));
        }
        out.push_str(if self.expectations.is_empty() {
            "],\n"
        } else {
            "\n  ],\n"
        });
        // The nested topology JSON, indented to match.
        out.push_str("  \"topology\": ");
        for (i, line) in self.topology.to_json().lines().enumerate() {
            if i > 0 {
                out.push_str("  ");
            }
            out.push_str(line);
            out.push('\n');
        }
        out.pop();
        out.push_str("\n}");
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::star::star;

    fn demo() -> Scenario {
        let (topology, roles) = star(2);
        Scenario {
            name: "star-demo".into(),
            family: "star".into(),
            intent: "no-transit".into(),
            topology,
            policies: vec![(
                roles.hub.clone(),
                RouterPolicy {
                    ingress_tags: vec![(
                        "2.0.0.2".parse().unwrap(),
                        "100:1".parse().unwrap(),
                        "ADD_COMM_R2".into(),
                    )],
                    ingress_prefs: vec![],
                    egress_filters: vec![(
                        "3.0.0.2".parse().unwrap(),
                        vec!["100:1".parse().unwrap()],
                        "FILTER_COMM_OUT_R3".into(),
                    )],
                },
            )],
            expectations: vec![Expectation::Unreachable {
                at: "ISP-3".into(),
                prefix: "200.2.0.0/24".parse().unwrap(),
            }],
        }
    }

    #[test]
    fn policy_lookup() {
        let s = demo();
        assert!(s.policy_for("R1").is_some());
        assert!(s.policy_for("R2").is_none());
        assert!(!s.policy_for("R1").unwrap().is_empty());
        assert!(RouterPolicy::default().is_empty());
    }

    #[test]
    fn json_contains_all_sections() {
        let s = demo();
        let j = s.to_json();
        assert!(j.contains("\"family\": \"star\""), "{j}");
        assert!(j.contains("unreachable ISP-3 200.2.0.0/24"), "{j}");
        assert!(j.contains("\"routers\""), "{j}");
        // The nested topology is valid JSON in its own right.
        assert!(crate::json::parse(&j).is_ok(), "{j}");
    }
}

//! The Figure 4 star-network generator.
//!
//! Deterministic addressing scheme (documented so findings are readable):
//!
//! * Hub `R1` has AS 1, router id `1.0.0.1`; edge `Ri` (i = 2..) has AS i,
//!   router id `1.0.0.i`.
//! * Link `R1–Ri` uses subnet `i.0.0.0/24`: R1 side `.1` on
//!   `Ethernet0/{i-1}`, Ri side `.2` on `Ethernet0/0`.
//! * CUSTOMER (AS 100) connects to R1 on `99.0.0.0/24` (R1 `.1`,
//!   CUSTOMER `.2`) and announces `100.0.0.0/24`.
//! * ISP-i (AS 1000+i) connects to Ri on `{100+i}.0.0.0/24` (Ri `.1`,
//!   ISP `.2`) and announces `200.{i}.0.0/24`.
//!
//! Each internal router announces its connected link subnets; stubs
//! announce their own prefix. `n_isps` is capped at 150 to keep the
//! scheme inside the IPv4 plan above.

use crate::topology::{IfaceSpec, NeighborSpec, RouterRole, RouterSpec, Topology};
use net_model::{Asn, Prefix};
use std::net::Ipv4Addr;

/// Well-known names and prefixes of a generated star, used by the
/// no-transit checks and the Modularizer.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StarRoles {
    /// Hub router name (`R1`).
    pub hub: String,
    /// Edge router names (`R2`..).
    pub edges: Vec<String>,
    /// Customer stub name.
    pub customer: String,
    /// ISP stub names, same order as `edges`.
    pub isps: Vec<String>,
    /// The customer's announced prefix.
    pub customer_prefix: Prefix,
    /// Each ISP's announced prefix, same order as `edges`.
    pub isp_prefixes: Vec<Prefix>,
}

/// Generates a star with one hub, `n_isps` edge routers, a customer stub
/// and one ISP stub per edge. Panics if `n_isps` is 0 or exceeds 150.
pub fn star(n_isps: usize) -> (Topology, StarRoles) {
    assert!((1..=150).contains(&n_isps), "n_isps must be 1..=150");
    let mut routers = Vec::new();

    let hub_name = "R1".to_string();
    let customer_name = "CUSTOMER".to_string();
    let mut hub = RouterSpec {
        name: hub_name.clone(),
        asn: Asn(1),
        router_id: "1.0.0.1".parse().unwrap(),
        interfaces: Vec::new(),
        neighbors: Vec::new(),
        networks: Vec::new(),
        role: RouterRole::Hub,
    };
    // Customer link.
    hub.interfaces.push(IfaceSpec {
        name: "Ethernet1/0".into(),
        address: "99.0.0.1/24".parse().unwrap(),
        peer_router: customer_name.clone(),
    });
    hub.neighbors.push(NeighborSpec {
        addr: "99.0.0.2".parse().unwrap(),
        asn: Asn(100),
        peer_router: customer_name.clone(),
    });
    hub.networks.push("99.0.0.0/24".parse().unwrap());

    let mut edges = Vec::new();
    let mut isps = Vec::new();
    let mut isp_prefixes = Vec::new();
    for k in 0..n_isps {
        let i = k + 2; // R2..R{n+1}
        let edge_name = format!("R{i}");
        let isp_name = format!("ISP-{i}");
        let link = format!("{i}.0.0.0/24");
        let link_prefix: Prefix = link.parse().unwrap();
        let hub_addr = Ipv4Addr::from(u32::from(link_prefix.network()) + 1);
        let edge_addr = Ipv4Addr::from(u32::from(link_prefix.network()) + 2);
        // Hub side.
        hub.interfaces.push(IfaceSpec {
            name: format!("Ethernet0/{}", i - 1),
            address: net_model::InterfaceAddress::new(hub_addr, 24).unwrap(),
            peer_router: edge_name.clone(),
        });
        hub.neighbors.push(NeighborSpec {
            addr: edge_addr,
            asn: Asn(i as u32),
            peer_router: edge_name.clone(),
        });
        hub.networks.push(link_prefix);
        // Edge router.
        let isp_link: Prefix = format!("{}.0.0.0/24", 100 + i).parse().unwrap();
        let edge_isp_addr = Ipv4Addr::from(u32::from(isp_link.network()) + 1);
        let isp_addr = Ipv4Addr::from(u32::from(isp_link.network()) + 2);
        let isp_prefix: Prefix = format!("200.{i}.0.0/24").parse().unwrap();
        routers.push(RouterSpec {
            name: edge_name.clone(),
            asn: Asn(i as u32),
            router_id: format!("1.0.0.{i}").parse().unwrap(),
            interfaces: vec![
                IfaceSpec {
                    name: "Ethernet0/0".into(),
                    address: net_model::InterfaceAddress::new(edge_addr, 24).unwrap(),
                    peer_router: hub_name.clone(),
                },
                IfaceSpec {
                    name: "Ethernet0/1".into(),
                    address: net_model::InterfaceAddress::new(edge_isp_addr, 24).unwrap(),
                    peer_router: isp_name.clone(),
                },
            ],
            neighbors: vec![
                NeighborSpec {
                    addr: hub_addr,
                    asn: Asn(1),
                    peer_router: hub_name.clone(),
                },
                NeighborSpec {
                    addr: isp_addr,
                    asn: Asn(1000 + i as u32),
                    peer_router: isp_name.clone(),
                },
            ],
            networks: vec![link_prefix, isp_link],
            role: RouterRole::IspEdge,
        });
        // ISP stub.
        routers.push(RouterSpec {
            name: isp_name.clone(),
            asn: Asn(1000 + i as u32),
            router_id: format!("9.0.0.{i}").parse().unwrap(),
            interfaces: vec![IfaceSpec {
                name: "Ethernet0/0".into(),
                address: net_model::InterfaceAddress::new(isp_addr, 24).unwrap(),
                peer_router: edge_name.clone(),
            }],
            neighbors: vec![NeighborSpec {
                addr: edge_isp_addr,
                asn: Asn(i as u32),
                peer_router: edge_name.clone(),
            }],
            networks: vec![isp_prefix],
            role: RouterRole::ExternalStub,
        });
        edges.push(edge_name);
        isps.push(isp_name);
        isp_prefixes.push(isp_prefix);
    }
    // Customer stub.
    routers.push(RouterSpec {
        name: customer_name.clone(),
        asn: Asn(100),
        router_id: "9.0.0.100".parse().unwrap(),
        interfaces: vec![IfaceSpec {
            name: "Ethernet0/0".into(),
            address: "99.0.0.2/24".parse().unwrap(),
            peer_router: hub_name.clone(),
        }],
        neighbors: vec![NeighborSpec {
            addr: "99.0.0.1".parse().unwrap(),
            asn: Asn(1),
            peer_router: hub_name.clone(),
        }],
        networks: vec!["100.0.0.0/24".parse().unwrap()],
        role: RouterRole::ExternalStub,
    });
    routers.insert(0, hub);
    let topology = Topology { routers };
    let roles = StarRoles {
        hub: hub_name,
        edges,
        customer: customer_name,
        isps,
        customer_prefix: "100.0.0.0/24".parse().unwrap(),
        isp_prefixes,
    };
    (topology, roles)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn figure4_star_shape() {
        // The paper's network: R1 plus 6 ISP-facing routers.
        let (t, roles) = star(6);
        // 1 hub + 6 edges + 6 ISPs + 1 customer.
        assert_eq!(t.routers.len(), 14);
        assert_eq!(roles.edges.len(), 6);
        assert_eq!(roles.isps.len(), 6);
        assert_eq!(t.internal_routers().count(), 7);
        assert_eq!(t.stubs().count(), 7);
        // Hub connects to customer + all edges.
        let hub = t.router("R1").unwrap();
        assert_eq!(hub.interfaces.len(), 7);
        assert_eq!(hub.neighbors.len(), 7);
    }

    #[test]
    fn generated_star_validates() {
        for n in [1, 3, 6, 10] {
            let (t, _) = star(n);
            let problems = t.validate();
            assert!(problems.is_empty(), "n={n}: {problems:?}");
        }
    }

    #[test]
    fn addressing_matches_documented_scheme() {
        let (t, roles) = star(2);
        let r2 = t.router("R2").unwrap();
        assert_eq!(r2.asn, Asn(2));
        assert_eq!(r2.iface_to("R1").unwrap().address.to_string(), "2.0.0.2/24");
        assert_eq!(
            r2.iface_to("ISP-2").unwrap().address.to_string(),
            "102.0.0.1/24"
        );
        assert_eq!(roles.isp_prefixes[0].to_string(), "200.2.0.0/24");
        assert_eq!(roles.customer_prefix.to_string(), "100.0.0.0/24");
        let hub = t.router("R1").unwrap();
        assert_eq!(
            hub.iface_to("R2").unwrap().address.to_string(),
            "2.0.0.1/24"
        );
    }

    #[test]
    #[should_panic(expected = "n_isps")]
    fn zero_isps_panics() {
        let _ = star(0);
    }

    #[test]
    fn distinct_link_subnets() {
        let (t, _) = star(10);
        let mut subnets = std::collections::BTreeSet::new();
        for r in &t.routers {
            for i in &r.interfaces {
                subnets.insert(i.address.subnet());
            }
        }
        // Each link contributes one subnet shared by two endpoints:
        // hub-customer + 10 hub-edge + 10 edge-isp = 21 subnets.
        assert_eq!(subnets.len(), 21);
    }
}

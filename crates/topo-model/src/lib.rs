//! # topo-model — topologies, the star generator, and the topology verifier
//!
//! Implements the "network generator" and "topology verifier" of the
//! paper's second use case:
//!
//! * [`Topology`] — a machine-readable (JSON, via the dependency-free
//!   reader/writer in [`json`]) description of
//!   routers, interfaces, links, BGP sessions and announced networks; the
//!   "JSON dictionary" of Section 4.1.
//! * [`star()`](star::star) — the Figure 4 generator: one hub router facing a CUSTOMER
//!   stub, `n` edge routers each facing an ISP stub, all edges connected
//!   to the hub. "The network generator therefore only needs the number
//!   of routers as input. It has two outputs: 1) a textual description
//!   and 2) a JSON dictionary."
//! * [`describe`] — the Modularizer's textual output: whole-network and
//!   per-router natural-language topology descriptions used as prompts.
//! * [`verifier`] — the topology verifier: compares a parsed config
//!   against the JSON dictionary and reports the seven inconsistency
//!   types of Table 3. The checks are structural, not star-specific:
//!   they hold on any [`Topology`], generated or hand-built.
//! * [`builder`] — a general topology builder with automatic addressing,
//!   used by the `scenario-gen` families (chain, ring, mesh, fat-tree
//!   pod, multi-homed stub) that go beyond the paper's star.
//! * [`scenario`] — a [`scenario::Scenario`]: topology +
//!   per-router policy intents + whole-network expectations, the
//!   generalized input the VPP loop runs on.

pub mod builder;
pub mod describe;
pub mod json;
pub mod scenario;
pub mod star;
pub mod topology;
pub mod verifier;

pub use builder::TopologyBuilder;
pub use describe::{describe_network, describe_router};
pub use scenario::{Expectation, RouterPolicy, Scenario};
pub use star::{star, StarRoles};
pub use topology::{IfaceSpec, NeighborSpec, RouterRole, RouterSpec, Topology};
pub use verifier::{verify_router, TopologyFinding};

//! The Modularizer's textual topology descriptions.
//!
//! "It is difficult to write a natural language description of the
//! topology, a task prone to human error. We wrote an automated script
//! that generates text given the topology as input." (Section 4.1.)
//! These strings are the prompts the LLM receives; the JSON dictionary is
//! what the verifier checks against — same source, no drift.

use crate::topology::{RouterSpec, Topology};
use std::fmt::Write as _;

/// Describes the whole network, one sentence per link and session — the
/// initial context prompt of use case 2.
pub fn describe_network(t: &Topology) -> String {
    let mut out = String::new();
    writeln!(
        out,
        "The network has {} routers: {}.",
        t.routers.len(),
        t.routers
            .iter()
            .map(|r| format!("{} (AS {})", r.name, r.asn))
            .collect::<Vec<_>>()
            .join(", ")
    )
    .unwrap();
    // Each link once (lexicographically smaller endpoint speaks).
    for r in &t.routers {
        for i in &r.interfaces {
            if r.name < i.peer_router {
                if let Some(peer) = t.router(&i.peer_router) {
                    if let Some(back) = peer.iface_to(&r.name) {
                        writeln!(
                            out,
                            "Router {} is connected to Router {} via interface {} \
                             ({}) at {} and interface {} ({}) at {}.",
                            r.name,
                            peer.name,
                            i.name,
                            i.address,
                            r.name,
                            back.name,
                            back.address,
                            peer.name
                        )
                        .unwrap();
                    }
                }
            }
        }
    }
    out
}

/// Describes one router for a per-router synthesis prompt: its AS, router
/// id, interfaces, expected BGP sessions and announced networks.
pub fn describe_router(t: &Topology, name: &str) -> Option<String> {
    let r: &RouterSpec = t.router(name)?;
    let mut out = String::new();
    writeln!(
        out,
        "Router {} has AS number {} and BGP router-id {}.",
        r.name, r.asn, r.router_id
    )
    .unwrap();
    for i in &r.interfaces {
        writeln!(
            out,
            "Interface {} has IP address {} (mask {}) and connects to {}.",
            i.name,
            i.address.addr,
            i.address.dotted_mask(),
            i.peer_router
        )
        .unwrap();
    }
    for n in &r.neighbors {
        writeln!(
            out,
            "It has an eBGP neighbor {} with AS number {} ({}).",
            n.addr, n.asn, n.peer_router
        )
        .unwrap();
    }
    if !r.networks.is_empty() {
        writeln!(
            out,
            "It must announce the following networks in BGP: {}.",
            r.networks
                .iter()
                .map(|p| p.to_string())
                .collect::<Vec<_>>()
                .join(", ")
        )
        .unwrap();
    }
    Some(out)
}

#[cfg(test)]
mod tests {
    use crate::star::star;

    #[test]
    fn network_description_mentions_every_link_once() {
        let (t, _) = star(3);
        let text = super::describe_network(&t);
        // 3 hub-edge links + 3 edge-isp links + 1 customer link.
        let count = text.matches("is connected to").count();
        assert_eq!(count, 7, "{text}");
        assert!(text.contains("R1"));
        assert!(text.contains("ISP-2"));
        assert!(text.contains("CUSTOMER"));
    }

    #[test]
    fn router_description_contains_table3_fields() {
        let (t, _) = star(2);
        let text = super::describe_router(&t, "R2").unwrap();
        assert!(text.contains("AS number 2"), "{text}");
        assert!(text.contains("router-id 1.0.0.2"), "{text}");
        assert!(text.contains("Ethernet0/0"), "{text}");
        assert!(
            text.contains("eBGP neighbor 2.0.0.1 with AS number 1"),
            "{text}"
        );
        assert!(text.contains("announce"), "{text}");
    }

    #[test]
    fn unknown_router_yields_none() {
        let (t, _) = star(2);
        assert!(super::describe_router(&t, "R99").is_none());
    }
}

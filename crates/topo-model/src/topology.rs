//! The topology model and its JSON form.

use crate::json::{self, quote, Json};
use net_model::{Asn, InterfaceAddress, Prefix};
use std::fmt::Write as _;
use std::net::Ipv4Addr;

/// The role a router plays in an experiment topology.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum RouterRole {
    /// The hub of a star (R1 in Figure 4), facing the customer.
    Hub,
    /// An edge router facing one ISP (R2..Rn in Figure 4).
    IspEdge,
    /// An internal router of a generated (non-star) topology: chain,
    /// ring, mesh, fat-tree pod, … Synthesized like any internal router;
    /// carries no hub-and-spoke meaning.
    Core,
    /// An external stub we simulate but do not synthesize configs for
    /// (the CUSTOMER and the ISPs themselves).
    ExternalStub,
}

impl RouterRole {
    fn as_json_str(self) -> &'static str {
        match self {
            RouterRole::Hub => "Hub",
            RouterRole::IspEdge => "IspEdge",
            RouterRole::Core => "Core",
            RouterRole::ExternalStub => "ExternalStub",
        }
    }

    fn from_json_str(s: &str) -> Result<RouterRole, String> {
        match s {
            "Hub" => Ok(RouterRole::Hub),
            "IspEdge" => Ok(RouterRole::IspEdge),
            "Core" => Ok(RouterRole::Core),
            "ExternalStub" => Ok(RouterRole::ExternalStub),
            other => Err(format!("unknown router role {other:?}")),
        }
    }
}

/// One interface of a router in the topology.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct IfaceSpec {
    /// Interface name (Cisco-shaped; the synthesis use case is IOS).
    pub name: String,
    /// Address with prefix length.
    pub address: InterfaceAddress,
    /// Name of the router on the other end of the link.
    pub peer_router: String,
}

/// One expected BGP session of a router.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct NeighborSpec {
    /// The peer's address on the shared subnet.
    pub addr: Ipv4Addr,
    /// The peer's AS.
    pub asn: Asn,
    /// The peer router's name (for prompts).
    pub peer_router: String,
}

/// A router in the topology.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct RouterSpec {
    /// Router name (`R1`, `CUSTOMER`, `ISP-2`).
    pub name: String,
    /// Local AS number.
    pub asn: Asn,
    /// Expected BGP router id.
    pub router_id: Ipv4Addr,
    /// Interfaces with addresses.
    pub interfaces: Vec<IfaceSpec>,
    /// Expected BGP neighbors.
    pub neighbors: Vec<NeighborSpec>,
    /// Networks this router must announce.
    pub networks: Vec<Prefix>,
    /// Role in the experiment.
    pub role: RouterRole,
}

impl RouterSpec {
    /// The interface facing a given peer router, if any.
    pub fn iface_to(&self, peer: &str) -> Option<&IfaceSpec> {
        self.interfaces.iter().find(|i| i.peer_router == peer)
    }
}

/// A whole topology: the JSON dictionary the Modularizer consumes and the
/// topology verifier checks against.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct Topology {
    /// All routers, internal and stub.
    pub routers: Vec<RouterSpec>,
}

impl Topology {
    /// Looks up a router by name.
    pub fn router(&self, name: &str) -> Option<&RouterSpec> {
        self.routers.iter().find(|r| r.name == name)
    }

    /// Routers we synthesize configs for (non-stub).
    pub fn internal_routers(&self) -> impl Iterator<Item = &RouterSpec> {
        self.routers
            .iter()
            .filter(|r| r.role != RouterRole::ExternalStub)
    }

    /// External stubs (customer + ISPs).
    pub fn stubs(&self) -> impl Iterator<Item = &RouterSpec> {
        self.routers
            .iter()
            .filter(|r| r.role == RouterRole::ExternalStub)
    }

    /// Whether routers `a` and `b` share a direct link.
    pub fn has_link(&self, a: &str, b: &str) -> bool {
        self.router(a).is_some_and(|r| r.iface_to(b).is_some())
    }

    /// Names of the internal (non-stub) routers directly linked to
    /// `name`, in topology order.
    pub fn internal_neighbors_of(&self, name: &str) -> Vec<String> {
        let Some(r) = self.router(name) else {
            return Vec::new();
        };
        self.routers
            .iter()
            .filter(|p| p.role != RouterRole::ExternalStub)
            .filter(|p| r.iface_to(&p.name).is_some())
            .map(|p| p.name.clone())
            .collect()
    }

    /// Serializes to pretty JSON (the generator's second output).
    pub fn to_json(&self) -> String {
        let mut out = String::new();
        out.push_str("{\n  \"routers\": [");
        for (i, r) in self.routers.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str("\n    {\n");
            let _ = writeln!(out, "      \"name\": {},", quote(&r.name));
            let _ = writeln!(out, "      \"asn\": {},", r.asn.0);
            let _ = writeln!(
                out,
                "      \"router_id\": {},",
                quote(&r.router_id.to_string())
            );
            out.push_str("      \"interfaces\": [");
            for (j, iface) in r.interfaces.iter().enumerate() {
                if j > 0 {
                    out.push(',');
                }
                let _ = write!(
                    out,
                    "\n        {{ \"name\": {}, \"address\": {}, \"peer_router\": {} }}",
                    quote(&iface.name),
                    quote(&iface.address.to_string()),
                    quote(&iface.peer_router)
                );
            }
            out.push_str(if r.interfaces.is_empty() {
                "],\n"
            } else {
                "\n      ],\n"
            });
            out.push_str("      \"neighbors\": [");
            for (j, n) in r.neighbors.iter().enumerate() {
                if j > 0 {
                    out.push(',');
                }
                let _ = write!(
                    out,
                    "\n        {{ \"addr\": {}, \"asn\": {}, \"peer_router\": {} }}",
                    quote(&n.addr.to_string()),
                    n.asn.0,
                    quote(&n.peer_router)
                );
            }
            out.push_str(if r.neighbors.is_empty() {
                "],\n"
            } else {
                "\n      ],\n"
            });
            let nets: Vec<String> = r.networks.iter().map(|p| quote(&p.to_string())).collect();
            let _ = writeln!(out, "      \"networks\": [{}],", nets.join(", "));
            let _ = writeln!(out, "      \"role\": {}", quote(r.role.as_json_str()));
            out.push_str("    }");
        }
        out.push_str(if self.routers.is_empty() {
            "]\n}"
        } else {
            "\n  ]\n}"
        });
        out
    }

    /// Parses from JSON (the inverse of [`Topology::to_json`]).
    pub fn from_json(s: &str) -> Result<Self, String> {
        let doc = json::parse(s)?;
        let routers = doc
            .get("routers")
            .and_then(Json::as_arr)
            .ok_or("missing \"routers\" array")?;
        let mut out = Vec::with_capacity(routers.len());
        for r in routers {
            out.push(router_from_json(r)?);
        }
        Ok(Topology { routers: out })
    }

    /// Whether every link is consistent: both endpoints exist, address
    /// each other on the same subnet, and neighbor declarations point at
    /// real interface addresses. Returns human-readable problems.
    pub fn validate(&self) -> Vec<String> {
        let mut problems = Vec::new();
        for r in &self.routers {
            for i in &r.interfaces {
                let Some(peer) = self.router(&i.peer_router) else {
                    problems.push(format!(
                        "{}: interface {} names unknown peer {}",
                        r.name, i.name, i.peer_router
                    ));
                    continue;
                };
                let Some(back) = peer.iface_to(&r.name) else {
                    problems.push(format!(
                        "{}: peer {} has no interface back",
                        r.name, peer.name
                    ));
                    continue;
                };
                if !i.address.same_subnet(&back.address) {
                    problems.push(format!(
                        "{}–{}: link endpoints on different subnets ({} vs {})",
                        r.name, peer.name, i.address, back.address
                    ));
                }
            }
            for n in &r.neighbors {
                let Some(peer) = self.router(&n.peer_router) else {
                    problems.push(format!(
                        "{}: neighbor names unknown router {}",
                        r.name, n.peer_router
                    ));
                    continue;
                };
                if peer.asn != n.asn {
                    problems.push(format!(
                        "{}: neighbor {} AS {} but {} has AS {}",
                        r.name, n.addr, n.asn, peer.name, peer.asn
                    ));
                }
                if !peer.interfaces.iter().any(|i| i.address.addr == n.addr) {
                    problems.push(format!(
                        "{}: neighbor address {} is not an interface of {}",
                        r.name, n.addr, peer.name
                    ));
                }
            }
        }
        problems
    }
}

fn str_field<'a>(v: &'a Json, key: &str) -> Result<&'a str, String> {
    v.get(key)
        .and_then(Json::as_str)
        .ok_or_else(|| format!("missing string field {key:?}"))
}

fn parse_field<T: std::str::FromStr>(v: &Json, key: &str) -> Result<T, String>
where
    T::Err: std::fmt::Display,
{
    str_field(v, key)?
        .parse()
        .map_err(|e| format!("bad {key}: {e}"))
}

fn arr_field<'a>(v: &'a Json, key: &str) -> Result<&'a [Json], String> {
    v.get(key)
        .and_then(Json::as_arr)
        .ok_or_else(|| format!("missing array field {key:?}"))
}

fn router_from_json(v: &Json) -> Result<RouterSpec, String> {
    let mut interfaces = Vec::new();
    for i in arr_field(v, "interfaces")? {
        interfaces.push(IfaceSpec {
            name: str_field(i, "name")?.to_string(),
            address: parse_field(i, "address")?,
            peer_router: str_field(i, "peer_router")?.to_string(),
        });
    }
    let mut neighbors = Vec::new();
    for n in arr_field(v, "neighbors")? {
        neighbors.push(NeighborSpec {
            addr: parse_field(n, "addr")?,
            asn: Asn(n
                .get("asn")
                .and_then(Json::as_u32)
                .ok_or("bad neighbor asn")?),
            peer_router: str_field(n, "peer_router")?.to_string(),
        });
    }
    let mut networks = Vec::new();
    for p in arr_field(v, "networks")? {
        networks.push(
            p.as_str()
                .ok_or("network must be a string")?
                .parse::<Prefix>()
                .map_err(|e| format!("bad network: {e}"))?,
        );
    }
    Ok(RouterSpec {
        name: str_field(v, "name")?.to_string(),
        asn: Asn(v.get("asn").and_then(Json::as_u32).ok_or("bad asn")?),
        router_id: parse_field(v, "router_id")?,
        interfaces,
        neighbors,
        networks,
        role: RouterRole::from_json_str(str_field(v, "role")?)?,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> Topology {
        Topology {
            routers: vec![
                RouterSpec {
                    name: "R1".into(),
                    asn: Asn(1),
                    router_id: "1.0.0.1".parse().unwrap(),
                    interfaces: vec![IfaceSpec {
                        name: "Ethernet0/0".into(),
                        address: "2.0.0.1/24".parse().unwrap(),
                        peer_router: "R2".into(),
                    }],
                    neighbors: vec![NeighborSpec {
                        addr: "2.0.0.2".parse().unwrap(),
                        asn: Asn(2),
                        peer_router: "R2".into(),
                    }],
                    networks: vec!["2.0.0.0/24".parse().unwrap()],
                    role: RouterRole::Hub,
                },
                RouterSpec {
                    name: "R2".into(),
                    asn: Asn(2),
                    router_id: "1.0.0.2".parse().unwrap(),
                    interfaces: vec![IfaceSpec {
                        name: "Ethernet0/0".into(),
                        address: "2.0.0.2/24".parse().unwrap(),
                        peer_router: "R1".into(),
                    }],
                    neighbors: vec![NeighborSpec {
                        addr: "2.0.0.1".parse().unwrap(),
                        asn: Asn(1),
                        peer_router: "R1".into(),
                    }],
                    networks: vec![],
                    role: RouterRole::IspEdge,
                },
            ],
        }
    }

    #[test]
    fn from_json_rejects_missing_array_fields() {
        let json = tiny().to_json();
        // Dropping a required array key (e.g. a misspelled "neighbors")
        // must fail to parse, not produce a router with zero sessions.
        let broken = json.replace("\"neighbors\"", "\"neighbours\"");
        assert!(Topology::from_json(&broken).is_err());
    }

    #[test]
    fn json_roundtrip() {
        let t = tiny();
        let json = t.to_json();
        let back = Topology::from_json(&json).unwrap();
        assert_eq!(t, back);
        assert!(json.contains("\"R1\""));
    }

    #[test]
    fn valid_topology_has_no_problems() {
        assert!(tiny().validate().is_empty());
    }

    #[test]
    fn validation_catches_asymmetric_link() {
        let mut t = tiny();
        t.routers[1].interfaces[0].address = "9.0.0.2/24".parse().unwrap();
        let p = t.validate();
        assert!(p.iter().any(|m| m.contains("different subnets")), "{p:?}");
        // Neighbor address check also fires (2.0.0.2 no longer exists).
        assert!(p.iter().any(|m| m.contains("not an interface")), "{p:?}");
    }

    #[test]
    fn validation_catches_wrong_neighbor_as() {
        let mut t = tiny();
        t.routers[0].neighbors[0].asn = Asn(99);
        let p = t.validate();
        assert!(p.iter().any(|m| m.contains("AS 99")), "{p:?}");
    }

    #[test]
    fn core_role_roundtrips_in_json() {
        let mut t = tiny();
        t.routers[1].role = RouterRole::Core;
        let back = Topology::from_json(&t.to_json()).unwrap();
        assert_eq!(back.router("R2").unwrap().role, RouterRole::Core);
        assert_eq!(back.internal_routers().count(), 2);
    }

    #[test]
    fn link_and_neighbor_queries() {
        let t = tiny();
        assert!(t.has_link("R1", "R2"));
        assert!(!t.has_link("R1", "R9"));
        assert_eq!(t.internal_neighbors_of("R1"), vec!["R2".to_string()]);
        assert!(t.internal_neighbors_of("R9").is_empty());
    }

    #[test]
    fn lookups() {
        let t = tiny();
        assert!(t.router("R1").is_some());
        assert!(t.router("R9").is_none());
        assert_eq!(t.internal_routers().count(), 2);
        assert_eq!(t.stubs().count(), 0);
        assert!(t.router("R1").unwrap().iface_to("R2").is_some());
        assert!(t.router("R1").unwrap().iface_to("R9").is_none());
    }
}

//! The topology model and its JSON form.

use net_model::{Asn, InterfaceAddress, Prefix};
use serde::{Deserialize, Serialize};
use std::net::Ipv4Addr;

/// The role a router plays in an experiment topology.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum RouterRole {
    /// The hub of a star (R1 in Figure 4), facing the customer.
    Hub,
    /// An edge router facing one ISP (R2..Rn in Figure 4).
    IspEdge,
    /// An external stub we simulate but do not synthesize configs for
    /// (the CUSTOMER and the ISPs themselves).
    ExternalStub,
}

/// One interface of a router in the topology.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct IfaceSpec {
    /// Interface name (Cisco-shaped; the synthesis use case is IOS).
    pub name: String,
    /// Address with prefix length.
    pub address: InterfaceAddress,
    /// Name of the router on the other end of the link.
    pub peer_router: String,
}

/// One expected BGP session of a router.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct NeighborSpec {
    /// The peer's address on the shared subnet.
    pub addr: Ipv4Addr,
    /// The peer's AS.
    pub asn: Asn,
    /// The peer router's name (for prompts).
    pub peer_router: String,
}

/// A router in the topology.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct RouterSpec {
    /// Router name (`R1`, `CUSTOMER`, `ISP-2`).
    pub name: String,
    /// Local AS number.
    pub asn: Asn,
    /// Expected BGP router id.
    pub router_id: Ipv4Addr,
    /// Interfaces with addresses.
    pub interfaces: Vec<IfaceSpec>,
    /// Expected BGP neighbors.
    pub neighbors: Vec<NeighborSpec>,
    /// Networks this router must announce.
    pub networks: Vec<Prefix>,
    /// Role in the experiment.
    pub role: RouterRole,
}

impl RouterSpec {
    /// The interface facing a given peer router, if any.
    pub fn iface_to(&self, peer: &str) -> Option<&IfaceSpec> {
        self.interfaces.iter().find(|i| i.peer_router == peer)
    }
}

/// A whole topology: the JSON dictionary the Modularizer consumes and the
/// topology verifier checks against.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Topology {
    /// All routers, internal and stub.
    pub routers: Vec<RouterSpec>,
}

impl Topology {
    /// Looks up a router by name.
    pub fn router(&self, name: &str) -> Option<&RouterSpec> {
        self.routers.iter().find(|r| r.name == name)
    }

    /// Routers we synthesize configs for (non-stub).
    pub fn internal_routers(&self) -> impl Iterator<Item = &RouterSpec> {
        self.routers
            .iter()
            .filter(|r| r.role != RouterRole::ExternalStub)
    }

    /// External stubs (customer + ISPs).
    pub fn stubs(&self) -> impl Iterator<Item = &RouterSpec> {
        self.routers
            .iter()
            .filter(|r| r.role == RouterRole::ExternalStub)
    }

    /// Serializes to pretty JSON (the generator's second output).
    pub fn to_json(&self) -> String {
        serde_json::to_string_pretty(self).expect("topology serializes")
    }

    /// Parses from JSON.
    pub fn from_json(s: &str) -> Result<Self, serde_json::Error> {
        serde_json::from_str(s)
    }

    /// Whether every link is consistent: both endpoints exist, address
    /// each other on the same subnet, and neighbor declarations point at
    /// real interface addresses. Returns human-readable problems.
    pub fn validate(&self) -> Vec<String> {
        let mut problems = Vec::new();
        for r in &self.routers {
            for i in &r.interfaces {
                let Some(peer) = self.router(&i.peer_router) else {
                    problems.push(format!(
                        "{}: interface {} names unknown peer {}",
                        r.name, i.name, i.peer_router
                    ));
                    continue;
                };
                let Some(back) = peer.iface_to(&r.name) else {
                    problems.push(format!(
                        "{}: peer {} has no interface back",
                        r.name, peer.name
                    ));
                    continue;
                };
                if !i.address.same_subnet(&back.address) {
                    problems.push(format!(
                        "{}–{}: link endpoints on different subnets ({} vs {})",
                        r.name, peer.name, i.address, back.address
                    ));
                }
            }
            for n in &r.neighbors {
                let Some(peer) = self.router(&n.peer_router) else {
                    problems.push(format!(
                        "{}: neighbor names unknown router {}",
                        r.name, n.peer_router
                    ));
                    continue;
                };
                if peer.asn != n.asn {
                    problems.push(format!(
                        "{}: neighbor {} AS {} but {} has AS {}",
                        r.name, n.addr, n.asn, peer.name, peer.asn
                    ));
                }
                if !peer.interfaces.iter().any(|i| i.address.addr == n.addr) {
                    problems.push(format!(
                        "{}: neighbor address {} is not an interface of {}",
                        r.name, n.addr, peer.name
                    ));
                }
            }
        }
        problems
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> Topology {
        Topology {
            routers: vec![
                RouterSpec {
                    name: "R1".into(),
                    asn: Asn(1),
                    router_id: "1.0.0.1".parse().unwrap(),
                    interfaces: vec![IfaceSpec {
                        name: "Ethernet0/0".into(),
                        address: "2.0.0.1/24".parse().unwrap(),
                        peer_router: "R2".into(),
                    }],
                    neighbors: vec![NeighborSpec {
                        addr: "2.0.0.2".parse().unwrap(),
                        asn: Asn(2),
                        peer_router: "R2".into(),
                    }],
                    networks: vec!["2.0.0.0/24".parse().unwrap()],
                    role: RouterRole::Hub,
                },
                RouterSpec {
                    name: "R2".into(),
                    asn: Asn(2),
                    router_id: "1.0.0.2".parse().unwrap(),
                    interfaces: vec![IfaceSpec {
                        name: "Ethernet0/0".into(),
                        address: "2.0.0.2/24".parse().unwrap(),
                        peer_router: "R1".into(),
                    }],
                    neighbors: vec![NeighborSpec {
                        addr: "2.0.0.1".parse().unwrap(),
                        asn: Asn(1),
                        peer_router: "R1".into(),
                    }],
                    networks: vec![],
                    role: RouterRole::IspEdge,
                },
            ],
        }
    }

    #[test]
    fn json_roundtrip() {
        let t = tiny();
        let json = t.to_json();
        let back = Topology::from_json(&json).unwrap();
        assert_eq!(t, back);
        assert!(json.contains("\"R1\""));
    }

    #[test]
    fn valid_topology_has_no_problems() {
        assert!(tiny().validate().is_empty());
    }

    #[test]
    fn validation_catches_asymmetric_link() {
        let mut t = tiny();
        t.routers[1].interfaces[0].address = "9.0.0.2/24".parse().unwrap();
        let p = t.validate();
        assert!(p.iter().any(|m| m.contains("different subnets")), "{p:?}");
        // Neighbor address check also fires (2.0.0.2 no longer exists).
        assert!(p.iter().any(|m| m.contains("not an interface")), "{p:?}");
    }

    #[test]
    fn validation_catches_wrong_neighbor_as() {
        let mut t = tiny();
        t.routers[0].neighbors[0].asn = Asn(99);
        let p = t.validate();
        assert!(p.iter().any(|m| m.contains("AS 99")), "{p:?}");
    }

    #[test]
    fn lookups() {
        let t = tiny();
        assert!(t.router("R1").is_some());
        assert!(t.router("R9").is_none());
        assert_eq!(t.internal_routers().count(), 2);
        assert_eq!(t.stubs().count(), 0);
        assert!(t.router("R1").unwrap().iface_to("R2").is_some());
        assert!(t.router("R1").unwrap().iface_to("R9").is_none());
    }
}

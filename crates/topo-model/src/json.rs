//! A minimal JSON reader/writer for the topology exchange format.
//!
//! The workspace builds offline, so `serde`/`serde_json` are not
//! available; the topology dictionary is the only JSON surface in the
//! system and needs exactly objects, arrays, strings, numbers and bools.
//! The writer pretty-prints with two-space indentation (matching what
//! `serde_json::to_string_pretty` produced for the same schema), and the
//! reader is a strict recursive-descent parser that rejects trailing
//! garbage.

use std::fmt::Write as _;

/// A parsed JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`
    Null,
    /// `true` / `false`
    Bool(bool),
    /// Any JSON number (stored as `f64`; the topology schema only uses
    /// small integers).
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object, in source order.
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// Object field lookup.
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(fields) => fields.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The string payload, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The boolean payload, if this is a bool.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Json::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// The numeric payload as u32, if this is a non-negative integer.
    pub fn as_u32(&self) -> Option<u32> {
        match self {
            Json::Num(n) if *n >= 0.0 && n.fract() == 0.0 && *n <= u32::MAX as f64 => {
                Some(*n as u32)
            }
            _ => None,
        }
    }

    /// The array payload, if this is an array.
    pub fn as_arr(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(items) => Some(items),
            _ => None,
        }
    }
}

/// Parses a complete JSON document.
pub fn parse(input: &str) -> Result<Json, String> {
    let bytes = input.as_bytes();
    let mut pos = 0;
    let value = parse_value(bytes, &mut pos)?;
    skip_ws(bytes, &mut pos);
    if pos != bytes.len() {
        return Err(format!("trailing data at byte {pos}"));
    }
    Ok(value)
}

fn skip_ws(b: &[u8], pos: &mut usize) {
    while *pos < b.len() && matches!(b[*pos], b' ' | b'\t' | b'\n' | b'\r') {
        *pos += 1;
    }
}

fn expect(b: &[u8], pos: &mut usize, c: u8) -> Result<(), String> {
    if *pos < b.len() && b[*pos] == c {
        *pos += 1;
        Ok(())
    } else {
        Err(format!(
            "expected '{}' at byte {} (found {:?})",
            c as char,
            *pos,
            b.get(*pos).map(|&x| x as char)
        ))
    }
}

fn parse_value(b: &[u8], pos: &mut usize) -> Result<Json, String> {
    skip_ws(b, pos);
    match b.get(*pos) {
        Some(b'{') => parse_object(b, pos),
        Some(b'[') => parse_array(b, pos),
        Some(b'"') => Ok(Json::Str(parse_string(b, pos)?)),
        Some(b't') => parse_lit(b, pos, "true", Json::Bool(true)),
        Some(b'f') => parse_lit(b, pos, "false", Json::Bool(false)),
        Some(b'n') => parse_lit(b, pos, "null", Json::Null),
        Some(c) if c.is_ascii_digit() || *c == b'-' => parse_number(b, pos),
        other => Err(format!("unexpected {other:?} at byte {pos}", pos = *pos)),
    }
}

fn parse_lit(b: &[u8], pos: &mut usize, lit: &str, value: Json) -> Result<Json, String> {
    if b[*pos..].starts_with(lit.as_bytes()) {
        *pos += lit.len();
        Ok(value)
    } else {
        Err(format!("invalid literal at byte {pos}", pos = *pos))
    }
}

fn parse_number(b: &[u8], pos: &mut usize) -> Result<Json, String> {
    let start = *pos;
    if b.get(*pos) == Some(&b'-') {
        *pos += 1;
    }
    while *pos < b.len()
        && (b[*pos].is_ascii_digit() || matches!(b[*pos], b'.' | b'e' | b'E' | b'+' | b'-'))
    {
        *pos += 1;
    }
    std::str::from_utf8(&b[start..*pos])
        .ok()
        .and_then(|s| s.parse::<f64>().ok())
        .map(Json::Num)
        .ok_or_else(|| format!("invalid number at byte {start}"))
}

fn parse_string(b: &[u8], pos: &mut usize) -> Result<String, String> {
    expect(b, pos, b'"')?;
    let mut out = String::new();
    loop {
        match b.get(*pos) {
            None => return Err("unterminated string".into()),
            Some(b'"') => {
                *pos += 1;
                return Ok(out);
            }
            Some(b'\\') => {
                *pos += 1;
                let esc = b.get(*pos).ok_or("unterminated escape")?;
                *pos += 1;
                match esc {
                    b'"' => out.push('"'),
                    b'\\' => out.push('\\'),
                    b'/' => out.push('/'),
                    b'n' => out.push('\n'),
                    b't' => out.push('\t'),
                    b'r' => out.push('\r'),
                    b'b' => out.push('\u{8}'),
                    b'f' => out.push('\u{c}'),
                    b'u' => {
                        let mut code = parse_hex4(b, pos)?;
                        // Surrogate pair: a high half must be followed by
                        // `\uDC00..\uDFFF`, combining into one scalar.
                        if (0xd800..0xdc00).contains(&code) {
                            if b.get(*pos) != Some(&b'\\') || b.get(*pos + 1) != Some(&b'u') {
                                return Err("unpaired high surrogate".into());
                            }
                            *pos += 2;
                            let low = parse_hex4(b, pos)?;
                            if !(0xdc00..0xe000).contains(&low) {
                                return Err("invalid low surrogate".into());
                            }
                            code = 0x10000 + ((code - 0xd800) << 10) + (low - 0xdc00);
                        }
                        let c = char::from_u32(code)
                            .ok_or_else(|| format!("invalid code point \\u{{{code:x}}}"))?;
                        out.push(c);
                    }
                    other => return Err(format!("bad escape \\{}", *other as char)),
                }
            }
            Some(_) => {
                // Consume one UTF-8 scalar (the input is a &str, so
                // boundaries are valid).
                let s = &b[*pos..];
                let ch_len = std::str::from_utf8(s)
                    .map_err(|e| e.to_string())?
                    .chars()
                    .next()
                    .map(char::len_utf8)
                    .unwrap_or(1);
                out.push_str(std::str::from_utf8(&s[..ch_len]).unwrap());
                *pos += ch_len;
            }
        }
    }
}

/// Reads exactly four hex digits at `pos`.
fn parse_hex4(b: &[u8], pos: &mut usize) -> Result<u32, String> {
    let hex = b
        .get(*pos..*pos + 4)
        .and_then(|h| std::str::from_utf8(h).ok())
        .ok_or("bad \\u escape")?;
    let code = u32::from_str_radix(hex, 16).map_err(|e| e.to_string())?;
    *pos += 4;
    Ok(code)
}

fn parse_array(b: &[u8], pos: &mut usize) -> Result<Json, String> {
    expect(b, pos, b'[')?;
    let mut items = Vec::new();
    skip_ws(b, pos);
    if b.get(*pos) == Some(&b']') {
        *pos += 1;
        return Ok(Json::Arr(items));
    }
    loop {
        items.push(parse_value(b, pos)?);
        skip_ws(b, pos);
        match b.get(*pos) {
            Some(b',') => {
                *pos += 1;
            }
            Some(b']') => {
                *pos += 1;
                return Ok(Json::Arr(items));
            }
            other => return Err(format!("expected ',' or ']' but found {other:?}")),
        }
    }
}

fn parse_object(b: &[u8], pos: &mut usize) -> Result<Json, String> {
    expect(b, pos, b'{')?;
    let mut fields = Vec::new();
    skip_ws(b, pos);
    if b.get(*pos) == Some(&b'}') {
        *pos += 1;
        return Ok(Json::Obj(fields));
    }
    loop {
        skip_ws(b, pos);
        let key = parse_string(b, pos)?;
        skip_ws(b, pos);
        expect(b, pos, b':')?;
        let value = parse_value(b, pos)?;
        fields.push((key, value));
        skip_ws(b, pos);
        match b.get(*pos) {
            Some(b',') => {
                *pos += 1;
            }
            Some(b'}') => {
                *pos += 1;
                return Ok(Json::Obj(fields));
            }
            other => return Err(format!("expected ',' or '}}' but found {other:?}")),
        }
    }
}

/// Escapes and quotes a string for JSON output.
pub fn quote(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

/// An incremental writer for single-line JSON objects — the shape every
/// fleetd `{"event":...}` line and result line uses. Each field method
/// escapes its value through [`quote`], so ad-hoc event kinds can't
/// silently emit invalid JSON the way hand-assembled `format!` strings
/// could. Builder-by-value so call sites chain:
///
/// ```
/// use topo_model::json::ObjBuilder;
/// let line = ObjBuilder::event("reject")
///     .str("reason", "bad_request")
///     .u64("line", 3)
///     .finish();
/// assert_eq!(line, r#"{"event":"reject","reason":"bad_request","line":3}"#);
/// ```
#[derive(Debug, Default)]
pub struct ObjBuilder {
    buf: String,
    any: bool,
}

impl ObjBuilder {
    /// An empty object.
    pub fn new() -> Self {
        ObjBuilder::default()
    }

    /// An object opening with `"event":"<kind>"` — the fleetd line
    /// convention.
    pub fn event(kind: &str) -> Self {
        ObjBuilder::new().str("event", kind)
    }

    fn key(&mut self, key: &str) {
        if self.any {
            self.buf.push(',');
        }
        self.any = true;
        self.buf.push_str(&quote(key));
        self.buf.push(':');
    }

    /// Adds a string field (escaped).
    pub fn str(mut self, key: &str, value: &str) -> Self {
        self.key(key);
        self.buf.push_str(&quote(value));
        self
    }

    /// Adds an unsigned integer field.
    pub fn u64(mut self, key: &str, value: u64) -> Self {
        self.key(key);
        let _ = write!(self.buf, "{value}");
        self
    }

    /// Adds a float field with `decimals` places.
    pub fn f64(mut self, key: &str, value: f64, decimals: usize) -> Self {
        self.key(key);
        let _ = write!(self.buf, "{value:.decimals$}");
        self
    }

    /// Adds a boolean field.
    pub fn bool(mut self, key: &str, value: bool) -> Self {
        self.key(key);
        self.buf.push_str(if value { "true" } else { "false" });
        self
    }

    /// Adds a pre-rendered JSON value verbatim (for nested objects or
    /// arrays built elsewhere). The caller vouches for its validity.
    pub fn raw(mut self, key: &str, json: &str) -> Self {
        self.key(key);
        self.buf.push_str(json);
        self
    }

    /// Closes the object and returns the line (no trailing newline).
    pub fn finish(self) -> String {
        format!("{{{}}}", self.buf)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_nested_document() {
        let v = parse(r#"{"a": [1, 2.5, {"b": "x\ny"}], "c": true, "d": null}"#).unwrap();
        assert_eq!(v.get("c"), Some(&Json::Bool(true)));
        let arr = v.get("a").unwrap().as_arr().unwrap();
        assert_eq!(arr[0].as_u32(), Some(1));
        assert_eq!(arr[1], Json::Num(2.5));
        assert_eq!(arr[2].get("b").unwrap().as_str(), Some("x\ny"));
        assert_eq!(v.get("d"), Some(&Json::Null));
    }

    #[test]
    fn rejects_garbage() {
        assert!(parse("{").is_err());
        assert!(parse("[1,]").is_err());
        assert!(parse("{} extra").is_err());
        assert!(parse(r#"{"a" 1}"#).is_err());
    }

    #[test]
    fn quote_escapes() {
        assert_eq!(quote("a\"b\\c\n"), r#""a\"b\\c\n""#);
        let round = parse(&quote("weird \u{1} – ok")).unwrap();
        assert_eq!(round.as_str(), Some("weird \u{1} – ok"));
    }

    #[test]
    fn builder_escapes_and_round_trips() {
        let line = ObjBuilder::event("reject")
            .str("reason", "bad \"quote\"\nline")
            .u64("n", 42)
            .f64("ms", 1.2345, 2)
            .bool("ok", false)
            .raw("nested", r#"{"a":[1,2]}"#)
            .finish();
        let v = parse(&line).expect("builder output must parse");
        assert_eq!(v.get("event").unwrap().as_str(), Some("reject"));
        assert_eq!(
            v.get("reason").unwrap().as_str(),
            Some("bad \"quote\"\nline")
        );
        assert_eq!(v.get("n").unwrap().as_u32(), Some(42));
        assert_eq!(v.get("ms"), Some(&Json::Num(1.23)));
        assert_eq!(v.get("ok").unwrap().as_bool(), Some(false));
        assert_eq!(
            v.get("nested")
                .unwrap()
                .get("a")
                .unwrap()
                .as_arr()
                .unwrap()
                .len(),
            2
        );
        assert_eq!(ObjBuilder::new().finish(), "{}");
    }

    #[test]
    fn as_u32_bounds() {
        assert_eq!(parse("7").unwrap().as_u32(), Some(7));
        assert_eq!(parse("-1").unwrap().as_u32(), None);
        assert_eq!(parse("1.5").unwrap().as_u32(), None);
    }

    #[test]
    fn surrogate_pairs_decode_and_strays_error() {
        // \ud83d\ude00 is the surrogate-pair spelling of 😀.
        let v = parse(r#""R\ud83d\ude00""#).unwrap();
        assert_eq!(v.as_str(), Some("R😀"));
        // Raw (non-escaped) UTF-8 passes through untouched too.
        assert_eq!(parse("\"R😀\"").unwrap().as_str(), Some("R😀"));
        assert!(parse(r#""\ud83d""#).is_err(), "unpaired high surrogate");
        assert!(parse(r#""\ud83dx""#).is_err());
        assert!(parse(r#""\udc00""#).is_err(), "stray low surrogate");
        // Plain BMP escapes still work.
        assert_eq!(parse(r#""A""#).unwrap().as_str(), Some("A"));
    }
}

//! A general topology builder for non-star experiment networks.
//!
//! The star generator ([`crate::star()`]) hard-codes the paper's Figure 4
//! addressing; every other topology family (chain, ring, mesh, fat-tree
//! pod, multi-homed stub) is built with this allocator instead. The
//! builder owns the addressing plan so generated topologies are valid by
//! construction:
//!
//! * link `k` gets subnet `10.{k/256}.{k%256}.0/24`, `.1` on the
//!   first-named endpoint and `.2` on the second;
//! * stub `k` announces `172.{16 + k/256}.{k%256}.0/24`;
//! * internal router `k` gets AS `k+1` and router id `1.0.{k/256}.{k%256+1}`;
//! * stub `k` gets AS `64512+k` and router id `9.0.{k/256}.{k%256+1}`;
//! * interface names count up per router: `Ethernet0/0`, `Ethernet0/1`, …
//!
//! Internal endpoints announce every connected link subnet (the star's
//! convention); stubs announce only their allocated prefix.

use crate::topology::{IfaceSpec, NeighborSpec, RouterRole, RouterSpec, Topology};
use net_model::{Asn, InterfaceAddress, Prefix};
use std::net::Ipv4Addr;

/// Base AS number for external stubs (private-use range).
pub const STUB_AS_BASE: u32 = 64_512;

/// Incrementally builds a [`Topology`] with automatic addressing.
#[derive(Debug, Default)]
pub struct TopologyBuilder {
    routers: Vec<RouterSpec>,
    links: u32,
    stubs: u32,
    internals: u32,
}

impl TopologyBuilder {
    /// An empty builder.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds an internal router (one we synthesize a config for) and
    /// returns its index.
    pub fn router(&mut self, name: impl Into<String>, role: RouterRole) -> usize {
        assert_ne!(role, RouterRole::ExternalStub, "use stub() for stubs");
        let k = self.internals;
        self.internals += 1;
        self.routers.push(RouterSpec {
            name: name.into(),
            asn: Asn(k + 1),
            router_id: Ipv4Addr::new(1, 0, (k / 256) as u8, (k % 256 + 1) as u8),
            interfaces: Vec::new(),
            neighbors: Vec::new(),
            networks: Vec::new(),
            role,
        });
        self.routers.len() - 1
    }

    /// Connects two routers with a fresh /24, adding interfaces, the
    /// bidirectional eBGP neighbor declarations, and (for internal
    /// endpoints) the link subnet to `networks`. Returns the subnet.
    pub fn link(&mut self, a: usize, b: usize) -> Prefix {
        assert_ne!(a, b, "self-links are not allowed");
        let k = self.links;
        self.links += 1;
        let subnet: Prefix = format!("10.{}.{}.0/24", k / 256, k % 256).parse().unwrap();
        let base = u32::from(subnet.network());
        let addr_a = Ipv4Addr::from(base + 1);
        let addr_b = Ipv4Addr::from(base + 2);
        let (asn_a, name_a) = (self.routers[a].asn, self.routers[a].name.clone());
        let (asn_b, name_b) = (self.routers[b].asn, self.routers[b].name.clone());
        for (i, peer_name, my_addr, peer_addr, peer_asn) in [
            (a, name_b, addr_a, addr_b, asn_b),
            (b, name_a, addr_b, addr_a, asn_a),
        ] {
            let r = &mut self.routers[i];
            let iface = format!("Ethernet0/{}", r.interfaces.len());
            r.interfaces.push(IfaceSpec {
                name: iface,
                address: InterfaceAddress::new(my_addr, 24).unwrap(),
                peer_router: peer_name.clone(),
            });
            r.neighbors.push(NeighborSpec {
                addr: peer_addr,
                asn: peer_asn,
                peer_router: peer_name,
            });
            if r.role != RouterRole::ExternalStub {
                r.networks.push(subnet);
            }
        }
        subnet
    }

    /// Adds an external stub attached to router `attach`, announcing a
    /// freshly allocated prefix. Returns `(stub index, announced prefix)`.
    pub fn stub(&mut self, name: impl Into<String>, attach: usize) -> (usize, Prefix) {
        let k = self.stubs;
        self.stubs += 1;
        let prefix: Prefix = format!("172.{}.{}.0/24", 16 + k / 256, k % 256)
            .parse()
            .unwrap();
        self.routers.push(RouterSpec {
            name: name.into(),
            asn: Asn(STUB_AS_BASE + k),
            router_id: Ipv4Addr::new(9, 0, (k / 256) as u8, (k % 256 + 1) as u8),
            interfaces: Vec::new(),
            neighbors: Vec::new(),
            networks: vec![prefix],
            role: RouterRole::ExternalStub,
        });
        let idx = self.routers.len() - 1;
        self.link(attach, idx);
        (idx, prefix)
    }

    /// Attaches an existing stub to an additional router (multi-homing).
    pub fn multihome(&mut self, stub: usize, attach: usize) {
        assert_eq!(self.routers[stub].role, RouterRole::ExternalStub);
        self.link(attach, stub);
    }

    /// Finalizes the topology. Debug-asserts internal consistency — a
    /// builder bug, not an input error, if it fires.
    pub fn build(self) -> Topology {
        let t = Topology {
            routers: self.routers,
        };
        debug_assert!(t.validate().is_empty(), "{:?}", t.validate());
        t
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// R0 — R1 — R2 with a stub on each end.
    fn small_chain() -> (Topology, Prefix, Prefix) {
        let mut b = TopologyBuilder::new();
        let r0 = b.router("R0", RouterRole::Core);
        let r1 = b.router("R1", RouterRole::Core);
        let r2 = b.router("R2", RouterRole::Core);
        b.link(r0, r1);
        b.link(r1, r2);
        let (_, p_left) = b.stub("LEFT", r0);
        let (_, p_right) = b.stub("RIGHT", r2);
        (b.build(), p_left, p_right)
    }

    #[test]
    fn built_topology_validates() {
        let (t, _, _) = small_chain();
        assert!(t.validate().is_empty(), "{:?}", t.validate());
        assert_eq!(t.internal_routers().count(), 3);
        assert_eq!(t.stubs().count(), 2);
    }

    #[test]
    fn addressing_is_deterministic_and_disjoint() {
        let (t, p_left, p_right) = small_chain();
        assert_eq!(p_left.to_string(), "172.16.0.0/24");
        assert_eq!(p_right.to_string(), "172.16.1.0/24");
        let r0 = t.router("R0").unwrap();
        assert_eq!(r0.asn, Asn(1));
        assert_eq!(r0.router_id.to_string(), "1.0.0.1");
        assert_eq!(
            r0.iface_to("R1").unwrap().address.to_string(),
            "10.0.0.1/24"
        );
        // Every link subnet is unique.
        let mut subnets = std::collections::BTreeSet::new();
        for r in &t.routers {
            for i in &r.interfaces {
                subnets.insert(i.address.subnet());
            }
        }
        assert_eq!(subnets.len(), 4); // 2 internal links + 2 stub links
    }

    #[test]
    fn internal_endpoints_announce_link_subnets_stubs_do_not() {
        let (t, p_left, _) = small_chain();
        let r1 = t.router("R1").unwrap();
        assert_eq!(r1.networks.len(), 2); // its two links
        let left = t.router("LEFT").unwrap();
        assert_eq!(left.networks, vec![p_left]);
    }

    #[test]
    fn multihomed_stub_has_two_uplinks() {
        let mut b = TopologyBuilder::new();
        let b1 = b.router("B1", RouterRole::Core);
        let b2 = b.router("B2", RouterRole::Core);
        b.link(b1, b2);
        let (cust, _) = b.stub("CUST", b1);
        b.multihome(cust, b2);
        let t = b.build();
        assert!(t.validate().is_empty(), "{:?}", t.validate());
        let c = t.router("CUST").unwrap();
        assert_eq!(c.interfaces.len(), 2);
        assert_eq!(c.neighbors.len(), 2);
    }
}

//! The topology verifier — the authors' bespoke Python checker, in Rust.
//!
//! "We use an automated 'topology verifier' that compares the config
//! against the previously specified JSON dictionary and outputs
//! inconsistencies." The seven finding types below are exactly Table 3's
//! topology-error examples.

use crate::topology::Topology;
use config_ir::Device;
use net_model::{Asn, InterfaceAddress, Prefix};
use std::net::Ipv4Addr;

/// One inconsistency between a router's config and the topology.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TopologyFinding {
    /// Table 3 #1: interface address does not match.
    InterfaceAddressMismatch {
        /// Interface name.
        iface: String,
        /// Address the topology expects.
        expected: InterfaceAddress,
        /// Address found in the config (`None` = unaddressed or missing).
        found: Option<InterfaceAddress>,
    },
    /// Table 3 #2: local AS number does not match.
    LocalAsMismatch {
        /// Expected AS.
        expected: Asn,
        /// Found AS (`None` = no BGP process).
        found: Option<Asn>,
    },
    /// Table 3 #3: router id does not match.
    RouterIdMismatch {
        /// Expected id.
        expected: Ipv4Addr,
        /// Found id (`None` = unset).
        found: Option<Ipv4Addr>,
    },
    /// Table 3 #4: an expected neighbor is not declared.
    NeighborNotDeclared {
        /// Expected neighbor address.
        addr: Ipv4Addr,
        /// Expected neighbor AS.
        asn: Asn,
    },
    /// Table 3 #5: an expected network is not declared.
    NetworkNotDeclared {
        /// The missing network.
        prefix: Prefix,
    },
    /// Table 3 #6: a declared network is not directly connected.
    IncorrectNetwork {
        /// The bogus network.
        prefix: Prefix,
        /// Router name (for the prompt text).
        router: String,
    },
    /// Table 3 #7: a declared neighbor does not exist in the topology.
    IncorrectNeighbor {
        /// Declared address.
        addr: Ipv4Addr,
        /// Declared AS (`None` = no remote-as).
        asn: Option<Asn>,
    },
}

/// Verifies one router's config (lowered to the IR) against its spec in
/// the topology. Returns all findings, in Table 3's order.
pub fn verify_router(topology: &Topology, name: &str, device: &Device) -> Vec<TopologyFinding> {
    let Some(spec) = topology.router(name) else {
        return Vec::new();
    };
    let mut out = Vec::new();
    // 1. Interface addresses.
    for i in &spec.interfaces {
        let found = device
            .interfaces
            .iter()
            .find(|d| d.name.as_str().eq_ignore_ascii_case(&i.name))
            .and_then(|d| d.address);
        if found != Some(i.address) {
            out.push(TopologyFinding::InterfaceAddressMismatch {
                iface: i.name.clone(),
                expected: i.address,
                found,
            });
        }
    }
    // 2. Local AS.
    let found_as = device.bgp.as_ref().map(|b| b.asn);
    if found_as != Some(spec.asn) {
        out.push(TopologyFinding::LocalAsMismatch {
            expected: spec.asn,
            found: found_as,
        });
    }
    // 3. Router id.
    let found_id = device.bgp.as_ref().and_then(|b| b.router_id);
    if found_id != Some(spec.router_id) {
        out.push(TopologyFinding::RouterIdMismatch {
            expected: spec.router_id,
            found: found_id,
        });
    }
    // 4. Expected neighbors declared with the right AS.
    for n in &spec.neighbors {
        let declared = device.bgp.as_ref().and_then(|b| b.neighbor(n.addr));
        if declared.and_then(|d| d.remote_as) != Some(n.asn) {
            out.push(TopologyFinding::NeighborNotDeclared {
                addr: n.addr,
                asn: n.asn,
            });
        }
    }
    // 5. Expected networks declared.
    let declared_nets: Vec<Prefix> = device
        .bgp
        .as_ref()
        .map(|b| b.networks.clone())
        .unwrap_or_default();
    for p in &spec.networks {
        if !declared_nets.contains(p) {
            out.push(TopologyFinding::NetworkNotDeclared { prefix: *p });
        }
    }
    // 6. Declared networks must be directly connected subnets.
    let connected: Vec<Prefix> = spec.interfaces.iter().map(|i| i.address.subnet()).collect();
    for p in &declared_nets {
        if !connected.contains(p) {
            out.push(TopologyFinding::IncorrectNetwork {
                prefix: *p,
                router: name.to_string(),
            });
        }
    }
    // 7. Declared neighbors must exist in the topology.
    if let Some(bgp) = &device.bgp {
        for d in &bgp.neighbors {
            let known = spec
                .neighbors
                .iter()
                .any(|n| n.addr == d.addr && Some(n.asn) == d.remote_as);
            if !known {
                out.push(TopologyFinding::IncorrectNeighbor {
                    addr: d.addr,
                    asn: d.remote_as,
                });
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::star::star;
    use config_ir::{IrBgp, IrInterface, IrNeighbor};

    /// Builds the *correct* device for a router spec — the reference
    /// synthesizer output shape.
    fn correct_device(topology: &Topology, name: &str) -> Device {
        let spec = topology.router(name).unwrap();
        let mut d = Device::named(name);
        for i in &spec.interfaces {
            let mut ir = IrInterface::named(&i.name);
            ir.address = Some(i.address);
            d.interfaces.push(ir);
        }
        let mut bgp = IrBgp::new(spec.asn);
        bgp.router_id = Some(spec.router_id);
        bgp.networks = spec.networks.clone();
        for n in &spec.neighbors {
            let mut irn = IrNeighbor::new(n.addr);
            irn.remote_as = Some(n.asn);
            bgp.neighbors.push(irn);
        }
        d.bgp = Some(bgp);
        d
    }

    #[test]
    fn correct_config_has_no_findings() {
        let (t, _) = star(3);
        for name in ["R1", "R2", "R3", "R4"] {
            let d = correct_device(&t, name);
            let f = verify_router(&t, name, &d);
            assert!(f.is_empty(), "{name}: {f:?}");
        }
    }

    #[test]
    fn wrong_interface_address_detected() {
        // Table 3 #1: expected 2.0.0.1, found 2.0.0.2.
        let (t, _) = star(2);
        let mut d = correct_device(&t, "R1");
        let idx = d
            .interfaces
            .iter()
            .position(|i| i.address.map(|a| a.addr.to_string()) == Some("2.0.0.1".into()))
            .unwrap();
        d.interfaces[idx].address = Some("2.0.0.2/24".parse().unwrap());
        let f = verify_router(&t, "R1", &d);
        assert!(matches!(
            f[0],
            TopologyFinding::InterfaceAddressMismatch { ref expected, .. }
                if expected.addr.to_string() == "2.0.0.1"
        ));
    }

    #[test]
    fn wrong_local_as_detected() {
        // Table 3 #2: expected 1, found 3.
        let (t, _) = star(2);
        let mut d = correct_device(&t, "R1");
        d.bgp.as_mut().unwrap().asn = Asn(3);
        let f = verify_router(&t, "R1", &d);
        assert!(f.contains(&TopologyFinding::LocalAsMismatch {
            expected: Asn(1),
            found: Some(Asn(3)),
        }));
    }

    #[test]
    fn wrong_router_id_detected() {
        // Table 3 #3: expected 1.0.0.2, found 1.0.0.1.
        let (t, _) = star(2);
        let mut d = correct_device(&t, "R2");
        d.bgp.as_mut().unwrap().router_id = Some("1.0.0.1".parse().unwrap());
        let f = verify_router(&t, "R2", &d);
        assert!(f.contains(&TopologyFinding::RouterIdMismatch {
            expected: "1.0.0.2".parse().unwrap(),
            found: Some("1.0.0.1".parse().unwrap()),
        }));
    }

    #[test]
    fn missing_neighbor_detected() {
        // Table 3 #4: neighbor 1.0.0.1 AS 1 not declared — our scheme's
        // equivalent is the hub-side neighbor.
        let (t, _) = star(2);
        let mut d = correct_device(&t, "R2");
        d.bgp
            .as_mut()
            .unwrap()
            .neighbors
            .retain(|n| n.addr.to_string() != "2.0.0.1");
        let f = verify_router(&t, "R2", &d);
        assert!(f.iter().any(|x| matches!(
            x,
            TopologyFinding::NeighborNotDeclared { addr, asn: Asn(1) }
                if addr.to_string() == "2.0.0.1"
        )));
    }

    #[test]
    fn missing_network_detected() {
        // Table 3 #5.
        let (t, _) = star(2);
        let mut d = correct_device(&t, "R2");
        d.bgp.as_mut().unwrap().networks.clear();
        let f = verify_router(&t, "R2", &d);
        assert!(f
            .iter()
            .any(|x| matches!(x, TopologyFinding::NetworkNotDeclared { .. })));
    }

    #[test]
    fn disconnected_network_detected() {
        // Table 3 #6: 7.0.0.0/24 is not directly connected to R1.
        let (t, _) = star(2);
        let mut d = correct_device(&t, "R1");
        d.bgp
            .as_mut()
            .unwrap()
            .networks
            .push("7.0.0.0/24".parse().unwrap());
        let f = verify_router(&t, "R1", &d);
        assert!(f.contains(&TopologyFinding::IncorrectNetwork {
            prefix: "7.0.0.0/24".parse().unwrap(),
            router: "R1".into(),
        }));
    }

    #[test]
    fn phantom_neighbor_detected() {
        // Table 3 #7: no neighbor with IP 7.0.0.2 AS 7 in the topology.
        let (t, _) = star(2);
        let mut d = correct_device(&t, "R1");
        let mut n = IrNeighbor::new("7.0.0.2".parse().unwrap());
        n.remote_as = Some(Asn(7));
        d.bgp.as_mut().unwrap().neighbors.push(n);
        let f = verify_router(&t, "R1", &d);
        assert!(f.contains(&TopologyFinding::IncorrectNeighbor {
            addr: "7.0.0.2".parse().unwrap(),
            asn: Some(Asn(7)),
        }));
    }

    #[test]
    fn wrong_remote_as_shows_as_both_missing_and_incorrect() {
        let (t, _) = star(2);
        let mut d = correct_device(&t, "R2");
        d.bgp.as_mut().unwrap().neighbors[0].remote_as = Some(Asn(42));
        let f = verify_router(&t, "R2", &d);
        assert!(f
            .iter()
            .any(|x| matches!(x, TopologyFinding::NeighborNotDeclared { .. })));
        assert!(f
            .iter()
            .any(|x| matches!(x, TopologyFinding::IncorrectNeighbor { .. })));
    }

    #[test]
    fn unknown_router_yields_no_findings() {
        let (t, _) = star(2);
        let d = Device::named("R99");
        assert!(verify_router(&t, "R99", &d).is_empty());
    }
}

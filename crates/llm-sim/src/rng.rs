//! A tiny seeded PRNG for the fault sampler.
//!
//! The workspace builds offline, so the `rand` crate is out of reach;
//! the simulation only needs a deterministic, well-mixed stream for
//! sampling fault sets and regression rolls. splitmix64 (Steele et al.,
//! "Fast Splittable Pseudorandom Number Generators", OOPSLA 2014) gives
//! full 64-bit avalanche in three rounds and is the standard seeder for
//! bigger generators — more than enough statistical quality for
//! Bernoulli draws over a dozen fault classes.

/// Deterministic splitmix64 stream.
#[derive(Debug, Clone)]
pub struct SimRng {
    state: u64,
}

impl SimRng {
    /// Seeds the stream. Equal seeds yield equal streams forever.
    pub fn seed_from_u64(seed: u64) -> SimRng {
        SimRng { state: seed }
    }

    /// Next raw 64-bit value.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    /// Uniform draw in `[0, 1)` with 53 bits of precision.
    pub fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Uniform index in `[0, n)`. Panics if `n == 0`.
    pub fn index(&mut self, n: usize) -> usize {
        assert!(n > 0, "empty range");
        // Modulo bias is < 2^-50 for the small ranges used here.
        (self.next_u64() % n as u64) as usize
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_per_seed() {
        let mut a = SimRng::seed_from_u64(7);
        let mut b = SimRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = SimRng::seed_from_u64(8);
        assert_ne!(a.next_u64(), c.next_u64());
    }

    #[test]
    fn f64_in_unit_interval_and_mixed() {
        let mut r = SimRng::seed_from_u64(1);
        let mut sum = 0.0;
        for _ in 0..1000 {
            let x = r.next_f64();
            assert!((0.0..1.0).contains(&x));
            sum += x;
        }
        // Mean of 1000 uniform draws is within loose bounds of 0.5.
        assert!((0.4..0.6).contains(&(sum / 1000.0)), "{sum}");
    }

    #[test]
    fn index_covers_range() {
        let mut r = SimRng::seed_from_u64(2);
        let mut seen = [false; 5];
        for _ in 0..200 {
            seen[r.index(5)] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }
}

//! The prompt-engineering contract: how COSYNTH phrases tasks, policies
//! and rectifications, and how the simulated model recognizes them.
//!
//! COSYNTH's humanizer and modularizer build prompts with these helpers;
//! [`classify`] is the inverse the simulated GPT-4 uses. Keeping both
//! sides in one module is the reproduction's stand-in for "GPT-4
//! understands the formulaic prompt" — the formats are fixed by the IIP
//! methodology, so recognition is legitimate, and a real LLM behind the
//! trait would simply read the same text.

use net_model::Community;
use std::net::Ipv4Addr;

/// Task sentence for the translation use case (Section 3.1).
pub const TRANSLATE_TASK: &str =
    "Translate the configuration into an equivalent Juniper configuration.";

/// Task sentence asking for a per-router config (Section 4.1).
pub const SYNTH_TASK: &str = "Generate the Cisco IOS configuration file (.cfg) for this router.";

/// Request to print the full current config after a fix.
pub const PRINT_CONFIG: &str = "Print the entire configuration.";

/// Task sentence for the repair use case: the prompt carries the router
/// description and policy sentences first, then this sentence, then the
/// broken config in a fence.
pub const REPAIR_TASK: &str = "The configuration below for this router is faulty. Repair it so \
     it satisfies the description and policies above, changing as little as possible.";

/// The human repair escalation: a targeted instruction the automatic
/// loop falls back to when localized repair prompts stall.
pub const REPAIR_REWRITE: &str = "Discard the faulty configuration and rewrite it from \
     scratch, strictly following the description and policies above.";

/// The global-policy prompt of the local-vs-global ablation.
pub const GLOBAL_TASK: &str = "Make the network follow the no-transit policy: no two ISPs \
     should be able to reach each other, but all ISPs and the CUSTOMER \
     must be able to reach each other. Generate the Cisco IOS \
     configuration files for all routers.";

/// Builds the ingress-tagging local policy sentence for one neighbor.
pub fn ingress_tag_sentence(neighbor: Ipv4Addr, community: Community, map: &str) -> String {
    format!(
        "At ingress from neighbor {neighbor}, add community {community} to all \
         routes using route-map {map}."
    )
}

/// Builds the ingress local-preference policy sentence for one neighbor
/// (the prefer-customer intent).
pub fn ingress_pref_sentence(neighbor: Ipv4Addr, value: u32, map: &str) -> String {
    format!(
        "At ingress from neighbor {neighbor}, set local-preference {value} on all \
         routes using route-map {map}."
    )
}

/// Builds the egress-filter local policy sentence for one neighbor.
pub fn egress_filter_sentence(neighbor: Ipv4Addr, communities: &[Community], map: &str) -> String {
    let cs: Vec<String> = communities.iter().map(|c| c.to_string()).collect();
    format!(
        "At egress to neighbor {neighbor}, deny routes carrying any of the \
         communities {} and permit all other routes using route-map {map}.",
        cs.join(", ")
    )
}

/// How a rectification prompt is classified by the simulated model.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum PromptClass {
    /// "There is a syntax error: `'<line>'`" (Table 1 row 1 / Table 3 row 1).
    SyntaxError {
        /// The quoted offending line.
        quoted: String,
    },
    /// Structural mismatch about a missing/extra per-neighbor policy.
    StructuralMissingPolicy,
    /// Structural mismatch about a missing/extra neighbor or interface.
    StructuralMissingComponent,
    /// Attribute difference: OSPF link cost.
    AttributeOspfCost,
    /// Attribute difference: passive-interface setting.
    AttributeOspfPassive,
    /// Attribute difference: local AS / remote AS / router id.
    AttributeAsOrId,
    /// Policy behaviour: MED value.
    PolicyMed,
    /// Policy behaviour: prefix-length matching (the `ge 24` case).
    PolicyPrefixLength,
    /// Policy behaviour: redistribution into BGP.
    PolicyRedistribution,
    /// Policy behaviour: a community add/filter counterexample.
    PolicyCommunity,
    /// Topology verifier finding (any of Table 3's seven).
    TopologyError,
    /// Human prompt: add `from bgp` conditions (the redistribution fix).
    HumanFromBgp,
    /// Human prompt: translate `ge`/prefix-length ranges properly.
    HumanPrefixLength,
    /// Human prompt: put each match in its own route-map stanza.
    HumanSeparateStanzas,
    /// Human prompt: move neighbor commands under `router bgp`.
    HumanNeighborPlacement,
    /// A request to print the whole config.
    PrintConfig,
    /// The initial task or anything unrecognized.
    Other,
}

/// Classifies a prompt by the humanizer's formulaic markers.
pub fn classify(prompt: &str) -> PromptClass {
    let p = prompt.to_ascii_lowercase();
    if p.contains("print the entire configuration") {
        return PromptClass::PrintConfig;
    }
    if let Some(idx) = p.find("there is a syntax error") {
        // Quoted line between the first pair of '...' after the marker.
        let rest = &prompt[idx..];
        let quoted = rest.split('\'').nth(1).unwrap_or_default().to_string();
        return PromptClass::SyntaxError { quoted };
    }
    // Human prompts (checked before the generated-prompt markers because
    // they are imperative and specific).
    if p.contains("from bgp") && p.contains("condition") {
        return PromptClass::HumanFromBgp;
    }
    if p.contains("separate route-map stanza") || p.contains("separate stanza") {
        return PromptClass::HumanSeparateStanzas;
    }
    if p.contains("under the 'router bgp'") || p.contains("inside the 'router bgp'") {
        return PromptClass::HumanNeighborPlacement;
    }
    if p.contains("prefix-length-range") && p.contains("use") {
        return PromptClass::HumanPrefixLength;
    }
    // Generated prompts.
    if p.contains("in the original configuration") {
        if p.contains("no corresponding") && (p.contains("route map") || p.contains("route-map")) {
            return PromptClass::StructuralMissingPolicy;
        }
        if p.contains("ospf link") && p.contains("cost") {
            return PromptClass::AttributeOspfCost;
        }
        if p.contains("passive") {
            return PromptClass::AttributeOspfPassive;
        }
        if p.contains("med") {
            return PromptClass::PolicyMed;
        }
        if p.contains("prefix") && (p.contains("length") || p.contains("ge ")) {
            return PromptClass::PolicyPrefixLength;
        }
        if p.contains("redistribut") {
            return PromptClass::PolicyRedistribution;
        }
        if p.contains("performs the following action") {
            // Generic policy-difference formula (Table 1 row 4) — checked
            // before the component markers because the formula itself
            // names the neighbor.
            return PromptClass::PolicyCommunity;
        }
        if p.contains("neighbor") || p.contains("interface") {
            return PromptClass::StructuralMissingComponent;
        }
        if p.contains("as number") || p.contains("router id") || p.contains("local as") {
            return PromptClass::AttributeAsOrId;
        }
    }
    if p.contains("does not match with given config")
        || p.contains("not declared")
        || p.contains("incorrect network declaration")
        || p.contains("incorrect neighbor declaration")
        || p.contains("local as number does not match")
        || p.contains("router id does not match")
        || p.contains("not directly connected")
    {
        return PromptClass::TopologyError;
    }
    if p.contains("route-map")
        && (p.contains("permits routes")
            || p.contains("denies routes")
            || p.contains("without adding the community")
            || p.contains("should be preserved")
            || p.contains("additive")
            || p.contains("local-preference"))
    {
        // Table 3's semantic-error formulas (filter, carry, preserve).
        return PromptClass::PolicyCommunity;
    }
    if p.contains("local as") || p.contains("autonomous-system") {
        return PromptClass::SyntaxError {
            quoted: String::new(),
        };
    }
    PromptClass::Other
}

/// Parses an ingress-tag policy sentence back into its fields.
pub fn parse_ingress_tag(s: &str) -> Option<(Ipv4Addr, Community, String)> {
    let s = s.trim();
    let rest = s.strip_prefix("At ingress from neighbor ")?;
    let (addr, rest) = rest.split_once(',')?;
    let addr: Ipv4Addr = addr.trim().parse().ok()?;
    let rest = rest.trim().strip_prefix("add community ")?;
    let (comm, rest) = rest.split_once(" to all")?;
    let community: Community = comm.trim().parse().ok()?;
    let map = rest
        .split("route-map ")
        .nth(1)?
        .trim_end_matches('.')
        .trim();
    Some((addr, community, map.to_string()))
}

/// Parses an ingress local-preference sentence back into its fields.
pub fn parse_ingress_pref(s: &str) -> Option<(Ipv4Addr, u32, String)> {
    let s = s.trim();
    let rest = s.strip_prefix("At ingress from neighbor ")?;
    let (addr, rest) = rest.split_once(',')?;
    let addr: Ipv4Addr = addr.trim().parse().ok()?;
    let rest = rest.trim().strip_prefix("set local-preference ")?;
    let (value, rest) = rest.split_once(" on all")?;
    let value: u32 = value.trim().parse().ok()?;
    let map = rest
        .split("route-map ")
        .nth(1)?
        .trim_end_matches('.')
        .trim();
    Some((addr, value, map.to_string()))
}

/// Parses an egress-filter policy sentence back into its fields.
pub fn parse_egress_filter(s: &str) -> Option<(Ipv4Addr, Vec<Community>, String)> {
    let s = s.trim();
    let rest = s.strip_prefix("At egress to neighbor ")?;
    let (addr, rest) = rest.split_once(',')?;
    let addr: Ipv4Addr = addr.trim().parse().ok()?;
    let comms_part = rest
        .split("communities ")
        .nth(1)?
        .split(" and permit")
        .next()?;
    let communities: Option<Vec<Community>> = comms_part
        .split(',')
        .map(|c| c.trim().parse().ok())
        .collect();
    let map = rest
        .split("route-map ")
        .nth(1)?
        .trim_end_matches('.')
        .trim();
    Some((addr, communities?, map.to_string()))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn comm(s: &str) -> Community {
        s.parse().unwrap()
    }

    #[test]
    fn ingress_sentence_roundtrip() {
        let s = ingress_tag_sentence("2.0.0.2".parse().unwrap(), comm("100:1"), "ADD_COMM_R2");
        let (a, c, m) = parse_ingress_tag(&s).unwrap();
        assert_eq!(a.to_string(), "2.0.0.2");
        assert_eq!(c, comm("100:1"));
        assert_eq!(m, "ADD_COMM_R2");
    }

    #[test]
    fn pref_sentence_roundtrip() {
        let s = ingress_pref_sentence("10.0.0.2".parse().unwrap(), 200, "PREF_CUST");
        let (a, v, m) = parse_ingress_pref(&s).unwrap();
        assert_eq!(a.to_string(), "10.0.0.2");
        assert_eq!(v, 200);
        assert_eq!(m, "PREF_CUST");
        // The tag parser must not claim the pref sentence, and vice versa.
        assert!(parse_ingress_tag(&s).is_none());
        let tag = ingress_tag_sentence("10.0.0.2".parse().unwrap(), comm("100:1"), "T");
        assert!(parse_ingress_pref(&tag).is_none());
    }

    #[test]
    fn egress_sentence_roundtrip() {
        let s = egress_filter_sentence(
            "2.0.0.2".parse().unwrap(),
            &[comm("101:1"), comm("102:1")],
            "FILTER_COMM_OUT_R2",
        );
        let (a, cs, m) = parse_egress_filter(&s).unwrap();
        assert_eq!(a.to_string(), "2.0.0.2");
        assert_eq!(cs, vec![comm("101:1"), comm("102:1")]);
        assert_eq!(m, "FILTER_COMM_OUT_R2");
    }

    #[test]
    fn classify_syntax_error_extracts_quote() {
        let c = classify(
            "There is a syntax error: 'policy-options prefix-list our-networks 1.2.3.0/24-32'",
        );
        assert_eq!(
            c,
            PromptClass::SyntaxError {
                quoted: "policy-options prefix-list our-networks 1.2.3.0/24-32".into()
            }
        );
    }

    #[test]
    fn classify_table1_formulas() {
        assert_eq!(
            classify(
                "In the original configuration, there is an import route map for bgp \
                 neighbor 2.3.4.5, but in the translation, there is no corresponding route map"
            ),
            PromptClass::StructuralMissingPolicy
        );
        assert_eq!(
            classify(
                "In the original configuration, the OSPF link for Loopback0 has cost set \
                 to 1, but in the translation, the corresponding link to lo0.0 has cost set to 0"
            ),
            PromptClass::AttributeOspfCost
        );
        assert!(matches!(
            classify(
                "In the original configuration, for the prefix 1.2.3.0/25, the BGP export \
                 policy to_provider for BGP neighbor 2.3.4.5 performs the following action: \
                 ACCEPT. But, in the translation, the corresponding BGP export policy \
                 to_provider performs the following action: REJECT"
            ),
            PromptClass::PolicyCommunity | PromptClass::PolicyPrefixLength
        ));
    }

    #[test]
    fn classify_topology_formulas() {
        for p in [
            "Interface eth0/1 ip address does not match with given config. Expected 2.0.0.1, found 2.0.0.2",
            "Local AS number does not match. Expected 1, found 3",
            "Router ID does not match with given config. Expected 1.0.0.2, found 1.0.0.1",
            "Neighbor with IP address 1.0.0.1 and AS 1 not declared",
            "Network 1.0.0.0/24 not declared",
            "Incorrect network declaration. 7.0.0.0/24 is not directly connected to R1",
            "Incorrect neighbor declaration. No neighbor with IP address 7.0.0.2 AS 7 found",
        ] {
            assert_eq!(classify(p), PromptClass::TopologyError, "{p}");
        }
    }

    #[test]
    fn classify_semantic_formula() {
        assert_eq!(
            classify(
                "The route-map DROP_COMMUNITY permits routes that have the community \
                 100:1. However, they should be denied."
            ),
            PromptClass::PolicyCommunity
        );
    }

    #[test]
    fn classify_human_prompts() {
        assert_eq!(
            classify("Please add 'from bgp' conditions to the routing policies that control redistribution."),
            PromptClass::HumanFromBgp
        );
        assert_eq!(
            classify("Declare each match statement in a separate route-map stanza."),
            PromptClass::HumanSeparateStanzas
        );
        assert_eq!(
            classify("The neighbor commands must be placed inside the 'router bgp' block; move them there."),
            PromptClass::HumanNeighborPlacement
        );
        assert_eq!(
            classify("To match prefixes of length 24 to 32, use 'route-filter 1.2.3.0/24 prefix-length-range /24-/32'."),
            PromptClass::HumanPrefixLength
        );
    }

    #[test]
    fn classify_print() {
        assert_eq!(
            classify("Print the entire configuration."),
            PromptClass::PrintConfig
        );
    }

    #[test]
    fn classify_med() {
        assert_eq!(
            classify(
                "In the original configuration, the BGP MED value set by policy \
                 to_provider is 50, but in the translation it is 999."
            ),
            PromptClass::PolicyMed
        );
    }
}

//! Pluggable model backends and cost-aware routing.
//!
//! The paper's leverage metric counts human prompts the verifier saves;
//! the same verifier signal can save *model cost*: route each VPP call
//! to a cheap/noisy backend first and escalate to an expensive/accurate
//! one only when verifier feedback shows the cheap tier flailing. This
//! module supplies the pieces:
//!
//! * [`Tier`] — the simulated backend family: the existing calibrated
//!   GPT-4 plus three error-model-derived accuracy/cost points
//!   (`sim-cheap`/`sim-std`/`sim-premium`).
//! * [`CostRecord`] / [`CostLedger`] — per-backend call accounting
//!   (unit cost in integer milli-units, call count, accumulated
//!   simulated latency) with a conservation identity
//!   (`total == Σ calls × unit_cost`) every layer above re-checks.
//! * [`ModelBackend`] — the backend contract on top of
//!   [`LanguageModel`]: a priced, self-accounting completion source.
//! * [`BackendChoice`] — the fleet-facing selector
//!   (`fleet --backend <name>` / `--route cheap-first`) that builds a
//!   boxed backend per session, byte-identical to the historical
//!   hard-wired construction for the default choice.
//! * [`CascadeRouter`] — a backend wrapping an ordered tier list that
//!   escalates on verifier-failure feedback and re-plays the stored
//!   task prompt to each newly activated tier.

use crate::error_model::TransportModel;
use crate::gpt4::SimulatedGpt4;
use crate::model::{LanguageModel, Message, Role, TransportError};
use crate::prompts;
use crate::ErrorModel;

/// One simulated backend tier: an accuracy/cost point derived from the
/// error model. `Gpt4` is the historical calibrated model (same error
/// model as [`ErrorModel::paper_default`], premium price); `Std` shares
/// its accuracy at a mid-market price; `Cheap` and `Premium` bracket it.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Tier {
    /// Noisy and nearly free: bumped draft-fault and repair-pathology
    /// rates.
    Cheap,
    /// The paper-calibrated error model at a mid-market price.
    Std,
    /// Accurate and expensive: halved fault rates, tamed repair
    /// pathologies.
    Premium,
    /// The original simulated GPT-4: paper-calibrated accuracy at the
    /// premium price. The zero-knob default backend.
    Gpt4,
}

impl Tier {
    /// Every tier, in escalation order (cheapest first), with the
    /// historical default last.
    pub const ALL: [Tier; 4] = [Tier::Cheap, Tier::Std, Tier::Premium, Tier::Gpt4];

    /// The stable backend name used by `fleet --backend`, cost records,
    /// and bench files.
    pub fn name(self) -> &'static str {
        match self {
            Tier::Cheap => "sim-cheap",
            Tier::Std => "sim-std",
            Tier::Premium => "sim-premium",
            Tier::Gpt4 => "simulated-gpt4",
        }
    }

    /// The snake_case suffix used for per-tier registry counters
    /// (`backend_calls_<suffix>`).
    pub fn metric_suffix(self) -> &'static str {
        match self {
            Tier::Cheap => "sim_cheap",
            Tier::Std => "sim_std",
            Tier::Premium => "sim_premium",
            Tier::Gpt4 => "simulated_gpt4",
        }
    }

    /// Price per completion call in integer milli-units of currency.
    /// Integer so ledgers sum exactly and the conservation identity is
    /// decidable without float tolerance.
    pub fn unit_milli_cost(self) -> u64 {
        match self {
            Tier::Cheap => 1,
            Tier::Std => 5,
            Tier::Premium => 25,
            Tier::Gpt4 => 25,
        }
    }

    /// Simulated per-call latency in milliseconds — *accounted*, never
    /// slept, exactly like the retry layer's backoff.
    pub fn latency_ms(self) -> u64 {
        match self {
            Tier::Cheap => 200,
            Tier::Std => 450,
            Tier::Premium => 900,
            Tier::Gpt4 => 900,
        }
    }

    /// The tier's error model. `Std` and `Gpt4` are the paper
    /// calibration; `Cheap`/`Premium` are derived from it (see
    /// [`ErrorModel::sim_cheap`] / [`ErrorModel::sim_premium`]). All
    /// four leave the transport knobs at zero.
    pub fn error_model(self) -> ErrorModel {
        match self {
            Tier::Cheap => ErrorModel::sim_cheap(),
            Tier::Std => ErrorModel::sim_std(),
            Tier::Premium => ErrorModel::sim_premium(),
            Tier::Gpt4 => ErrorModel::paper_default(),
        }
    }

    /// Parses a backend name as printed by [`Tier::name`].
    pub fn parse(s: &str) -> Option<Tier> {
        Tier::ALL.into_iter().find(|t| t.name() == s)
    }
}

/// One backend's row in a [`CostLedger`]: how many calls it served, at
/// what unit price, and the simulated latency it accumulated.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CostRecord {
    /// Backend name ([`Tier::name`] for the sim tiers).
    pub backend: &'static str,
    /// Price per call in milli-units.
    pub unit_milli_cost: u64,
    /// Completion calls charged to this backend.
    pub calls: u64,
    /// Total simulated latency across those calls, milliseconds.
    pub latency_ms: u64,
}

impl CostRecord {
    /// This record's total cost: `calls × unit_milli_cost`.
    pub fn milli_cost(&self) -> u64 {
        self.calls * self.unit_milli_cost
    }
}

/// Per-backend cost accounting for one session (or one fleet, after
/// [`CostLedger::absorb`]). The running `total_milli_cost` is charged
/// call by call and must always equal the sum over records — the
/// conservation identity ([`CostLedger::conserved`]) that the service
/// registry and the chaos harness re-check from their own counters.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct CostLedger {
    records: Vec<CostRecord>,
    total_milli_cost: u64,
}

impl CostLedger {
    /// An empty ledger.
    pub fn new() -> Self {
        CostLedger::default()
    }

    /// Charges one completion call to `backend` at `unit_milli_cost`,
    /// accumulating `latency_ms` of simulated latency.
    pub fn charge(&mut self, backend: &'static str, unit_milli_cost: u64, latency_ms: u64) {
        self.total_milli_cost += unit_milli_cost;
        if let Some(r) = self.records.iter_mut().find(|r| r.backend == backend) {
            r.calls += 1;
            r.latency_ms += latency_ms;
        } else {
            self.records.push(CostRecord {
                backend,
                unit_milli_cost,
                calls: 1,
                latency_ms,
            });
        }
    }

    /// The per-backend records, in first-charged order.
    pub fn records(&self) -> &[CostRecord] {
        &self.records
    }

    /// Total cost charged so far, milli-units.
    pub fn total_milli_cost(&self) -> u64 {
        self.total_milli_cost
    }

    /// Total completion calls across all backends.
    pub fn total_calls(&self) -> u64 {
        self.records.iter().map(|r| r.calls).sum()
    }

    /// Total simulated latency across all backends, milliseconds.
    pub fn total_latency_ms(&self) -> u64 {
        self.records.iter().map(|r| r.latency_ms).sum()
    }

    /// Calls charged to one backend by name (0 when absent).
    pub fn calls_for(&self, backend: &str) -> u64 {
        self.records
            .iter()
            .find(|r| r.backend == backend)
            .map_or(0, |r| r.calls)
    }

    /// Whether nothing has been charged.
    pub fn is_empty(&self) -> bool {
        self.records.is_empty()
    }

    /// The conservation identity: the running total equals the sum of
    /// `calls × unit_milli_cost` over the records.
    pub fn conserved(&self) -> bool {
        self.total_milli_cost == self.records.iter().map(CostRecord::milli_cost).sum::<u64>()
    }

    /// Folds another ledger's records into this one (fleet/service
    /// aggregation).
    pub fn absorb(&mut self, other: &CostLedger) {
        self.total_milli_cost += other.total_milli_cost;
        for r in &other.records {
            if let Some(mine) = self.records.iter_mut().find(|m| m.backend == r.backend) {
                mine.calls += r.calls;
                mine.latency_ms += r.latency_ms;
            } else {
                self.records.push(*r);
            }
        }
    }

    /// The charges accumulated since `baseline` was snapshotted from the
    /// same backend (per-record subtraction). Lets a caller that reuses
    /// one backend across sessions extract each session's own cost.
    pub fn since(&self, baseline: &CostLedger) -> CostLedger {
        let mut out = CostLedger::new();
        for r in &self.records {
            let base = baseline.records.iter().find(|b| b.backend == r.backend);
            let calls = r.calls.saturating_sub(base.map_or(0, |b| b.calls));
            if calls == 0 {
                continue;
            }
            out.records.push(CostRecord {
                backend: r.backend,
                unit_milli_cost: r.unit_milli_cost,
                calls,
                latency_ms: r
                    .latency_ms
                    .saturating_sub(base.map_or(0, |b| b.latency_ms)),
            });
            out.total_milli_cost += calls * r.unit_milli_cost;
        }
        out
    }
}

/// A priced, self-accounting completion backend: the contract every
/// backend (simulated tiers, the cascade router, a future real API
/// client) must satisfy on top of [`LanguageModel`]. The identity is
/// [`LanguageModel::name`]; the ledger is [`LanguageModel::cost`]; this
/// trait adds the *current* price point — for a router, the active
/// tier's.
pub trait ModelBackend: LanguageModel {
    /// Price per call of the currently active tier, milli-units.
    fn unit_milli_cost(&self) -> u64;

    /// Simulated per-call latency of the currently active tier,
    /// milliseconds.
    fn latency_ms(&self) -> u64;
}

impl ModelBackend for SimulatedGpt4 {
    fn unit_milli_cost(&self) -> u64 {
        self.tier().unit_milli_cost()
    }

    fn latency_ms(&self) -> u64 {
        self.tier().latency_ms()
    }
}

/// The fleet-facing backend selector: a single tier, a degenerate
/// single-tier cascade (the routing-degeneracy pin), or the cheap-first
/// escalation cascade. `Default` is the historical hard-wired backend,
/// and [`BackendChoice::build`] for it reproduces that construction
/// byte-for-byte.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BackendChoice {
    /// Call one tier directly.
    Tier(Tier),
    /// A cascade wrapping exactly one tier — must be byte-identical to
    /// calling that tier directly (pinned by the degeneracy test).
    CascadeOf(Tier),
    /// The cost-aware route: cheap → std → premium, escalating on
    /// verifier-failure feedback.
    CheapFirst,
}

impl Default for BackendChoice {
    fn default() -> Self {
        BackendChoice::Tier(Tier::Gpt4)
    }
}

impl BackendChoice {
    /// The names `--backend` accepts.
    pub const BACKEND_NAMES: [&'static str; 4] =
        ["sim-cheap", "sim-std", "sim-premium", "simulated-gpt4"];

    /// The names `--route` accepts.
    pub const ROUTE_NAMES: [&'static str; 1] = ["cheap-first"];

    /// Parses a `--backend` value ([`Tier::name`]s).
    pub fn parse_backend(s: &str) -> Option<BackendChoice> {
        Tier::parse(s).map(BackendChoice::Tier)
    }

    /// Parses a `--route` value.
    pub fn parse_route(s: &str) -> Option<BackendChoice> {
        match s {
            "cheap-first" => Some(BackendChoice::CheapFirst),
            _ => None,
        }
    }

    /// The stable label for reports and bench files.
    pub fn label(self) -> &'static str {
        match self {
            BackendChoice::Tier(t) => t.name(),
            BackendChoice::CascadeOf(_) => "cascade-of-one",
            BackendChoice::CheapFirst => "cheap-first",
        }
    }

    /// Builds the backend for one session. For the default choice this
    /// is exactly the historical construction
    /// (`SimulatedGpt4::new(paper_default + transport, seed)`), so
    /// zero-knob session content stays byte-identical.
    pub fn build(self, seed: u64, transport: TransportModel) -> Box<dyn LanguageModel + Send> {
        match self {
            BackendChoice::Tier(t) => {
                Box::new(SimulatedGpt4::for_tier(t, seed).with_transport(transport))
            }
            BackendChoice::CascadeOf(t) => Box::new(CascadeRouter::single(t, seed, transport)),
            BackendChoice::CheapFirst => Box::new(CascadeRouter::cheap_first(seed, transport)),
        }
    }
}

/// How the router classifies one outgoing prompt — the same markers the
/// simulated backend dispatches on, so router and backend can never
/// disagree about what a prompt is.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum CallClass {
    /// A fresh task (synthesis/translation/global): restart at tier 0.
    Task,
    /// A repair-task prompt: self-contained (description + broken
    /// config), forwarded as-is; consecutive repairs escalate.
    Repair,
    /// Verifier feedback on the current draft: escalation signal.
    Feedback,
}

fn classify(content: &str) -> CallClass {
    // Repair first: repair prompts strip the synthesis task sentence but
    // carry the rest of the router description.
    if content.contains(prompts::REPAIR_TASK) || content.contains(prompts::REPAIR_REWRITE) {
        return CallClass::Repair;
    }
    if content.contains(prompts::SYNTH_TASK)
        || content.contains(prompts::TRANSLATE_TASK)
        || content.contains(prompts::GLOBAL_TASK)
        || (content.contains("no-transit policy") && content.contains("all routers"))
    {
        return CallClass::Task;
    }
    CallClass::Feedback
}

struct TierSlot {
    gpt: SimulatedGpt4,
    /// Verifier-failure feedbacks this tier absorbs before the router
    /// escalates past it.
    patience: usize,
    /// Whether this tier has a live draft for the current task (its
    /// state advanced — a timeout does not count).
    drafted: bool,
}

/// A cost-aware routing backend: an ordered tier list, cheapest first.
/// Task prompts restart the cascade at tier 0; verifier-failure
/// feedback beyond a tier's patience escalates to the next tier, which
/// receives a *replay of the stored task prompt* (it has never seen the
/// task — its fresh draft is returned as the feedback response).
/// Repair prompts are self-contained and forwarded as-is; consecutive
/// repair prompts count as escalation signal. Transport retries re-send
/// an identical transcript; the router keys its state transitions on
/// the transcript, so a retry can never double-escalate.
pub struct CascadeRouter {
    tiers: Vec<TierSlot>,
    active: usize,
    /// Feedbacks absorbed by the active tier since it was activated.
    feedbacks: usize,
    last_class: Option<CallClass>,
    /// The last task prompt, for replay to newly activated tiers.
    task_prompt: Option<String>,
    /// Retry detection: the transcript length and prompt of the last
    /// routed call. An identical (length, prompt) pair is a transport
    /// retry and must not move the routing state.
    last_len: usize,
    last_prompt: String,
    label: &'static str,
}

impl CascadeRouter {
    /// The cheap-first route: `sim-cheap` (patience 0 — the first
    /// verifier failure escalates) → `sim-std` (patience 2) →
    /// `sim-premium` (absorbs everything). All tiers share the session
    /// seed and transport model.
    pub fn cheap_first(seed: u64, transport: TransportModel) -> Self {
        CascadeRouter::from_tiers(
            &[
                (Tier::Cheap, 0),
                (Tier::Std, 2),
                (Tier::Premium, usize::MAX),
            ],
            seed,
            transport,
            "cheap-first",
        )
    }

    /// A degenerate single-tier cascade: no escalation is ever possible,
    /// so it must forward every call unchanged (the routing-degeneracy
    /// pin).
    pub fn single(tier: Tier, seed: u64, transport: TransportModel) -> Self {
        CascadeRouter::from_tiers(&[(tier, usize::MAX)], seed, transport, tier.name())
    }

    fn from_tiers(
        tiers: &[(Tier, usize)],
        seed: u64,
        transport: TransportModel,
        label: &'static str,
    ) -> Self {
        CascadeRouter {
            tiers: tiers
                .iter()
                .map(|&(t, patience)| TierSlot {
                    gpt: SimulatedGpt4::for_tier(t, seed).with_transport(transport),
                    patience,
                    drafted: false,
                })
                .collect(),
            active: 0,
            feedbacks: 0,
            last_class: None,
            task_prompt: None,
            last_len: 0,
            last_prompt: String::new(),
            label,
        }
    }

    /// The currently active tier.
    pub fn active_tier(&self) -> Tier {
        self.tiers[self.active].gpt.tier()
    }

    /// Routes one call: classifies the last user prompt and applies at
    /// most one state transition per *distinct* send (transport retries
    /// of an identical transcript are recognized and skipped).
    fn route(&mut self, transcript: &[Message]) -> (usize, CallClass) {
        let content = transcript
            .iter()
            .rev()
            .find(|m| m.role == Role::User)
            .map(|m| m.content.as_str())
            .unwrap_or("");
        let class = classify(content);
        if self.last_len == transcript.len() && self.last_prompt == content {
            return (self.active, class);
        }
        self.last_len = transcript.len();
        self.last_prompt = content.to_string();
        match class {
            CallClass::Task => {
                self.active = 0;
                self.feedbacks = 0;
                self.task_prompt = Some(content.to_string());
                for slot in &mut self.tiers {
                    slot.drafted = false;
                }
            }
            CallClass::Repair => {
                // The first repair prompt is the task itself; only a
                // *consecutive* repair prompt means the last one failed.
                if self.last_class == Some(CallClass::Repair) {
                    self.bump_and_escalate();
                }
            }
            CallClass::Feedback => self.bump_and_escalate(),
        }
        self.last_class = Some(class);
        (self.active, class)
    }

    fn bump_and_escalate(&mut self) {
        self.feedbacks += 1;
        if self.feedbacks > self.tiers[self.active].patience && self.active + 1 < self.tiers.len() {
            self.active += 1;
            self.feedbacks = 0;
        }
    }

    /// A feedback prompt aimed at a tier that has never drafted the
    /// current task (it was just activated) is meaningless to it — the
    /// router re-plays the stored task (plus any system messages) so the
    /// tier produces a fresh draft instead.
    fn replay_transcript(&self, transcript: &[Message], class: CallClass) -> Option<Vec<Message>> {
        if class != CallClass::Feedback || self.tiers[self.active].drafted {
            return None;
        }
        let task = self.task_prompt.as_ref()?;
        let mut msgs: Vec<Message> = transcript
            .iter()
            .filter(|m| m.role == Role::System)
            .cloned()
            .collect();
        msgs.push(Message::user(task.clone()));
        Some(msgs)
    }
}

impl LanguageModel for CascadeRouter {
    fn complete(&mut self, transcript: &[Message]) -> String {
        let (i, class) = self.route(transcript);
        let replay = self.replay_transcript(transcript, class);
        let slot = &mut self.tiers[i];
        let out = match &replay {
            Some(msgs) => slot.gpt.complete(msgs),
            None => slot.gpt.complete(transcript),
        };
        slot.drafted = true;
        out
    }

    fn try_complete(&mut self, transcript: &[Message]) -> Result<String, TransportError> {
        let (i, class) = self.route(transcript);
        let replay = self.replay_transcript(transcript, class);
        let slot = &mut self.tiers[i];
        let out = match &replay {
            Some(msgs) => slot.gpt.try_complete(msgs),
            None => slot.gpt.try_complete(transcript),
        };
        // A timeout never reached the tier: its state did not advance,
        // so a retry must replay again. The other transport faults burn
        // the completion — the tier *did* draft.
        if !matches!(out, Err(TransportError::Timeout)) {
            slot.drafted = true;
        }
        out
    }

    fn name(&self) -> &str {
        self.label
    }

    fn cost(&self) -> CostLedger {
        let mut total = CostLedger::new();
        for slot in &self.tiers {
            total.absorb(&slot.gpt.cost());
        }
        total
    }
}

impl ModelBackend for CascadeRouter {
    fn unit_milli_cost(&self) -> u64 {
        self.active_tier().unit_milli_cost()
    }

    fn latency_ms(&self) -> u64 {
        self.active_tier().latency_ms()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tier_names_parse_roundtrip() {
        for t in Tier::ALL {
            assert_eq!(Tier::parse(t.name()), Some(t));
            assert_eq!(t.metric_suffix(), t.name().replace('-', "_"));
        }
        assert_eq!(Tier::parse("gpt-5"), None);
    }

    #[test]
    fn ledger_charges_and_conserves() {
        let mut l = CostLedger::new();
        assert!(l.is_empty() && l.conserved());
        l.charge("sim-cheap", 1, 200);
        l.charge("sim-cheap", 1, 200);
        l.charge("sim-premium", 25, 900);
        assert_eq!(l.total_milli_cost(), 27);
        assert_eq!(l.total_calls(), 3);
        assert_eq!(l.total_latency_ms(), 1300);
        assert_eq!(l.calls_for("sim-cheap"), 2);
        assert_eq!(l.calls_for("sim-std"), 0);
        assert!(l.conserved());
    }

    #[test]
    fn ledger_absorb_and_since_are_inverse() {
        let mut base = CostLedger::new();
        base.charge("sim-std", 5, 450);
        let snapshot = base.clone();
        base.charge("sim-std", 5, 450);
        base.charge("sim-cheap", 1, 200);
        let delta = base.since(&snapshot);
        assert_eq!(delta.total_milli_cost(), 6);
        assert_eq!(delta.calls_for("sim-std"), 1);
        assert_eq!(delta.calls_for("sim-cheap"), 1);
        let mut rebuilt = snapshot.clone();
        rebuilt.absorb(&delta);
        assert_eq!(rebuilt, base);
    }

    #[test]
    fn default_choice_is_the_historical_backend() {
        assert_eq!(BackendChoice::default(), BackendChoice::Tier(Tier::Gpt4));
        assert_eq!(BackendChoice::default().label(), "simulated-gpt4");
    }

    #[test]
    fn parse_backend_and_route_accept_only_known_names() {
        for n in BackendChoice::BACKEND_NAMES {
            assert!(BackendChoice::parse_backend(n).is_some(), "{n}");
        }
        assert_eq!(BackendChoice::parse_backend("cheap-first"), None);
        assert_eq!(
            BackendChoice::parse_route("cheap-first"),
            Some(BackendChoice::CheapFirst)
        );
        assert_eq!(BackendChoice::parse_route("sim-cheap"), None);
    }

    #[test]
    fn classify_matches_backend_dispatch_order() {
        assert_eq!(classify(prompts::SYNTH_TASK), CallClass::Task);
        assert_eq!(classify(prompts::TRANSLATE_TASK), CallClass::Task);
        assert_eq!(classify(prompts::GLOBAL_TASK), CallClass::Task);
        // A repair prompt embeds the description but not the synth task
        // sentence; REPAIR_* markers must win.
        assert_eq!(
            classify(&format!(
                "Router R2 ...\n{}\n```\nx\n```",
                prompts::REPAIR_TASK
            )),
            CallClass::Repair
        );
        assert_eq!(classify(prompts::REPAIR_REWRITE), CallClass::Repair);
        assert_eq!(
            classify("The route-map T permits routes that should be denied."),
            CallClass::Feedback
        );
    }
}

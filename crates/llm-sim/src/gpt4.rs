//! `SimulatedGpt4`: the calibrated stand-in for the paper's manual
//! ChatGPT sessions.

use crate::backend::{CostLedger, Tier};
use crate::error_model::{ErrorModel, TransportModel};
use crate::faults::{FaultKind, RepairBehavior};
use crate::model::{fence, last_fenced_block, LanguageModel, Message, Role, TransportError};
use crate::prompts::{self, PromptClass};
use crate::rng::SimRng;
use crate::synth_task::SynthesisDraft;
use crate::translate_task::TranslationDraft;
use std::collections::BTreeSet;

/// Marker included in COSYNTH's IIP system message; its presence (plus the
/// model's `respect_iip` flag) suppresses the preventable error classes.
pub const IIP_MARKER: &str = "[IIP]";

enum TaskState {
    Translation(TranslationDraft),
    Synthesis(SynthesisDraft),
    /// The local-vs-global ablation: the model oscillates between
    /// incorrect whole-network strategies.
    Global {
        attempt: usize,
        router_names: Vec<String>,
    },
}

/// A generative model of GPT-4's behaviour on the paper's two tasks. See
/// the crate docs for the calibration story.
pub struct SimulatedGpt4 {
    model: ErrorModel,
    rng: SimRng,
    /// A second, independent stream for transport-fault rolls: content
    /// sampling stays byte-identical for a given seed whether or not the
    /// transport knobs are set (the stream is only *consumed* when they
    /// are — see `try_complete`).
    transport_rng: SimRng,
    state: Option<TaskState>,
    /// Wrong-line repair attempts so far (keeps each cosmetic edit
    /// distinct and the stream deterministic).
    repair_attempts: usize,
    /// The backend tier this instance bills as (name, unit price,
    /// simulated latency). Purely accounting: it never touches the
    /// content or transport RNG streams.
    tier: Tier,
    /// Calls charged so far. Charging draws no randomness, so ledgers
    /// ride along without perturbing any committed content stream.
    cost: CostLedger,
}

impl SimulatedGpt4 {
    /// Creates a simulated model with an error model and RNG seed,
    /// billing as the historical `simulated-gpt4` backend.
    pub fn new(model: ErrorModel, seed: u64) -> Self {
        SimulatedGpt4 {
            model,
            rng: SimRng::seed_from_u64(seed),
            transport_rng: SimRng::seed_from_u64(seed ^ 0x5851_F42D_4C95_7F2D),
            state: None,
            repair_attempts: 0,
            tier: Tier::Gpt4,
            cost: CostLedger::new(),
        }
    }

    /// Creates a simulated model for a backend tier: the tier's error
    /// model, and the tier's name/price on every charge. For
    /// [`Tier::Gpt4`] this is exactly [`SimulatedGpt4::new`] with
    /// [`ErrorModel::paper_default`].
    pub fn for_tier(tier: Tier, seed: u64) -> Self {
        let mut gpt = Self::new(tier.error_model(), seed);
        gpt.tier = tier;
        gpt
    }

    /// Sets the transport-fault knobs (builder style).
    pub fn with_transport(mut self, transport: TransportModel) -> Self {
        self.model.transport = transport;
        self
    }

    /// The tier this instance bills as.
    pub fn tier(&self) -> Tier {
        self.tier
    }

    /// The faults a draft can exhibit given what the task actually
    /// contains (no AND-semantics fault without a multi-community filter,
    /// etc.).
    fn applicable_synth_faults(draft: &SynthesisDraft) -> Vec<FaultKind> {
        let u = &draft.understood;
        FaultKind::SYNTHESIS
            .into_iter()
            .filter(|f| match f {
                FaultKind::AndSemanticsFilter => {
                    u.egress_filters.iter().any(|(_, cs, _)| cs.len() >= 2)
                }
                FaultKind::MatchCommunityLiteral => !u.egress_filters.is_empty(),
                FaultKind::MissingAdditive => !u.ingress_tags.is_empty(),
                FaultKind::MisplacedNeighborCmd => {
                    !u.ingress_tags.is_empty()
                        || !u.ingress_prefs.is_empty()
                        || !u.egress_filters.is_empty()
                }
                FaultKind::MissingNetwork => !u.networks.is_empty(),
                FaultKind::MissingNeighbor => !u.neighbors.is_empty(),
                FaultKind::WrongIfaceAddress => !u.interfaces.is_empty(),
                FaultKind::WrongRouterId => u.router_id.is_some(),
                _ => true,
            })
            .collect()
    }

    fn iip_active(&self, transcript: &[Message]) -> bool {
        self.model.respect_iip
            && transcript
                .iter()
                .any(|m| m.role == Role::System && m.content.contains(IIP_MARKER))
    }

    fn sample_faults(&mut self, candidates: &[FaultKind], iip: bool) -> BTreeSet<FaultKind> {
        let mut out = BTreeSet::new();
        for &f in candidates {
            let p = if iip && f.iip_preventable() {
                0.0
            } else {
                self.model.p_fault.get(&f).copied().unwrap_or(0.0)
            };
            if p >= 1.0 || (p > 0.0 && self.rng.next_f64() < p) {
                out.insert(f);
            }
        }
        out
    }

    /// Post-repair regression: maybe introduce a new fault or reintroduce
    /// a fixed one — but never the fault that was just repaired (that
    /// pathology, "applies no change", is modeled by `NeedsHuman`
    /// behaviour instead). Returns the regressed fault, if any.
    fn maybe_regress(&mut self, iip: bool, just_fixed: FaultKind) -> Option<FaultKind> {
        // Collect candidates from the current state.
        let (active, seen, candidates): (BTreeSet<FaultKind>, BTreeSet<FaultKind>, Vec<FaultKind>) =
            match &self.state {
                Some(TaskState::Translation(d)) => (
                    d.active.clone(),
                    d.seen.clone(),
                    FaultKind::TRANSLATION.to_vec(),
                ),
                Some(TaskState::Synthesis(d)) => (
                    d.active.clone(),
                    d.seen.clone(),
                    Self::applicable_synth_faults(d),
                ),
                _ => return None,
            };
        let roll: f64 = self.rng.next_f64();
        let pick = if roll < self.model.p_reintroduce {
            // Reintroduce a previously fixed, auto-fixable fault.
            seen.iter().copied().find(|f| {
                *f != just_fixed && !active.contains(f) && f.repair() == RepairBehavior::AutoFixable
            })
        } else if roll < self.model.p_reintroduce + self.model.p_regress_new {
            // Introduce a brand-new fault.
            let fresh: Vec<FaultKind> = candidates
                .into_iter()
                .filter(|f| {
                    !seen.contains(f)
                        && f.repair() == RepairBehavior::AutoFixable
                        && !(iip && f.iip_preventable())
                })
                .collect();
            if fresh.is_empty() {
                None
            } else {
                let i = self.rng.index(fresh.len());
                Some(fresh[i])
            }
        } else {
            None
        };
        if let Some(f) = pick {
            match self.state.as_mut() {
                Some(TaskState::Translation(d)) => d.introduce(f),
                Some(TaskState::Synthesis(d)) => d.introduce(f),
                _ => {}
            }
        }
        pick
    }

    fn render_current(&self) -> String {
        match &self.state {
            Some(TaskState::Translation(d)) => d.render(),
            Some(TaskState::Synthesis(d)) => d.render(),
            Some(TaskState::Global {
                attempt,
                router_names,
            }) => render_global_strategy(*attempt, router_names),
            None => String::new(),
        }
    }

    fn handle_rectification(&mut self, prompt: &str, iip: bool) -> String {
        let class = prompts::classify(prompt);
        if class == PromptClass::PrintConfig {
            return fence(&self.render_current());
        }
        // The global task never converges: every feedback just flips the
        // strategy (the paper's oscillation).
        if let Some(TaskState::Global { attempt, .. }) = self.state.as_mut() {
            *attempt += 1;
            return format!(
                "I see the issue — let me take a different approach.\n{}",
                fence(&self.render_current())
            );
        }
        // Find an active fault this prompt addresses, preferring the one
        // whose signature actually appears in the prompt text (the model
        // "reads" the feedback rather than fixing an arbitrary problem).
        let active: Vec<FaultKind> = match &self.state {
            Some(TaskState::Translation(d)) => d.active.iter().copied().collect(),
            Some(TaskState::Synthesis(d)) => d.active.iter().copied().collect(),
            _ => Vec::new(),
        };
        let target = active
            .iter()
            .copied()
            .filter(|f| f.addressed_by(&class))
            .max_by_key(|f| signature_strength(*f, prompt));
        let Some(fault) = target else {
            // Nothing matches: apologize and reprint unchanged (a common
            // GPT-4 behaviour the paper reports).
            return format!(
                "I reviewed the configuration but could not find a problem \
                 related to that feedback.\n{}",
                fence(&self.render_current())
            );
        };
        let is_human = fault.human_class(&class);
        let fixed = match fault.repair() {
            RepairBehavior::AutoFixable => {
                self.apply_fix(fault);
                true
            }
            RepairBehavior::NeedsHuman => {
                if is_human {
                    self.apply_fix(fault);
                    true
                } else {
                    false
                }
            }
            RepairBehavior::NeedsHumanWithSyntaxDetour => {
                if is_human {
                    self.apply_fix(fault);
                    // The fix lands, but through fresh invalid syntax
                    // (Section 3.2's prefix-list detour).
                    if let Some(TaskState::Translation(d)) = self.state.as_mut() {
                        d.introduce(FaultKind::BadPrefixListSyntax);
                    }
                    true
                } else {
                    false
                }
            }
        };
        if !fixed {
            // Unchanged output — the paper: "it usually does nothing when
            // asked to fix the error".
            return format!(
                "I adjusted the configuration to address the issue.\n{}",
                fence(&self.render_current())
            );
        }
        let regressed = self.maybe_regress(iip, fault);
        let mut reply = format!("Fixed: {}.\n", fault.description());
        if regressed.is_some() {
            reply.push_str("I also revised some related configuration.\n");
        }
        reply.push_str(&fence(&self.render_current()));
        reply
    }

    /// Handles a repair-task prompt (the third session shape): the
    /// prompt carries the router description + policy sentences, a
    /// localization hint, and the broken config in a fence. With
    /// probability `p_repair_wrong_line` the model "fixes" the wrong
    /// line (a cosmetic edit; the fault stays); otherwise it re-derives
    /// the reference config from the description — possibly introducing
    /// one fresh auto-fixable fault as a regression
    /// (`p_repair_regress`). The human rewrite escalation
    /// ([`prompts::REPAIR_REWRITE`]) always lands the reference.
    fn handle_repair(&mut self, content: &str, iip: bool) -> String {
        let forced = content.contains(prompts::REPAIR_REWRITE);
        let broken = last_fenced_block(content).unwrap_or_default();
        if !forced && self.rng.next_f64() < self.model.p_repair_wrong_line {
            self.repair_attempts += 1;
            let patched = patch_unrelated_line(&broken, self.repair_attempts);
            return format!(
                "I located the problem and corrected it in place.\n{}",
                fence(&patched)
            );
        }
        let probe = SynthesisDraft::new(content, BTreeSet::new());
        let mut faults = BTreeSet::new();
        if !forced && self.rng.next_f64() < self.model.p_repair_regress {
            let fresh: Vec<FaultKind> = Self::applicable_synth_faults(&probe)
                .into_iter()
                .filter(|f| {
                    f.repair() == RepairBehavior::AutoFixable && !(iip && f.iip_preventable())
                })
                .collect();
            if !fresh.is_empty() {
                faults.insert(fresh[self.rng.index(fresh.len())]);
            }
        }
        self.state = Some(TaskState::Synthesis(SynthesisDraft::new(content, faults)));
        format!(
            "Here is the repaired configuration:\n{}",
            fence(&self.render_current())
        )
    }

    fn apply_fix(&mut self, fault: FaultKind) {
        match self.state.as_mut() {
            Some(TaskState::Translation(d)) => {
                d.fix(fault);
            }
            Some(TaskState::Synthesis(d)) => {
                d.fix(fault);
            }
            _ => {}
        }
    }
}

impl LanguageModel for SimulatedGpt4 {
    fn try_complete(&mut self, transcript: &[Message]) -> Result<String, TransportError> {
        let t = self.model.transport;
        if !t.any() {
            // Zero-knob fast path: no draw from the transport stream, so
            // content is byte-identical to the pre-transport model.
            return Ok(self.complete(transcript));
        }
        let roll = self.transport_rng.next_f64();
        if roll < t.p_timeout {
            // The request never reached the backend: no state advances,
            // and a retry regenerates from the same point.
            return Err(TransportError::Timeout);
        }
        if roll < t.p_timeout + t.p_truncated {
            // The backend answered (its state advanced) but the client
            // can't use the response.
            let _ = self.complete(transcript);
            return Err(TransportError::TruncatedResponse);
        }
        if roll < t.p_timeout + t.p_truncated + t.p_malformed {
            let _ = self.complete(transcript);
            return Err(TransportError::MalformedPayload);
        }
        Ok(self.complete(transcript))
    }

    fn complete(&mut self, transcript: &[Message]) -> String {
        // Every completion the backend actually serves is billed —
        // including ones the transport then loses (truncation/garbling
        // burn a completion in `try_complete`). A timeout never gets
        // here and is never charged.
        self.cost.charge(
            self.tier.name(),
            self.tier.unit_milli_cost(),
            self.tier.latency_ms(),
        );
        let iip = self.iip_active(transcript);
        let Some(last) = transcript.iter().rev().find(|m| m.role == Role::User) else {
            return "How can I help with your network configuration?".into();
        };
        let content = last.content.clone();
        if content.contains(prompts::REPAIR_TASK) || content.contains(prompts::REPAIR_REWRITE) {
            return self.handle_repair(&content, iip);
        }
        if content.contains(prompts::TRANSLATE_TASK) {
            let cisco = last_fenced_block(&content).unwrap_or_default();
            let faults = self.sample_faults(&FaultKind::TRANSLATION, iip);
            let draft = TranslationDraft::new(&cisco, faults);
            self.state = Some(TaskState::Translation(draft));
            return format!(
                "Here is the equivalent Juniper configuration:\n{}",
                fence(&self.render_current())
            );
        }
        if content.contains(prompts::SYNTH_TASK) {
            // Sample faults against an understanding-only draft first so
            // applicability is known.
            let probe = SynthesisDraft::new(&content, BTreeSet::new());
            let candidates = Self::applicable_synth_faults(&probe);
            let faults = self.sample_faults(&candidates, iip);
            self.state = Some(TaskState::Synthesis(SynthesisDraft::new(&content, faults)));
            return format!(
                "Here is the configuration file:\n{}",
                fence(&self.render_current())
            );
        }
        if content.contains(prompts::GLOBAL_TASK)
            || content.contains("no-transit policy") && content.contains("all routers")
        {
            let router_names: Vec<String> = content
                .lines()
                .filter_map(|l| {
                    l.strip_prefix("Router ")
                        .and_then(|r| r.split_whitespace().next())
                        .map(|s| {
                            s.trim_end_matches(|c: char| !c.is_alphanumeric())
                                .to_string()
                        })
                })
                .filter(|s| !s.is_empty())
                .collect::<BTreeSet<_>>()
                .into_iter()
                .collect();
            self.state = Some(TaskState::Global {
                attempt: 0,
                router_names,
            });
            return format!(
                "I'll use AS-path filtering to implement no-transit.\n{}",
                fence(&self.render_current())
            );
        }
        self.handle_rectification(&content, iip)
    }

    fn name(&self) -> &str {
        self.tier.name()
    }

    fn cost(&self) -> CostLedger {
        self.cost.clone()
    }
}

/// How strongly a prompt's wording points at a specific fault (0 = only
/// the class matches; higher = the prompt names the fault's artifact).
fn signature_strength(fault: FaultKind, prompt: &str) -> u8 {
    let p = prompt.to_ascii_lowercase();
    let hit = |needles: &[&str]| needles.iter().any(|n| p.contains(n)) as u8;
    match fault {
        FaultKind::MissingLocalAs => 2 * hit(&["local as", "autonomous-system"]),
        FaultKind::BadPrefixListSyntax => 2 * hit(&["-32", "prefix-list", "route-filter"]),
        FaultKind::MatchCommunityLiteral => 2 * hit(&["match community"]),
        FaultKind::CliPromptLines => 2 * hit(&["configure terminal", "'end'", "'write'", "cli"]),
        FaultKind::WrongKeywordLines => 2 * hit(&["ip routing", "conf t"]),
        FaultKind::MisplacedNeighborCmd => 2 * hit(&["neighbor"]),
        FaultKind::OspfCostWrong => 2 * hit(&["cost"]),
        FaultKind::OspfPassiveDropped => 2 * hit(&["passive"]),
        FaultKind::WrongMed => 2 * hit(&["med"]),
        FaultKind::Ge24Dropped => 2 * hit(&["length", "ge 24", "prefix-length-range"]),
        FaultKind::RedistributionDropped => 2 * hit(&["redistribut", "from bgp"]),
        FaultKind::MissingAdditive => 2 * hit(&["additive", "preserved"]),
        FaultKind::AndSemanticsFilter => 2 * hit(&["denied", "separate"]),
        _ => 0,
    }
}

/// The wrong-line repair "fix": a cosmetic edit far from the fault — a
/// fresh description on the first interface (descriptions lower to
/// nothing in the IR, so verification verdicts are unchanged and the
/// injected fault survives untouched). Falls back to returning the
/// broken config verbatim when there is no interface to decorate.
fn patch_unrelated_line(broken: &str, attempt: usize) -> String {
    let mut out = String::new();
    let mut inserted = false;
    for line in broken.lines() {
        out.push_str(line);
        out.push('\n');
        if !inserted && line.starts_with("interface ") {
            out.push_str(&format!(" description repair-attempt-{attempt}\n"));
            inserted = true;
        }
    }
    out
}

/// The oscillating global-task output: strategy alternates between
/// "no filtering at all" (transit leaks) and "AS-path filters that block
/// the customer too" — both globally wrong, as in Section 4.1.
fn render_global_strategy(attempt: usize, router_names: &[String]) -> String {
    let mut out = String::new();
    for (i, name) in router_names.iter().enumerate() {
        out.push_str(&format!("### {name} ###\n"));
        let asn = i + 1;
        if attempt.is_multiple_of(2) {
            // Strategy A: plain eBGP everywhere — ISPs can transit.
            out.push_str(&format!(
                "hostname {name}\nrouter bgp {asn}\n bgp router-id 1.0.0.{asn}\n"
            ));
        } else {
            // Strategy B: deny everything with an AS-path filter — kills
            // customer reachability as well.
            out.push_str(&format!(
                "hostname {name}\nip as-path access-list 1 deny .*\nrouter bgp {asn}\n bgp router-id 1.0.0.{asn}\n"
            ));
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::prompts::{ingress_tag_sentence, TRANSLATE_TASK};

    const CISCO: &str = "\
hostname border1
interface Ethernet0/1
 ip address 10.0.1.1 255.255.255.0
router bgp 100
 network 1.2.3.0 mask 255.255.255.0
 neighbor 2.3.4.5 remote-as 200
 neighbor 2.3.4.5 route-map to_provider out
 redistribute ospf route-map ospf_to_bgp
ip prefix-list our-networks seq 5 permit 1.2.3.0/24 ge 24
route-map to_provider permit 10
 match ip address prefix-list our-networks
 set metric 50
route-map to_provider deny 100
route-map ospf_to_bgp permit 10
";

    fn translation_prompt() -> String {
        format!("{TRANSLATE_TASK}\n{}", fence(CISCO))
    }

    #[test]
    fn flawless_model_translates_correctly() {
        let mut gpt = SimulatedGpt4::new(ErrorModel::flawless(), 1);
        let reply = gpt.complete(&[Message::user(translation_prompt())]);
        let junos = last_fenced_block(&reply).unwrap();
        let (_, warnings) = juniper_cfg::parse(&junos);
        assert!(warnings.is_empty(), "{warnings:?}\n{junos}");
    }

    #[test]
    fn paper_model_produces_flawed_draft() {
        let mut gpt = SimulatedGpt4::new(ErrorModel::paper_default(), 1);
        let reply = gpt.complete(&[Message::user(translation_prompt())]);
        let junos = last_fenced_block(&reply).unwrap();
        let (_, warnings) = juniper_cfg::parse(&junos);
        assert!(
            !warnings.is_empty(),
            "paper model must produce syntax errors"
        );
    }

    #[test]
    fn auto_prompt_fixes_med() {
        let mut gpt = SimulatedGpt4::new(ErrorModel::only(FaultKind::WrongMed), 1);
        let t = vec![Message::user(translation_prompt())];
        let first = gpt.complete(&t);
        assert!(last_fenced_block(&first).unwrap().contains("metric 999"));
        let fix = gpt.complete(&[Message::user(
            "In the original configuration, the BGP MED value set is 50, but in \
             the translation it is 999.",
        )]);
        let junos = last_fenced_block(&fix).unwrap();
        assert!(junos.contains("metric 50"), "{junos}");
        assert!(!junos.contains("metric 999"));
    }

    #[test]
    fn redistribution_resists_auto_prompt_but_yields_to_human() {
        let mut gpt = SimulatedGpt4::new(ErrorModel::only(FaultKind::RedistributionDropped), 1);
        let _ = gpt.complete(&[Message::user(translation_prompt())]);
        // Auto prompt: no change.
        let auto = gpt.complete(&[Message::user(
            "In the original configuration, routes are redistributed from ospf into \
             BGP, but in the translation they are not.",
        )]);
        let junos = last_fenced_block(&auto).unwrap();
        assert!(!junos.contains("redistribute-ospf"), "unchanged");
        // Human prompt: fixed.
        let human = gpt.complete(&[Message::user(
            "Please add 'from bgp' conditions to the routing policies so that \
             redistribution matches the original.",
        )]);
        let junos = last_fenced_block(&human).unwrap();
        assert!(junos.contains("redistribute-ospf"), "{junos}");
    }

    #[test]
    fn ge24_human_fix_takes_syntax_detour() {
        let mut gpt = SimulatedGpt4::new(ErrorModel::only(FaultKind::Ge24Dropped), 1);
        let _ = gpt.complete(&[Message::user(translation_prompt())]);
        let human = gpt.complete(&[Message::user(
            "To match prefixes of length 24 to 32, use \
             'route-filter 1.2.3.0/24 prefix-length-range /24-/32'.",
        )]);
        let junos = last_fenced_block(&human).unwrap();
        // Range restored but spelled invalidly.
        assert!(junos.contains("-32;"), "{junos}");
        let (_, w) = juniper_cfg::parse(&junos);
        assert!(w
            .iter()
            .any(|x| x.kind == net_model::WarningKind::BadPrefixListSyntax));
        // The follow-up syntax prompt fixes it for good.
        let fixed = gpt.complete(&[Message::user(
            "There is a syntax error: 'route-filter 1.2.3.0/24-32'",
        )]);
        let junos = last_fenced_block(&fixed).unwrap();
        let (_, w) = juniper_cfg::parse(&junos);
        assert!(w.is_empty(), "{w:?}\n{junos}");
        // The reference spells `ge 24` on a /24 as `orlonger` — the range
        // is restored semantically.
        assert!(
            junos.contains("route-filter 1.2.3.0/24 orlonger"),
            "{junos}"
        );
    }

    #[test]
    fn print_config_reprints_without_change() {
        let mut gpt = SimulatedGpt4::new(ErrorModel::only(FaultKind::WrongMed), 1);
        let first = gpt.complete(&[Message::user(translation_prompt())]);
        let printed = gpt.complete(&[Message::user("Print the entire configuration.")]);
        assert_eq!(
            last_fenced_block(&first).unwrap(),
            last_fenced_block(&printed).unwrap()
        );
    }

    #[test]
    fn synthesis_with_iip_suppresses_preventable_faults() {
        let prompt = format!(
            "{}\nRouter R2 has AS number 2 and BGP router-id 1.0.0.2.\n\
             Interface Ethernet0/0 has IP address 2.0.0.2 (mask 255.255.255.0) and connects to R1.\n\
             It has an eBGP neighbor 2.0.0.1 with AS number 1 (R1).\n{}",
            prompts::SYNTH_TASK,
            ingress_tag_sentence("2.0.0.1".parse().unwrap(), "100:1".parse().unwrap(), "T")
        );
        let mut model = ErrorModel::paper_default();
        // Force the preventable classes on if IIP were ignored.
        model.p_fault.insert(FaultKind::CliPromptLines, 1.0);
        let mut gpt = SimulatedGpt4::new(model.clone(), 7);
        let with_iip = gpt.complete(&[
            Message::system(format!("{IIP_MARKER} Do not use CLI commands.")),
            Message::user(prompt.clone()),
        ]);
        let cfg = last_fenced_block(&with_iip).unwrap();
        assert!(!cfg.contains("configure terminal"), "{cfg}");
        // Without the IIP system message the fault appears.
        let mut gpt = SimulatedGpt4::new(model, 7);
        let without = gpt.complete(&[Message::user(prompt)]);
        let cfg = last_fenced_block(&without).unwrap();
        assert!(cfg.contains("configure terminal"), "{cfg}");
    }

    fn repair_prompt(broken: &str, forced: bool) -> String {
        let task = if forced {
            prompts::REPAIR_REWRITE
        } else {
            prompts::REPAIR_TASK
        };
        format!(
            "Router R2 has AS number 2 and BGP router-id 1.0.0.2.\n\
             Interface Ethernet0/0 has IP address 2.0.0.2 (mask 255.255.255.0) and connects to R1.\n\
             It has an eBGP neighbor 2.0.0.1 with AS number 1 (R1).\n\
             It must announce the following networks in BGP: 2.0.0.0/24.\n\
             {}\n{task}\n{}",
            ingress_tag_sentence("2.0.0.1".parse().unwrap(), "100:1".parse().unwrap(), "T"),
            fence(broken)
        )
    }

    #[test]
    fn repair_returns_reference_when_flawless() {
        let mut gpt = SimulatedGpt4::new(ErrorModel::flawless(), 1);
        let broken = "hostname R2\nrouter bgp 9\n";
        let reply = gpt.complete(&[Message::user(repair_prompt(broken, false))]);
        let cfg = last_fenced_block(&reply).unwrap();
        assert!(cfg.contains("router bgp 2"), "{cfg}");
        assert!(cfg.contains("route-map T"), "{cfg}");
        let parsed = bf_lite::parse_config(&cfg, None);
        assert!(parsed.is_clean(), "{:?}", parsed.warnings);
    }

    #[test]
    fn wrong_line_repair_keeps_the_fault_and_edits_elsewhere() {
        let mut model = ErrorModel::flawless();
        model.p_repair_wrong_line = 1.0;
        let mut gpt = SimulatedGpt4::new(model, 1);
        let broken =
            "hostname R2\ninterface Ethernet0/0\n ip address 2.0.0.2 255.255.255.0\nrouter bgp 9\n";
        let reply = gpt.complete(&[Message::user(repair_prompt(broken, false))]);
        let cfg = last_fenced_block(&reply).unwrap();
        assert!(cfg.contains("router bgp 9"), "fault must survive: {cfg}");
        assert!(cfg.contains("description repair-attempt-1"), "{cfg}");
        // The forced rewrite ignores the wrong-line pathology entirely.
        let reply = gpt.complete(&[Message::user(repair_prompt(&cfg, true))]);
        let cfg = last_fenced_block(&reply).unwrap();
        assert!(cfg.contains("router bgp 2"), "{cfg}");
        assert!(!cfg.contains("repair-attempt"), "{cfg}");
    }

    #[test]
    fn repair_regression_is_auto_fixable_by_the_normal_loop() {
        let mut model = ErrorModel::flawless();
        model.p_repair_regress = 1.0;
        let mut gpt = SimulatedGpt4::new(model, 3);
        let broken = "hostname R2\nrouter bgp 9\n";
        let reply = gpt.complete(&[Message::user(repair_prompt(broken, false))]);
        let cfg = last_fenced_block(&reply).unwrap();
        assert!(cfg.contains("router bgp"), "{cfg}");
        // The regressed draft differs from the reference the flawless
        // model would produce, and the model's state now answers normal
        // rectification prompts (the fault is auto-fixable by design).
        let mut clean = SimulatedGpt4::new(ErrorModel::flawless(), 3);
        let reference =
            last_fenced_block(&clean.complete(&[Message::user(repair_prompt(broken, false))]))
                .unwrap();
        assert_ne!(cfg, reference, "regression must perturb the repair");
    }

    #[test]
    fn global_task_oscillates() {
        let mut gpt = SimulatedGpt4::new(ErrorModel::paper_default(), 3);
        let prompt = format!(
            "{}\nRouter R1 has AS number 1.\nRouter R2 has AS number 2.",
            prompts::GLOBAL_TASK
        );
        let a = gpt.complete(&[Message::user(prompt)]);
        let b = gpt.complete(&[Message::user("That fails for packet to 200.2.0.0; fix it.")]);
        let c = gpt.complete(&[Message::user(
            "Still wrong; a packet from ISP-2 reaches ISP-3.",
        )]);
        let block = |s: &str| last_fenced_block(s).unwrap();
        assert_ne!(block(&a), block(&b), "strategy must change");
        assert_eq!(block(&a), block(&c), "and oscillate back");
    }

    #[test]
    fn unmatched_feedback_changes_nothing() {
        let mut gpt = SimulatedGpt4::new(ErrorModel::only(FaultKind::WrongMed), 1);
        let first = gpt.complete(&[Message::user(translation_prompt())]);
        let reply = gpt.complete(&[Message::user(
            "In the original configuration, the OSPF link for Loopback0 has cost set to 1, \
             but in the translation, the corresponding link to lo0.0 has cost set to 0",
        )]);
        assert_eq!(
            last_fenced_block(&first).unwrap(),
            last_fenced_block(&reply).unwrap(),
            "a cost prompt cannot fix a MED fault"
        );
    }

    #[test]
    fn zero_transport_knobs_never_fail_and_match_complete() {
        // try_complete with all knobs at zero must be byte-identical to
        // complete on a twin model (no transport draws, no divergence).
        let mut a = SimulatedGpt4::new(ErrorModel::paper_default(), 7);
        let mut b = SimulatedGpt4::new(ErrorModel::paper_default(), 7);
        let prompt = [Message::user(translation_prompt())];
        let via_try = a.try_complete(&prompt).expect("perfect transport");
        let via_plain = b.complete(&prompt);
        assert_eq!(via_try, via_plain);
    }

    #[test]
    fn transport_faults_are_deterministic_per_seed() {
        let stream = |seed: u64| {
            let mut model = ErrorModel::flawless();
            model.transport = crate::error_model::TransportModel::flaky();
            let mut gpt = SimulatedGpt4::new(model, seed);
            let prompt = [Message::user(translation_prompt())];
            (0..32)
                .map(|_| match gpt.try_complete(&prompt) {
                    Ok(_) => "ok",
                    Err(e) => e.code(),
                })
                .collect::<Vec<_>>()
        };
        assert_eq!(stream(5), stream(5), "same seed, same fault stream");
        assert_ne!(stream(5), stream(6), "different seed, different stream");
        let s = stream(5);
        assert!(s.contains(&"ok"), "some completions succeed");
        assert!(s.iter().any(|c| *c != "ok"), "some faults fire");
    }

    #[test]
    fn timeout_does_not_advance_backend_state() {
        // Force a certain timeout: the draft must not be sampled, so a
        // subsequent successful call still produces the first draft.
        let mut model = ErrorModel::only(FaultKind::WrongMed);
        model.transport = crate::error_model::TransportModel {
            p_timeout: 1.0,
            ..Default::default()
        };
        let mut gpt = SimulatedGpt4::new(model, 11);
        let prompt = [Message::user(translation_prompt())];
        assert_eq!(gpt.try_complete(&prompt), Err(TransportError::Timeout));
        assert!(gpt.state.is_none(), "timed-out request never arrived");
        gpt.model.transport = crate::error_model::TransportModel::default();
        let draft = gpt.try_complete(&prompt).unwrap();
        assert!(last_fenced_block(&draft).is_some(), "first draft intact");
    }

    #[test]
    fn truncation_advances_backend_state() {
        let mut model = ErrorModel::only(FaultKind::WrongMed);
        model.transport = crate::error_model::TransportModel {
            p_truncated: 1.0,
            ..Default::default()
        };
        let mut gpt = SimulatedGpt4::new(model, 11);
        let prompt = [Message::user(translation_prompt())];
        assert_eq!(
            gpt.try_complete(&prompt),
            Err(TransportError::TruncatedResponse)
        );
        assert!(gpt.state.is_some(), "server answered before the cut");
    }
}

//! The translation task: reference translation plus fault injection.

use crate::faults::FaultKind;
use config_ir::from_juniper::ORIGINATE_POLICY;
use config_ir::to_juniper::REDISTRIBUTE_PREFIX;
use juniper_cfg::{FromCondition, JuniperConfig, ThenAction};
use std::collections::BTreeSet;

/// State of one translation conversation: the correct translation and the
/// faults currently present in the draft.
#[derive(Debug, Clone)]
pub struct TranslationDraft {
    /// The reference (correct) Junos AST.
    pub reference: JuniperConfig,
    /// Faults currently active.
    pub active: BTreeSet<FaultKind>,
    /// Faults that were active at some point (for reintroduction and the
    /// Table 2 report).
    pub seen: BTreeSet<FaultKind>,
}

impl TranslationDraft {
    /// Builds the reference translation from Cisco text and activates the
    /// given faults.
    pub fn new(cisco_text: &str, faults: BTreeSet<FaultKind>) -> Self {
        let (ast, _warnings) = cisco_cfg::parse(cisco_text);
        let (device, _notes) = config_ir::from_cisco(&ast);
        let (reference, _emit_notes) = config_ir::to_juniper(&device);
        TranslationDraft {
            reference,
            seen: faults.clone(),
            active: faults,
        }
    }

    /// Renders the current draft: reference AST, minus fault mutations,
    /// printed, plus text-level fault mutations.
    pub fn render(&self) -> String {
        let mut ast = self.reference.clone();
        for f in &self.active {
            mutate_ast(*f, &mut ast);
        }
        let mut text = juniper_cfg::print(&ast);
        for f in &self.active {
            mutate_text(*f, &mut text);
        }
        text
    }

    /// Marks a fault fixed.
    pub fn fix(&mut self, f: FaultKind) -> bool {
        self.active.remove(&f)
    }

    /// (Re)introduces a fault.
    pub fn introduce(&mut self, f: FaultKind) {
        self.active.insert(f);
        self.seen.insert(f);
    }
}

/// AST-level fault mutations on the Junos draft.
fn mutate_ast(f: FaultKind, ast: &mut JuniperConfig) {
    match f {
        FaultKind::MissingLocalAs => {
            ast.autonomous_system = None;
            for g in &mut ast.bgp_groups {
                g.local_as = None;
            }
        }
        FaultKind::MissingExportPolicy => {
            for g in &mut ast.bgp_groups {
                g.export.clear();
                for n in &mut g.neighbors {
                    n.export.clear();
                }
            }
        }
        FaultKind::OspfCostWrong => {
            // Table 1's example: the loopback's cost 1 becomes 0.
            let mut done = false;
            for a in &mut ast.ospf_areas {
                for i in &mut a.interfaces {
                    if !done && i.metric.is_some() {
                        i.metric = Some(0);
                        done = true;
                    }
                }
            }
        }
        FaultKind::OspfPassiveDropped => {
            for a in &mut ast.ospf_areas {
                for i in &mut a.interfaces {
                    i.passive = false;
                }
            }
        }
        FaultKind::WrongMed => {
            for p in &mut ast.policies {
                if p.name.starts_with(REDISTRIBUTE_PREFIX) || p.name == ORIGINATE_POLICY {
                    continue;
                }
                for t in &mut p.terms {
                    for a in &mut t.then {
                        if let ThenAction::Metric(v) = a {
                            *v = 999;
                            return;
                        }
                    }
                }
            }
        }
        FaultKind::Ge24Dropped => {
            // Drop the length bounds on the first bounded route filter.
            for p in &mut ast.policies {
                for t in &mut p.terms {
                    for c in &mut t.from {
                        if let FromCondition::RouteFilter(pat) = c {
                            if !pat.is_exact() {
                                *c = FromCondition::RouteFilter(net_model::PrefixPattern::exact(
                                    pat.prefix,
                                ));
                                return;
                            }
                        }
                    }
                }
            }
        }
        FaultKind::RedistributionDropped => {
            ast.policies
                .retain(|p| !p.name.starts_with(REDISTRIBUTE_PREFIX));
        }
        // Text faults and synthesis faults do nothing at this level.
        _ => {}
    }
}

/// Text-level fault mutations on the rendered Junos draft.
fn mutate_text(f: FaultKind, text: &mut String) {
    if f != FaultKind::BadPrefixListSyntax {
        return;
    }
    // Replace the LAST bounded route-filter line with the invalid
    // `<prefix>-32` spelling the paper quotes GPT-4 inventing.
    let lines: Vec<&str> = text.lines().collect();
    let target = lines.iter().rposition(|l| {
        l.contains("route-filter ")
            && (l.contains("prefix-length-range") || l.contains("orlonger") || l.contains("upto"))
    });
    let Some(idx) = target else { return };
    let line = lines[idx];
    let indent: String = line.chars().take_while(|c| c.is_whitespace()).collect();
    let prefix_token = line
        .split_whitespace()
        .nth(1)
        .unwrap_or("1.2.3.0/24")
        .to_string();
    let invalid = format!("{indent}route-filter {prefix_token}-32;");
    let mut out: Vec<String> = lines.iter().map(|s| s.to_string()).collect();
    out[idx] = invalid;
    *text = out.join("\n");
    text.push('\n');
}

#[cfg(test)]
mod tests {
    use super::*;

    const CISCO: &str = "\
hostname border1
interface Ethernet0/1
 ip address 10.0.1.1 255.255.255.0
 ip ospf cost 10
interface Loopback0
 ip address 1.2.3.4 255.255.255.255
 ip ospf cost 1
router ospf 1
 router-id 1.2.3.4
 network 10.0.1.0 0.0.0.255 area 0
 network 1.2.3.4 0.0.0.0 area 0
 passive-interface Loopback0
router bgp 100
 network 1.2.3.0 mask 255.255.255.0
 neighbor 2.3.4.5 remote-as 200
 neighbor 2.3.4.5 route-map to_provider out
 neighbor 2.3.4.5 route-map from_provider in
 redistribute ospf route-map ospf_to_bgp
ip prefix-list our-networks seq 5 permit 1.2.3.0/24 ge 24
ip prefix-list private-ips seq 5 permit 10.0.0.0/8 ge 8
route-map to_provider permit 10
 match ip address prefix-list our-networks
 set metric 50
route-map to_provider deny 100
route-map from_provider deny 90
 match ip address prefix-list private-ips
route-map from_provider permit 100
 set local-preference 120
route-map ospf_to_bgp permit 10
";

    fn draft(faults: &[FaultKind]) -> TranslationDraft {
        TranslationDraft::new(CISCO, faults.iter().copied().collect())
    }

    #[test]
    fn clean_draft_is_reference() {
        let d = draft(&[]);
        let text = d.render();
        let (_, warnings) = juniper_cfg::parse(&text);
        assert!(warnings.is_empty(), "{warnings:?}\n{text}");
    }

    #[test]
    fn missing_local_as_triggers_parse_warning() {
        let d = draft(&[FaultKind::MissingLocalAs]);
        let (_, warnings) = juniper_cfg::parse(&d.render());
        assert!(warnings
            .iter()
            .any(|w| w.kind == net_model::WarningKind::MissingLocalAs));
    }

    #[test]
    fn bad_prefix_list_syntax_triggers_parse_warning() {
        let d = draft(&[FaultKind::BadPrefixListSyntax]);
        let text = d.render();
        assert!(text.contains("-32;"), "{text}");
        let (_, warnings) = juniper_cfg::parse(&text);
        assert!(
            warnings
                .iter()
                .any(|w| w.kind == net_model::WarningKind::BadPrefixListSyntax),
            "{warnings:?}"
        );
    }

    #[test]
    fn semantic_faults_are_campion_visible() {
        // Lower the original and each faulty render; Campion must find a
        // difference for every semantic fault class.
        let (cast, _) = cisco_cfg::parse(CISCO);
        let (original, _) = config_ir::from_cisco(&cast);
        for f in [
            FaultKind::MissingExportPolicy,
            FaultKind::OspfCostWrong,
            FaultKind::OspfPassiveDropped,
            FaultKind::WrongMed,
            FaultKind::Ge24Dropped,
            FaultKind::RedistributionDropped,
        ] {
            let d = draft(&[f]);
            let (jast, w) = juniper_cfg::parse(&d.render());
            assert!(w.is_empty(), "{f:?}: {w:?}");
            let (translated, _) = config_ir::from_juniper(&jast);
            let findings = campion_lite::compare(&original, &translated);
            assert!(!findings.is_empty(), "{f:?} must be detected");
        }
    }

    #[test]
    fn fix_and_reintroduce() {
        let mut d = draft(&[FaultKind::WrongMed]);
        assert!(d.fix(FaultKind::WrongMed));
        assert!(!d.fix(FaultKind::WrongMed), "already fixed");
        assert!(d.active.is_empty());
        d.introduce(FaultKind::WrongMed);
        assert!(d.active.contains(&FaultKind::WrongMed));
        assert!(d.seen.contains(&FaultKind::WrongMed));
    }

    #[test]
    fn ge24_dropped_changes_length_range_only() {
        let clean = draft(&[]).render();
        let faulty = draft(&[FaultKind::Ge24Dropped]).render();
        assert_ne!(clean, faulty);
        // The faulty draft still parses cleanly — it's a semantic bug.
        let (_, w) = juniper_cfg::parse(&faulty);
        assert!(w.is_empty(), "{w:?}");
    }
}

//! The fault catalogue: one constructor per error class the paper
//! reports, with injectors and repair behaviour.

use crate::prompts::PromptClass;

/// Every fault class the simulated GPT-4 can exhibit. Translation faults
/// reproduce Table 2; synthesis faults reproduce Section 4.2 / Table 3.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum FaultKind {
    // ---- Translation (Table 2) ----
    /// Missing BGP local-as attribute (syntax error via parse warning).
    MissingLocalAs,
    /// Invalid syntax for prefix lists (`1.2.3.0/24-32`).
    BadPrefixListSyntax,
    /// Missing/extra BGP route policy on a neighbor.
    MissingExportPolicy,
    /// Different OSPF link cost.
    OspfCostWrong,
    /// Different OSPF passive-interface setting.
    OspfPassiveDropped,
    /// Setting wrong BGP MED value.
    WrongMed,
    /// Different prefix lengths match in BGP (the dropped `ge 24`).
    Ge24Dropped,
    /// Different redistribution into BGP.
    RedistributionDropped,
    // ---- Synthesis (Section 4.2 / Table 3) ----
    /// CLI/EXEC lines in the config file (IIP-preventable).
    CliPromptLines,
    /// Misplaced config keywords like `ip routing` (IIP-preventable).
    WrongKeywordLines,
    /// `match community 100:1` literal instead of a community list
    /// (IIP-preventable).
    MatchCommunityLiteral,
    /// `set community` without `additive` (IIP-preventable).
    MissingAdditive,
    /// `neighbor ... route-map ...` outside the `router bgp` block
    /// (needs a human prompt; Batfish's warning is "not informative
    /// enough").
    MisplacedNeighborCmd,
    /// AND semantics in the egress community filter (needs a human
    /// prompt; the counterexample alone fails).
    AndSemanticsFilter,
    /// Topology: wrong interface IP.
    WrongIfaceAddress,
    /// Topology: wrong local AS.
    WrongLocalAs,
    /// Topology: wrong router id.
    WrongRouterId,
    /// Topology: a required neighbor not declared.
    MissingNeighbor,
    /// Topology: a required network not announced.
    MissingNetwork,
    /// Topology: an extra network that is not directly connected.
    ExtraNetwork,
    /// Topology: an extra neighbor that does not exist.
    ExtraNeighbor,
}

impl FaultKind {
    /// All translation faults, in Table 2 order.
    pub const TRANSLATION: [FaultKind; 8] = [
        FaultKind::MissingLocalAs,
        FaultKind::BadPrefixListSyntax,
        FaultKind::MissingExportPolicy,
        FaultKind::OspfCostWrong,
        FaultKind::OspfPassiveDropped,
        FaultKind::WrongMed,
        FaultKind::Ge24Dropped,
        FaultKind::RedistributionDropped,
    ];

    /// All synthesis faults.
    pub const SYNTHESIS: [FaultKind; 13] = [
        FaultKind::CliPromptLines,
        FaultKind::WrongKeywordLines,
        FaultKind::MatchCommunityLiteral,
        FaultKind::MissingAdditive,
        FaultKind::MisplacedNeighborCmd,
        FaultKind::AndSemanticsFilter,
        FaultKind::WrongIfaceAddress,
        FaultKind::WrongLocalAs,
        FaultKind::WrongRouterId,
        FaultKind::MissingNeighbor,
        FaultKind::MissingNetwork,
        FaultKind::ExtraNetwork,
        FaultKind::ExtraNeighbor,
    ];

    /// Whether the IIP database suppresses this fault when loaded
    /// (Section 4.2's four preventable classes).
    pub fn iip_preventable(self) -> bool {
        matches!(
            self,
            FaultKind::CliPromptLines
                | FaultKind::WrongKeywordLines
                | FaultKind::MatchCommunityLiteral
                | FaultKind::MissingAdditive
        )
    }

    /// The fault's repair behaviour.
    pub fn repair(self) -> RepairBehavior {
        match self {
            // Table 2 "Fixed: Yes" rows.
            FaultKind::MissingLocalAs
            | FaultKind::BadPrefixListSyntax
            | FaultKind::MissingExportPolicy
            | FaultKind::OspfCostWrong
            | FaultKind::OspfPassiveDropped
            | FaultKind::WrongMed => RepairBehavior::AutoFixable,
            // Table 2 "Fixed: No" rows — and §3.2's note that the ge-24
            // human fix takes a detour through invalid syntax.
            FaultKind::Ge24Dropped => RepairBehavior::NeedsHumanWithSyntaxDetour,
            FaultKind::RedistributionDropped => RepairBehavior::NeedsHuman,
            // IIP-preventable classes are auto-fixable when they do occur.
            FaultKind::CliPromptLines
            | FaultKind::WrongKeywordLines
            | FaultKind::MatchCommunityLiteral
            | FaultKind::MissingAdditive => RepairBehavior::AutoFixable,
            // The two egregious synthesis cases.
            FaultKind::MisplacedNeighborCmd => RepairBehavior::NeedsHuman,
            FaultKind::AndSemanticsFilter => RepairBehavior::NeedsHuman,
            // Topology errors fix on the verifier's prompt.
            FaultKind::WrongIfaceAddress
            | FaultKind::WrongLocalAs
            | FaultKind::WrongRouterId
            | FaultKind::MissingNeighbor
            | FaultKind::MissingNetwork
            | FaultKind::ExtraNetwork
            | FaultKind::ExtraNeighbor => RepairBehavior::AutoFixable,
        }
    }

    /// Which prompt classes address this fault. The simulated model
    /// repairs a fault when it receives a matching prompt (and the repair
    /// behaviour allows it).
    pub fn addressed_by(self, class: &PromptClass) -> bool {
        match self {
            FaultKind::MissingLocalAs => matches!(class, PromptClass::SyntaxError { .. }),
            FaultKind::BadPrefixListSyntax => {
                matches!(
                    class,
                    PromptClass::SyntaxError { quoted } if quoted.contains("-32") || quoted.is_empty()
                ) || matches!(class, PromptClass::HumanPrefixLength)
            }
            FaultKind::MissingExportPolicy => {
                matches!(class, PromptClass::StructuralMissingPolicy)
            }
            FaultKind::OspfCostWrong => matches!(class, PromptClass::AttributeOspfCost),
            FaultKind::OspfPassiveDropped => matches!(class, PromptClass::AttributeOspfPassive),
            FaultKind::WrongMed => matches!(class, PromptClass::PolicyMed),
            FaultKind::Ge24Dropped => matches!(
                class,
                PromptClass::PolicyPrefixLength
                    | PromptClass::PolicyCommunity
                    | PromptClass::HumanPrefixLength
            ),
            FaultKind::RedistributionDropped => matches!(
                class,
                PromptClass::PolicyRedistribution | PromptClass::HumanFromBgp
            ),
            FaultKind::CliPromptLines | FaultKind::WrongKeywordLines => {
                matches!(class, PromptClass::SyntaxError { .. })
            }
            FaultKind::MatchCommunityLiteral => {
                matches!(class, PromptClass::SyntaxError { .. })
            }
            FaultKind::MissingAdditive => matches!(class, PromptClass::PolicyCommunity),
            FaultKind::MisplacedNeighborCmd => matches!(
                class,
                PromptClass::SyntaxError { .. } | PromptClass::HumanNeighborPlacement
            ),
            FaultKind::AndSemanticsFilter => matches!(
                class,
                PromptClass::PolicyCommunity | PromptClass::HumanSeparateStanzas
            ),
            FaultKind::WrongIfaceAddress
            | FaultKind::WrongLocalAs
            | FaultKind::WrongRouterId
            | FaultKind::MissingNeighbor
            | FaultKind::MissingNetwork
            | FaultKind::ExtraNetwork
            | FaultKind::ExtraNeighbor => matches!(class, PromptClass::TopologyError),
        }
    }

    /// Which prompt classes are *human* escalations for this fault.
    pub fn human_class(self, class: &PromptClass) -> bool {
        matches!(
            (self, class),
            (FaultKind::Ge24Dropped, PromptClass::HumanPrefixLength)
                | (FaultKind::RedistributionDropped, PromptClass::HumanFromBgp)
                | (
                    FaultKind::MisplacedNeighborCmd,
                    PromptClass::HumanNeighborPlacement
                )
                | (
                    FaultKind::AndSemanticsFilter,
                    PromptClass::HumanSeparateStanzas
                )
        )
    }

    /// Table 2's error-type column for reporting.
    pub fn error_type(self) -> &'static str {
        match self {
            FaultKind::MissingLocalAs | FaultKind::BadPrefixListSyntax => "Syntax error",
            FaultKind::MissingExportPolicy => "Structure mismatch",
            FaultKind::OspfCostWrong | FaultKind::OspfPassiveDropped => "Attribute error",
            FaultKind::WrongMed | FaultKind::Ge24Dropped | FaultKind::RedistributionDropped => {
                "Policy error"
            }
            FaultKind::CliPromptLines
            | FaultKind::WrongKeywordLines
            | FaultKind::MatchCommunityLiteral
            | FaultKind::MisplacedNeighborCmd => "Syntax error",
            FaultKind::MissingAdditive | FaultKind::AndSemanticsFilter => "Semantic error",
            FaultKind::WrongIfaceAddress
            | FaultKind::WrongLocalAs
            | FaultKind::WrongRouterId
            | FaultKind::MissingNeighbor
            | FaultKind::MissingNetwork
            | FaultKind::ExtraNetwork
            | FaultKind::ExtraNeighbor => "Topology error",
        }
    }

    /// Table 2's error-description column.
    pub fn description(self) -> &'static str {
        match self {
            FaultKind::MissingLocalAs => "Missing BGP local-as attribute",
            FaultKind::BadPrefixListSyntax => "Invalid syntax for prefix lists",
            FaultKind::MissingExportPolicy => "Missing/extra BGP route policy",
            FaultKind::OspfCostWrong => "Different OSPF link cost",
            FaultKind::OspfPassiveDropped => "Different OSPF passive interface setting",
            FaultKind::WrongMed => "Setting wrong BGP MED value",
            FaultKind::Ge24Dropped => "Different prefix lengths match in BGP",
            FaultKind::RedistributionDropped => "Different redistribution into BGP",
            FaultKind::CliPromptLines => "CLI commands in config file",
            FaultKind::WrongKeywordLines => "Misplaced config keywords",
            FaultKind::MatchCommunityLiteral => "Literal community in match",
            FaultKind::MissingAdditive => "set community without additive",
            FaultKind::MisplacedNeighborCmd => "neighbor command outside router bgp",
            FaultKind::AndSemanticsFilter => "AND semantics in community filter",
            FaultKind::WrongIfaceAddress => "Wrong interface IP address",
            FaultKind::WrongLocalAs => "Wrong local AS number",
            FaultKind::WrongRouterId => "Wrong router ID",
            FaultKind::MissingNeighbor => "Neighbor not declared",
            FaultKind::MissingNetwork => "Network not declared",
            FaultKind::ExtraNetwork => "Network not directly connected",
            FaultKind::ExtraNeighbor => "Nonexistent neighbor declared",
        }
    }
}

/// How a fault responds to rectification prompts.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RepairBehavior {
    /// Fixed by the generated (automatic) prompt.
    AutoFixable,
    /// Generated prompts do nothing; a targeted human prompt fixes it.
    NeedsHuman,
    /// Needs a human prompt, and the attempted fix introduces fresh
    /// invalid syntax first (the `ge 24` detour of Section 3.2).
    NeedsHumanWithSyntaxDetour,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table2_rows_have_expected_fixability() {
        // Six auto-fixed, two needing humans — Table 2's Yes/No column.
        let auto: Vec<_> = FaultKind::TRANSLATION
            .iter()
            .filter(|f| f.repair() == RepairBehavior::AutoFixable)
            .collect();
        assert_eq!(auto.len(), 6);
        assert_eq!(
            FaultKind::Ge24Dropped.repair(),
            RepairBehavior::NeedsHumanWithSyntaxDetour
        );
        assert_eq!(
            FaultKind::RedistributionDropped.repair(),
            RepairBehavior::NeedsHuman
        );
    }

    #[test]
    fn iip_covers_the_four_preventable_classes() {
        let preventable: Vec<_> = FaultKind::SYNTHESIS
            .iter()
            .filter(|f| f.iip_preventable())
            .collect();
        assert_eq!(preventable.len(), 4);
        assert!(!FaultKind::AndSemanticsFilter.iip_preventable());
        assert!(!FaultKind::MissingLocalAs.iip_preventable());
    }

    #[test]
    fn prompt_matching_is_selective() {
        let syntax = PromptClass::SyntaxError {
            quoted: "x/24-32".into(),
        };
        assert!(FaultKind::BadPrefixListSyntax.addressed_by(&syntax));
        assert!(!FaultKind::WrongMed.addressed_by(&syntax));
        assert!(FaultKind::WrongMed.addressed_by(&PromptClass::PolicyMed));
        assert!(FaultKind::AndSemanticsFilter.addressed_by(&PromptClass::HumanSeparateStanzas));
        assert!(!FaultKind::AndSemanticsFilter.addressed_by(&PromptClass::TopologyError));
    }

    #[test]
    fn human_classes_match_the_four_hard_cases() {
        assert!(FaultKind::Ge24Dropped.human_class(&PromptClass::HumanPrefixLength));
        assert!(FaultKind::RedistributionDropped.human_class(&PromptClass::HumanFromBgp));
        assert!(FaultKind::MisplacedNeighborCmd.human_class(&PromptClass::HumanNeighborPlacement));
        assert!(FaultKind::AndSemanticsFilter.human_class(&PromptClass::HumanSeparateStanzas));
        assert!(!FaultKind::WrongMed.human_class(&PromptClass::PolicyMed));
    }

    #[test]
    fn descriptions_match_table2_text() {
        assert_eq!(
            FaultKind::Ge24Dropped.description(),
            "Different prefix lengths match in BGP"
        );
        assert_eq!(FaultKind::Ge24Dropped.error_type(), "Policy error");
        assert_eq!(FaultKind::MissingLocalAs.error_type(), "Syntax error");
        assert_eq!(
            FaultKind::MissingExportPolicy.error_type(),
            "Structure mismatch"
        );
    }
}

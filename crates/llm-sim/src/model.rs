//! The language-model trait and a scripted stand-in for tests.

/// Message author role, chat-API style.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Role {
    /// System / initial instruction prompt.
    System,
    /// The orchestrator or human.
    User,
    /// The model.
    Assistant,
}

/// One chat message.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Message {
    /// Author role.
    pub role: Role,
    /// Message text.
    pub content: String,
}

impl Message {
    /// A system message.
    pub fn system(content: impl Into<String>) -> Self {
        Message {
            role: Role::System,
            content: content.into(),
        }
    }

    /// A user message.
    pub fn user(content: impl Into<String>) -> Self {
        Message {
            role: Role::User,
            content: content.into(),
        }
    }

    /// An assistant message.
    pub fn assistant(content: impl Into<String>) -> Self {
        Message {
            role: Role::Assistant,
            content: content.into(),
        }
    }
}

/// A typed transport-level failure from [`LanguageModel::try_complete`]:
/// the request produced no usable completion. Distinct from a *content*
/// error (a wrong config is still a completion) — transport failures are
/// what the session retry/backoff layer retries.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TransportError {
    /// The request timed out; the backend never saw it.
    Timeout,
    /// The response was cut off in flight (e.g. an unterminated fence).
    TruncatedResponse,
    /// The payload arrived but was garbled beyond use.
    MalformedPayload,
}

impl TransportError {
    /// Stable kebab-case code for logs and JSON events.
    pub fn code(&self) -> &'static str {
        match self {
            TransportError::Timeout => "timeout",
            TransportError::TruncatedResponse => "truncated-response",
            TransportError::MalformedPayload => "malformed-payload",
        }
    }
}

impl std::fmt::Display for TransportError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.code())
    }
}

/// A chat-completion language model. COSYNTH drives everything through
/// this trait; `SimulatedGpt4` implements it here, and a real API client
/// could implement it elsewhere.
pub trait LanguageModel {
    /// Produces the assistant's next message for a transcript.
    fn complete(&mut self, transcript: &[Message]) -> String;

    /// [`LanguageModel::complete`] over a fallible transport: returns a
    /// typed [`TransportError`] when no usable completion arrives. The
    /// default implementation models a perfect transport, so every
    /// existing backend (and every test double) keeps its behaviour;
    /// `SimulatedGpt4` overrides this to roll its
    /// [`crate::error_model::TransportModel`] knobs.
    fn try_complete(&mut self, transcript: &[Message]) -> Result<String, TransportError> {
        Ok(self.complete(transcript))
    }

    /// [`LanguageModel::try_complete`] with the attempt timed into
    /// `trace` as one [`telemetry::Stage::Backend`] span. Retrying
    /// callers record one span per attempt, so the trace's backend
    /// *count* is the attempt count (completions + transport failures)
    /// while the session's prompt log only grows on success — the gap
    /// between the two is the retry traffic. Timing is recorded after
    /// the call returns and never inspected by the backend, so traced
    /// and untraced runs produce byte-identical completions.
    fn try_complete_traced(
        &mut self,
        transcript: &[Message],
        trace: &mut telemetry::SessionTrace,
    ) -> Result<String, TransportError> {
        trace.time(telemetry::Stage::Backend, || self.try_complete(transcript))
    }

    /// [`LanguageModel::complete`] with the call timed into `trace` as
    /// one backend span (the infallible escalation path).
    fn complete_traced(
        &mut self,
        transcript: &[Message],
        trace: &mut telemetry::SessionTrace,
    ) -> String {
        trace.time(telemetry::Stage::Backend, || self.complete(transcript))
    }

    /// Model name for reports.
    fn name(&self) -> &str {
        "llm"
    }

    /// The backend's cumulative cost ledger
    /// ([`crate::backend::CostLedger`]). The default is a cost-free
    /// model — an always-empty ledger — so test doubles and thin
    /// wrappers keep compiling; self-accounting backends
    /// (`SimulatedGpt4`, `CascadeRouter`) override it.
    fn cost(&self) -> crate::backend::CostLedger {
        crate::backend::CostLedger::new()
    }
}

/// Extracts the last ``` fenced block from a message, if any — the
/// convention COSYNTH uses to pass configs in prompts and the simulated
/// model uses to return them.
pub fn last_fenced_block(text: &str) -> Option<String> {
    let mut blocks = Vec::new();
    let mut current: Option<String> = None;
    for line in text.lines() {
        if line.trim_start().starts_with("```") {
            match current.take() {
                Some(block) => blocks.push(block),
                None => current = Some(String::new()),
            }
        } else if let Some(b) = current.as_mut() {
            b.push_str(line);
            b.push('\n');
        }
    }
    blocks.pop()
}

/// Wraps a config in a fenced block.
pub fn fence(config: &str) -> String {
    format!("```\n{}```\n", ensure_trailing_newline(config))
}

fn ensure_trailing_newline(s: &str) -> String {
    if s.ends_with('\n') {
        s.to_string()
    } else {
        format!("{s}\n")
    }
}

/// A deterministic scripted model for unit tests: pops canned responses.
pub struct ScriptedLlm {
    responses: std::collections::VecDeque<String>,
}

impl ScriptedLlm {
    /// Builds from responses served in order; repeats the last one when
    /// exhausted.
    pub fn new<I: IntoIterator<Item = String>>(responses: I) -> Self {
        ScriptedLlm {
            responses: responses.into_iter().collect(),
        }
    }
}

impl LanguageModel for ScriptedLlm {
    fn complete(&mut self, _transcript: &[Message]) -> String {
        if self.responses.len() > 1 {
            self.responses.pop_front().unwrap()
        } else {
            self.responses.front().cloned().unwrap_or_default()
        }
    }

    fn name(&self) -> &str {
        "scripted"
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fenced_block_extraction() {
        let text = "Here is the config:\n```\nhostname r1\n```\nDone.";
        assert_eq!(last_fenced_block(text).unwrap(), "hostname r1\n");
    }

    #[test]
    fn last_block_wins() {
        let text = "```\nfirst\n```\nand\n```\nsecond\n```";
        assert_eq!(last_fenced_block(text).unwrap(), "second\n");
    }

    #[test]
    fn no_block_is_none() {
        assert_eq!(last_fenced_block("no code here"), None);
    }

    #[test]
    fn fence_roundtrip() {
        let cfg = "hostname r1\nrouter bgp 1";
        let fenced = fence(cfg);
        assert_eq!(
            last_fenced_block(&fenced).unwrap(),
            "hostname r1\nrouter bgp 1\n"
        );
    }

    #[test]
    fn scripted_llm_pops_then_repeats() {
        let mut m = ScriptedLlm::new(vec!["a".to_string(), "b".to_string()]);
        assert_eq!(m.complete(&[]), "a");
        assert_eq!(m.complete(&[]), "b");
        assert_eq!(m.complete(&[]), "b");
    }

    #[test]
    fn traced_calls_match_untraced_content_and_record_backend_spans() {
        use telemetry::{SessionTrace, Stage};
        let transcript = [Message::user("go")];
        let mut plain = ScriptedLlm::new(vec!["a".to_string(), "b".to_string()]);
        let mut traced = ScriptedLlm::new(vec!["a".to_string(), "b".to_string()]);
        let mut trace = SessionTrace::new();
        assert_eq!(
            traced.try_complete_traced(&transcript, &mut trace).unwrap(),
            plain.try_complete(&transcript).unwrap()
        );
        assert_eq!(
            traced.complete_traced(&transcript, &mut trace),
            plain.complete(&transcript)
        );
        assert_eq!(trace.get(Stage::Backend).count, 2, "one span per call");
    }

    #[test]
    fn message_constructors() {
        assert_eq!(Message::system("x").role, Role::System);
        assert_eq!(Message::user("x").role, Role::User);
        assert_eq!(Message::assistant("x").role, Role::Assistant);
    }
}

//! The error model: which faults appear and how repairs regress.

use crate::faults::FaultKind;
use std::collections::BTreeMap;

/// Transport-level failure rates for the simulated chat API: the layer
/// *under* the content error model. Content faults (the Table 2/3
/// catalogue) are things the model says wrongly; transport faults are
/// completions the client never usably receives — the request times
/// out, the response is cut off mid-fence, or the payload arrives
/// garbled. All three surface as a typed
/// [`crate::model::TransportError`] from
/// [`crate::model::LanguageModel::try_complete`], which is what the
/// session retry/backoff layer keys on.
///
/// Every stock [`ErrorModel`] constructor leaves these at zero, so the
/// content streams of all committed benches are byte-identical to the
/// pre-transport model; only callers that opt in (the chaos harness's
/// flaky-backend directive) consume draws from the transport stream.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct TransportModel {
    /// Probability a request times out (no server-side state advances —
    /// the request never arrived).
    pub p_timeout: f64,
    /// Probability the completion is truncated in flight (the server
    /// answered and its state advanced, but the client can't use it).
    pub p_truncated: f64,
    /// Probability the payload is garbled in flight (same server-side
    /// semantics as truncation; a different client-side detection path).
    pub p_malformed: f64,
}

impl TransportModel {
    /// Whether any transport fault can fire. When false the transport
    /// RNG stream is never consumed — the zero-knob guarantee above.
    pub fn any(&self) -> bool {
        self.p_timeout > 0.0 || self.p_truncated > 0.0 || self.p_malformed > 0.0
    }

    /// The chaos harness's flaky-backend profile: faults are common
    /// enough to force retries in nearly every session, rare enough
    /// that a bounded retry budget still converges.
    pub fn flaky() -> Self {
        TransportModel {
            p_timeout: 0.25,
            p_truncated: 0.15,
            p_malformed: 0.10,
        }
    }
}

/// Probabilistic model of the simulated GPT-4's error behaviour.
///
/// Calibration targets (see EXPERIMENTS.md): with `paper_default`, the
/// translation session exhibits all eight Table 2 error types and lands
/// in the paper's leverage band (≈10×), and the 7-router synthesis lands
/// near 6× with exactly the two human escalations the paper describes.
#[derive(Debug, Clone)]
pub struct ErrorModel {
    /// Probability each fault class appears in a first draft.
    pub p_fault: BTreeMap<FaultKind, f64>,
    /// After a successful repair, probability of introducing one new
    /// not-yet-seen fault ("fix one error, introduce new errors").
    pub p_regress_new: f64,
    /// After a successful repair, probability of *reintroducing* a
    /// previously fixed fault.
    pub p_reintroduce: f64,
    /// Whether the model heeds the IIP database (suppresses preventable
    /// classes).
    pub respect_iip: bool,
    /// Repair sessions: probability an attempted fix lands on the wrong
    /// line (a cosmetic edit elsewhere; the fault stays in place).
    pub p_repair_wrong_line: f64,
    /// Repair sessions: probability a successful fix introduces one
    /// fresh auto-fixable fault as a regression.
    pub p_repair_regress: f64,
    /// Transport-level failure rates (zero in every stock constructor;
    /// see [`TransportModel`]).
    pub transport: TransportModel,
}

impl ErrorModel {
    /// The calibration used for the headline experiments: every Table 2
    /// fault appears deterministically in the translation draft; the
    /// paper's two egregious synthesis cases appear deterministically on
    /// the hub; topology faults appear with moderate probability; repairs
    /// regress at the rates that land leverage in the paper's band.
    pub fn paper_default() -> Self {
        let mut p_fault = BTreeMap::new();
        for f in FaultKind::TRANSLATION {
            p_fault.insert(f, 1.0);
        }
        // Synthesis: preventable classes are likely without IIPs; the two
        // human cases are certain (they are the paper's findings); the
        // topology classes appear at moderate rates.
        p_fault.insert(FaultKind::CliPromptLines, 0.8);
        p_fault.insert(FaultKind::WrongKeywordLines, 0.6);
        p_fault.insert(FaultKind::MatchCommunityLiteral, 0.7);
        p_fault.insert(FaultKind::MissingAdditive, 0.7);
        p_fault.insert(FaultKind::MisplacedNeighborCmd, 1.0);
        p_fault.insert(FaultKind::AndSemanticsFilter, 1.0);
        p_fault.insert(FaultKind::WrongIfaceAddress, 0.15);
        p_fault.insert(FaultKind::WrongLocalAs, 0.1);
        p_fault.insert(FaultKind::WrongRouterId, 0.15);
        p_fault.insert(FaultKind::MissingNeighbor, 0.15);
        p_fault.insert(FaultKind::MissingNetwork, 0.2);
        p_fault.insert(FaultKind::ExtraNetwork, 0.1);
        p_fault.insert(FaultKind::ExtraNeighbor, 0.08);
        ErrorModel {
            p_fault,
            p_regress_new: 0.3,
            p_reintroduce: 0.18,
            respect_iip: true,
            p_repair_wrong_line: 0.25,
            p_repair_regress: 0.2,
            transport: TransportModel::default(),
        }
    }

    /// A flawless model (ablation baseline: "a future GPT-6" — leverage
    /// collapses because nothing needs correcting).
    pub fn flawless() -> Self {
        ErrorModel {
            p_fault: BTreeMap::new(),
            p_regress_new: 0.0,
            p_reintroduce: 0.0,
            respect_iip: true,
            p_repair_wrong_line: 0.0,
            p_repair_regress: 0.0,
            transport: TransportModel::default(),
        }
    }

    /// The `sim-cheap` backend tier: a noisier model. Topology-fault
    /// draft rates are bumped and the repair pathologies (wrong-line
    /// fixes, regressions, reintroductions) are markedly more common, so
    /// sessions need more verify rounds — the tier the cascade router
    /// tries first because its calls are nearly free.
    pub fn sim_cheap() -> Self {
        let mut m = Self::paper_default();
        m.p_regress_new = 0.45;
        m.p_reintroduce = 0.3;
        m.p_repair_wrong_line = 0.45;
        m.p_repair_regress = 0.35;
        m.p_fault.insert(FaultKind::WrongIfaceAddress, 0.25);
        m.p_fault.insert(FaultKind::WrongLocalAs, 0.18);
        m.p_fault.insert(FaultKind::WrongRouterId, 0.25);
        m.p_fault.insert(FaultKind::MissingNeighbor, 0.25);
        m.p_fault.insert(FaultKind::MissingNetwork, 0.3);
        m.p_fault.insert(FaultKind::ExtraNetwork, 0.18);
        m.p_fault.insert(FaultKind::ExtraNeighbor, 0.15);
        m
    }

    /// The `sim-std` backend tier: the paper calibration at a
    /// mid-market price point. Identical error behaviour to
    /// [`ErrorModel::paper_default`]; only the tier's unit cost differs.
    pub fn sim_std() -> Self {
        Self::paper_default()
    }

    /// The `sim-premium` backend tier: a more accurate model. Topology
    /// draft-fault rates are halved and the repair pathologies tamed;
    /// the paper's two hard cases stay certain (they are findings about
    /// the task, not the tier).
    pub fn sim_premium() -> Self {
        let mut m = Self::paper_default();
        m.p_regress_new = 0.1;
        m.p_reintroduce = 0.05;
        m.p_repair_wrong_line = 0.1;
        m.p_repair_regress = 0.05;
        m.p_fault.insert(FaultKind::WrongIfaceAddress, 0.075);
        m.p_fault.insert(FaultKind::WrongLocalAs, 0.05);
        m.p_fault.insert(FaultKind::WrongRouterId, 0.075);
        m.p_fault.insert(FaultKind::MissingNeighbor, 0.075);
        m.p_fault.insert(FaultKind::MissingNetwork, 0.1);
        m.p_fault.insert(FaultKind::ExtraNetwork, 0.05);
        m.p_fault.insert(FaultKind::ExtraNeighbor, 0.04);
        m
    }

    /// `paper_default` with the IIP database ignored (the IIP ablation).
    pub fn without_iip() -> Self {
        ErrorModel {
            respect_iip: false,
            ..Self::paper_default()
        }
    }

    /// A deterministic single-fault model for unit tests.
    pub fn only(fault: FaultKind) -> Self {
        let mut p_fault = BTreeMap::new();
        p_fault.insert(fault, 1.0);
        ErrorModel {
            p_fault,
            p_regress_new: 0.0,
            p_reintroduce: 0.0,
            respect_iip: true,
            p_repair_wrong_line: 0.0,
            p_repair_regress: 0.0,
            transport: TransportModel::default(),
        }
    }

    /// Appearance probability for a fault (0 when unlisted).
    pub fn probability(&self, f: FaultKind) -> f64 {
        let base = self.p_fault.get(&f).copied().unwrap_or(0.0);
        if self.respect_iip && f.iip_preventable() {
            0.0
        } else {
            base
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_default_has_all_translation_faults_certain() {
        let m = ErrorModel::paper_default();
        for f in FaultKind::TRANSLATION {
            assert_eq!(m.probability(f), 1.0, "{f:?}");
        }
    }

    #[test]
    fn iip_suppresses_preventable_classes() {
        let m = ErrorModel::paper_default();
        assert_eq!(m.probability(FaultKind::CliPromptLines), 0.0);
        assert_eq!(m.probability(FaultKind::MissingAdditive), 0.0);
        let m = ErrorModel::without_iip();
        assert!(m.probability(FaultKind::CliPromptLines) > 0.0);
        assert!(m.probability(FaultKind::MissingAdditive) > 0.0);
    }

    #[test]
    fn iip_does_not_suppress_hard_cases() {
        let m = ErrorModel::paper_default();
        assert_eq!(m.probability(FaultKind::AndSemanticsFilter), 1.0);
        assert_eq!(m.probability(FaultKind::MisplacedNeighborCmd), 1.0);
    }

    #[test]
    fn flawless_has_no_faults() {
        let m = ErrorModel::flawless();
        for f in FaultKind::TRANSLATION.iter().chain(&FaultKind::SYNTHESIS) {
            assert_eq!(m.probability(*f), 0.0);
        }
    }

    #[test]
    fn only_isolates_one_fault() {
        let m = ErrorModel::only(FaultKind::WrongMed);
        assert_eq!(m.probability(FaultKind::WrongMed), 1.0);
        assert_eq!(m.probability(FaultKind::OspfCostWrong), 0.0);
    }
}

//! The synthesis task: parsing the Modularizer's prompt back into a
//! router spec + local policies, building the reference config, and
//! injecting synthesis faults.

use crate::faults::FaultKind;
use crate::prompts;
use config_ir::{
    Condition, Device, IrBgp, IrClause, IrCommunitySet, IrInterface, IrNeighbor, IrPolicy, Modifier,
};
use net_model::{Asn, Community, InterfaceAddress, Prefix};
use std::collections::BTreeSet;
use std::net::Ipv4Addr;

/// What the simulated model understood from a synthesis prompt — the
/// router's connectivity facts plus local policies.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct UnderstoodRouter {
    /// Router name.
    pub name: String,
    /// Local AS.
    pub asn: Option<Asn>,
    /// Router id.
    pub router_id: Option<Ipv4Addr>,
    /// Interfaces: `(name, address)`.
    pub interfaces: Vec<(String, InterfaceAddress)>,
    /// Neighbors: `(addr, asn)`.
    pub neighbors: Vec<(Ipv4Addr, Asn)>,
    /// Networks to announce.
    pub networks: Vec<Prefix>,
    /// Ingress tagging policies: `(neighbor, community, map name)`.
    pub ingress_tags: Vec<(Ipv4Addr, Community, String)>,
    /// Ingress local-preference policies: `(neighbor, value, map name)`.
    pub ingress_prefs: Vec<(Ipv4Addr, u32, String)>,
    /// Egress filter policies: `(neighbor, communities, map name)`.
    pub egress_filters: Vec<(Ipv4Addr, Vec<Community>, String)>,
}

/// Parses a synthesis prompt (the Modularizer's `describe_router` output
/// plus policy sentences) into the understood facts.
pub fn understand_prompt(prompt: &str) -> UnderstoodRouter {
    let mut u = UnderstoodRouter::default();
    for line in prompt.lines() {
        let line = line.trim();
        if let Some(rest) = line.strip_prefix("Router ") {
            // "Router R2 has AS number 2 and BGP router-id 1.0.0.2."
            if let Some((name, tail)) = rest.split_once(" has AS number ") {
                u.name = name.trim().to_string();
                let mut parts = tail.split(" and BGP router-id ");
                if let Some(asn) = parts.next().and_then(|x| x.trim().parse::<u32>().ok()) {
                    u.asn = Some(Asn(asn));
                }
                if let Some(id) = parts
                    .next()
                    .and_then(|x| x.trim_end_matches('.').trim().parse::<Ipv4Addr>().ok())
                {
                    u.router_id = Some(id);
                }
            }
        } else if let Some(rest) = line.strip_prefix("Interface ") {
            // "Interface Ethernet0/0 has IP address 2.0.0.2 (mask
            // 255.255.255.0) and connects to R1."
            if let Some((name, tail)) = rest.split_once(" has IP address ") {
                let addr = tail.split_whitespace().next().unwrap_or_default();
                let mask = tail
                    .split("(mask ")
                    .nth(1)
                    .and_then(|x| x.split(')').next())
                    .unwrap_or_default();
                if let Ok(a) = InterfaceAddress::parse(&format!("{addr} {mask}")) {
                    u.interfaces.push((name.trim().to_string(), a));
                }
            }
        } else if let Some(rest) = line.strip_prefix("It has an eBGP neighbor ") {
            // "It has an eBGP neighbor 2.0.0.1 with AS number 1 (R1)."
            if let Some((addr, tail)) = rest.split_once(" with AS number ") {
                let asn = tail
                    .split_whitespace()
                    .next()
                    .and_then(|x| x.parse::<u32>().ok());
                if let (Ok(a), Some(n)) = (addr.trim().parse::<Ipv4Addr>(), asn) {
                    u.neighbors.push((a, Asn(n)));
                }
            }
        } else if let Some(rest) =
            line.strip_prefix("It must announce the following networks in BGP: ")
        {
            for tok in rest.trim_end_matches('.').split(',') {
                if let Ok(p) = tok.trim().parse::<Prefix>() {
                    u.networks.push(p);
                }
            }
        } else if line.starts_with("At ingress from neighbor ") {
            if let Some(t) = prompts::parse_ingress_tag(line) {
                u.ingress_tags.push(t);
            } else if let Some(p) = prompts::parse_ingress_pref(line) {
                u.ingress_prefs.push(p);
            }
        } else if line.starts_with("At egress to neighbor ") {
            if let Some(t) = prompts::parse_egress_filter(line) {
                u.egress_filters.push(t);
            }
        }
    }
    u
}

/// Builds the *reference* (correct) device for the understood facts: all
/// interfaces and sessions, correct policies with OR-semantics filters
/// and additive tagging.
pub fn reference_device(u: &UnderstoodRouter) -> Device {
    let mut d = Device::named(&u.name);
    for (name, addr) in &u.interfaces {
        let mut i = IrInterface::named(name);
        i.address = Some(*addr);
        d.interfaces.push(i);
    }
    let mut bgp = IrBgp::new(u.asn.unwrap_or(Asn::RESERVED));
    bgp.router_id = u.router_id;
    bgp.networks = u.networks.clone();
    for (addr, asn) in &u.neighbors {
        let mut n = IrNeighbor::new(*addr);
        n.remote_as = Some(*asn);
        n.send_community = true;
        bgp.neighbors.push(n);
    }
    // Ingress tagging: per-neighbor import map adding one community
    // (additively — the correct form).
    for (addr, community, map) in &u.ingress_tags {
        let mut p = IrPolicy::new(map.clone());
        let mut clause = IrClause::permit_all("10");
        clause.modifiers.push(Modifier::SetCommunities {
            communities: BTreeSet::from([*community]),
            additive: true,
        });
        p.clauses.push(clause);
        d.policies.push(p);
        if let Some(n) = bgp.neighbors.iter_mut().find(|n| n.addr == *addr) {
            n.import_policy.push(map.clone());
        }
    }
    // Ingress preference: per-neighbor import map stamping the value.
    for (addr, value, map) in &u.ingress_prefs {
        let mut p = IrPolicy::new(map.clone());
        let mut clause = IrClause::permit_all("10");
        clause.modifiers.push(Modifier::SetLocalPref(*value));
        p.clauses.push(clause);
        d.policies.push(p);
        if let Some(n) = bgp.neighbors.iter_mut().find(|n| n.addr == *addr) {
            n.import_policy.push(map.clone());
        }
    }
    // Egress filters: per-neighbor export map with one community list per
    // community (separate stanzas = OR semantics, the correct form).
    for (addr, communities, map) in &u.egress_filters {
        let mut p = IrPolicy::new(map.clone());
        let mut set_names = Vec::new();
        for c in communities {
            let set_name = format!("cl-{}-{}", c.high, c.low);
            if d.community_set(&set_name).is_none() {
                d.community_sets.push(IrCommunitySet::single(&set_name, *c));
            }
            set_names.push(set_name);
        }
        for (i, set_name) in set_names.iter().enumerate() {
            let mut deny = IrClause::deny_all(((i + 1) * 10).to_string());
            deny.conditions.push(Condition::community_set(set_name));
            p.clauses.push(deny);
        }
        p.clauses.push(IrClause::permit_all(
            ((set_names.len() + 1) * 10).to_string(),
        ));
        d.policies.push(p);
        if let Some(n) = bgp.neighbors.iter_mut().find(|n| n.addr == *addr) {
            n.export_policy.push(map.clone());
        }
    }
    d.bgp = Some(bgp);
    d
}

/// State of one per-router synthesis conversation.
#[derive(Debug, Clone)]
pub struct SynthesisDraft {
    /// What the model understood.
    pub understood: UnderstoodRouter,
    /// Active faults.
    pub active: BTreeSet<FaultKind>,
    /// Ever-active faults.
    pub seen: BTreeSet<FaultKind>,
}

impl SynthesisDraft {
    /// Creates the draft with initial faults.
    pub fn new(prompt: &str, faults: BTreeSet<FaultKind>) -> Self {
        SynthesisDraft {
            understood: understand_prompt(prompt),
            seen: faults.clone(),
            active: faults,
        }
    }

    /// Renders the current Cisco config text.
    pub fn render(&self) -> String {
        let mut device = reference_device(&self.understood);
        for f in &self.active {
            mutate_device(*f, &mut device, &self.understood);
        }
        let (ast, _notes) = config_ir::to_cisco(&device);
        let mut text = cisco_cfg::print(&ast);
        for f in &self.active {
            mutate_text(*f, &mut text, &self.understood);
        }
        text
    }

    /// Marks a fault fixed.
    pub fn fix(&mut self, f: FaultKind) -> bool {
        self.active.remove(&f)
    }

    /// (Re)introduces a fault.
    pub fn introduce(&mut self, f: FaultKind) {
        self.active.insert(f);
        self.seen.insert(f);
    }
}

/// IR-level synthesis fault mutations.
fn mutate_device(f: FaultKind, d: &mut Device, u: &UnderstoodRouter) {
    match f {
        FaultKind::MissingAdditive => {
            for p in &mut d.policies {
                for c in &mut p.clauses {
                    for m in &mut c.modifiers {
                        if let Modifier::SetCommunities { additive, .. } = m {
                            *additive = false;
                        }
                    }
                }
            }
        }
        FaultKind::AndSemanticsFilter => {
            // Collapse each egress filter's separate deny stanzas into one
            // stanza with multiple match conditions (AND).
            for (_, communities, map) in &u.egress_filters {
                let Some(p) = d.policies.iter_mut().find(|p| &p.name == map) else {
                    continue;
                };
                let set_names: Vec<String> = communities
                    .iter()
                    .map(|c| format!("cl-{}-{}", c.high, c.low))
                    .collect();
                let mut deny = IrClause::deny_all("10");
                for s in &set_names {
                    deny.conditions.push(Condition::community_set(s));
                }
                p.clauses = vec![deny, IrClause::permit_all("20")];
            }
        }
        FaultKind::WrongIfaceAddress => {
            if let Some(i) = d.interfaces.first_mut() {
                if let Some(a) = i.address.as_mut() {
                    // Swap the host part .1 <-> .2 (the Table 3 example:
                    // expected 2.0.0.1, found 2.0.0.2).
                    let old = u32::from(a.addr);
                    let flipped = if old & 1 == 1 { old + 1 } else { old - 1 };
                    a.addr = Ipv4Addr::from(flipped);
                }
            }
        }
        FaultKind::WrongLocalAs => {
            if let Some(b) = d.bgp.as_mut() {
                b.asn = Asn(b.asn.0 + 2);
            }
        }
        FaultKind::WrongRouterId => {
            if let Some(b) = d.bgp.as_mut() {
                if let Some(id) = b.router_id.as_mut() {
                    let v = u32::from(*id);
                    *id = Ipv4Addr::from(v ^ 3);
                }
            }
        }
        FaultKind::MissingNeighbor => {
            if let Some(b) = d.bgp.as_mut() {
                b.neighbors.pop();
            }
        }
        FaultKind::MissingNetwork => {
            if let Some(b) = d.bgp.as_mut() {
                b.networks.pop();
            }
        }
        FaultKind::ExtraNetwork => {
            // TEST-NET-2: guaranteed outside every generated topology, so
            // the phantom network never collides with a real one.
            if let Some(b) = d.bgp.as_mut() {
                b.networks.push("198.51.100.0/24".parse().unwrap());
            }
        }
        FaultKind::ExtraNeighbor => {
            // TEST-NET-3: a phantom peer that cannot collide with a real
            // neighbor (a collision would silently overwrite the real
            // neighbor's policy attachments — invisible to local checks).
            if let Some(b) = d.bgp.as_mut() {
                let mut n = IrNeighbor::new("203.0.113.2".parse().unwrap());
                n.remote_as = Some(Asn(65099));
                b.neighbors.push(n);
            }
        }
        _ => {}
    }
}

/// Text-level synthesis fault mutations.
fn mutate_text(f: FaultKind, text: &mut String, u: &UnderstoodRouter) {
    match f {
        FaultKind::CliPromptLines => {
            *text = format!("configure terminal\n{text}end\nwrite\n");
        }
        FaultKind::WrongKeywordLines => {
            // `ip routing` jammed in after the hostname.
            let mut lines: Vec<String> = text.lines().map(str::to_string).collect();
            let at = lines
                .iter()
                .position(|l| l.starts_with("hostname"))
                .map(|i| i + 1)
                .unwrap_or(0);
            lines.insert(at, "ip routing".to_string());
            *text = lines.join("\n");
            text.push('\n');
        }
        FaultKind::MatchCommunityLiteral => {
            // Replace the first `match community <list>` with the literal
            // value (Section 4.2's exact mistake).
            let literal = u
                .egress_filters
                .first()
                .and_then(|(_, cs, _)| cs.first())
                .or_else(|| {
                    // fall back to the ingress tag community
                    u.ingress_tags.first().map(|(_, c, _)| c)
                })
                .map(|c| c.to_string())
                .unwrap_or_else(|| "100:1".to_string());
            let mut lines: Vec<String> = text.lines().map(str::to_string).collect();
            if let Some(i) = lines
                .iter()
                .position(|l| l.trim_start().starts_with("match community "))
            {
                lines[i] = format!(" match community {literal}");
                *text = lines.join("\n");
                text.push('\n');
            }
        }
        FaultKind::MisplacedNeighborCmd => {
            // Move the first neighbor route-map attachment to the end of
            // the file, outside the router bgp block.
            let mut lines: Vec<String> = text.lines().map(str::to_string).collect();
            if let Some(i) = lines.iter().position(|l| {
                let t = l.trim_start();
                t.starts_with("neighbor ") && t.contains(" route-map ")
            }) {
                let line = lines.remove(i);
                lines.push(line.trim_start().to_string());
                *text = lines.join("\n");
                text.push('\n');
            }
        }
        _ => {}
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::prompts::{egress_filter_sentence, ingress_tag_sentence};

    fn sample_prompt() -> String {
        let mut p = String::from(
            "Router R1 has AS number 1 and BGP router-id 1.0.0.1.\n\
             Interface Ethernet0/1 has IP address 2.0.0.1 (mask 255.255.255.0) and connects to R2.\n\
             Interface Ethernet0/2 has IP address 3.0.0.1 (mask 255.255.255.0) and connects to R3.\n\
             It has an eBGP neighbor 2.0.0.2 with AS number 2 (R2).\n\
             It has an eBGP neighbor 3.0.0.2 with AS number 3 (R3).\n\
             It must announce the following networks in BGP: 2.0.0.0/24, 3.0.0.0/24.\n",
        );
        p.push_str(&ingress_tag_sentence(
            "2.0.0.2".parse().unwrap(),
            "100:1".parse().unwrap(),
            "ADD_COMM_R2",
        ));
        p.push('\n');
        p.push_str(&ingress_tag_sentence(
            "3.0.0.2".parse().unwrap(),
            "101:1".parse().unwrap(),
            "ADD_COMM_R3",
        ));
        p.push('\n');
        p.push_str(&egress_filter_sentence(
            "2.0.0.2".parse().unwrap(),
            &["101:1".parse().unwrap()],
            "FILTER_COMM_OUT_R2",
        ));
        p.push('\n');
        p.push_str(&egress_filter_sentence(
            "3.0.0.2".parse().unwrap(),
            &["100:1".parse().unwrap()],
            "FILTER_COMM_OUT_R3",
        ));
        p.push('\n');
        p
    }

    #[test]
    fn understands_the_full_prompt() {
        let u = understand_prompt(&sample_prompt());
        assert_eq!(u.name, "R1");
        assert_eq!(u.asn, Some(Asn(1)));
        assert_eq!(u.router_id.unwrap().to_string(), "1.0.0.1");
        assert_eq!(u.interfaces.len(), 2);
        assert_eq!(u.neighbors.len(), 2);
        assert_eq!(u.networks.len(), 2);
        assert_eq!(u.ingress_tags.len(), 2);
        assert_eq!(u.egress_filters.len(), 2);
    }

    #[test]
    fn pref_sentence_understood_and_rendered() {
        let mut prompt = String::from(
            "Router R9 has AS number 9 and BGP router-id 1.0.0.9.\n\
             Interface Ethernet0/0 has IP address 7.0.0.1 (mask 255.255.255.0) and connects to PROV.\n\
             It has an eBGP neighbor 7.0.0.2 with AS number 70 (PROV).\n\
             It must announce the following networks in BGP: 7.0.0.0/24.\n",
        );
        prompt.push_str(&crate::prompts::ingress_pref_sentence(
            "7.0.0.2".parse().unwrap(),
            50,
            "PREF_PROV",
        ));
        prompt.push('\n');
        let u = understand_prompt(&prompt);
        assert_eq!(u.ingress_prefs.len(), 1);
        assert!(u.ingress_tags.is_empty());
        let d = SynthesisDraft::new(&prompt, BTreeSet::new());
        let text = d.render();
        assert!(text.contains("set local-preference 50"), "{text}");
        assert!(text.contains("route-map PREF_PROV in"), "{text}");
        let parsed = bf_lite::parse_config(&text, None);
        assert!(parsed.is_clean(), "{:?}\n{text}", parsed.warnings);
        let check = bf_lite::LocalPolicyCheck::PermittedRoutesSetLocalPref {
            chain: vec!["PREF_PROV".into()],
            value: 50,
        };
        assert!(bf_lite::check_local_policy(&parsed.device, &check).is_ok());
    }

    #[test]
    fn clean_draft_parses_and_satisfies_local_checks() {
        let d = SynthesisDraft::new(&sample_prompt(), BTreeSet::new());
        let text = d.render();
        let parsed = bf_lite::parse_config(&text, None);
        assert!(parsed.is_clean(), "{:?}\n{text}", parsed.warnings);
        // Ingress check: permitted routes carry 100:1.
        let check = bf_lite::LocalPolicyCheck::PermittedRoutesCarry {
            chain: vec!["ADD_COMM_R2".into()],
            community: "100:1".parse().unwrap(),
        };
        assert!(bf_lite::check_local_policy(&parsed.device, &check).is_ok());
        // Egress check: routes with 101:1 denied toward R2.
        let check = bf_lite::LocalPolicyCheck::RoutesWithCommunityDenied {
            chain: vec!["FILTER_COMM_OUT_R2".into()],
            community: "101:1".parse().unwrap(),
        };
        assert!(bf_lite::check_local_policy(&parsed.device, &check).is_ok());
    }

    #[test]
    fn and_semantics_fault_fails_egress_check() {
        // Use two filtered communities so AND vs OR differs.
        let mut prompt = sample_prompt();
        prompt = prompt.replace(
            &egress_filter_sentence(
                "2.0.0.2".parse().unwrap(),
                &["101:1".parse().unwrap()],
                "FILTER_COMM_OUT_R2",
            ),
            &egress_filter_sentence(
                "2.0.0.2".parse().unwrap(),
                &["101:1".parse().unwrap(), "102:1".parse().unwrap()],
                "FILTER_COMM_OUT_R2",
            ),
        );
        let d = SynthesisDraft::new(&prompt, BTreeSet::from([FaultKind::AndSemanticsFilter]));
        let text = d.render();
        let parsed = bf_lite::parse_config(&text, None);
        assert!(parsed.is_clean(), "{:?}", parsed.warnings);
        let check = bf_lite::LocalPolicyCheck::RoutesWithCommunityDenied {
            chain: vec!["FILTER_COMM_OUT_R2".into()],
            community: "101:1".parse().unwrap(),
        };
        let violation = bf_lite::check_local_policy(&parsed.device, &check).unwrap_err();
        assert!(violation.communities.contains(&"101:1".parse().unwrap()));
    }

    #[test]
    fn missing_additive_fault_fails_preserve_check() {
        let d = SynthesisDraft::new(
            &sample_prompt(),
            BTreeSet::from([FaultKind::MissingAdditive]),
        );
        let parsed = bf_lite::parse_config(&d.render(), None);
        let mut device = parsed.device;
        device
            .community_sets
            .push(IrCommunitySet::single("probe", "999:9".parse().unwrap()));
        let check = bf_lite::LocalPolicyCheck::PermittedRoutesPreserve {
            chain: vec!["ADD_COMM_R2".into()],
            community: "999:9".parse().unwrap(),
        };
        assert!(bf_lite::check_local_policy(&device, &check).is_err());
    }

    #[test]
    fn cli_lines_fault_triggers_cli_warnings() {
        let d = SynthesisDraft::new(
            &sample_prompt(),
            BTreeSet::from([FaultKind::CliPromptLines]),
        );
        let parsed = bf_lite::parse_config(&d.render(), None);
        let cli = parsed
            .warnings
            .iter()
            .filter(|w| w.kind == net_model::WarningKind::CliKeyword)
            .count();
        assert_eq!(cli, 3, "{:?}", parsed.warnings);
    }

    #[test]
    fn match_literal_fault_triggers_warning() {
        let d = SynthesisDraft::new(
            &sample_prompt(),
            BTreeSet::from([FaultKind::MatchCommunityLiteral]),
        );
        let parsed = bf_lite::parse_config(&d.render(), None);
        assert!(parsed
            .warnings
            .iter()
            .any(|w| w.kind == net_model::WarningKind::MatchCommunityLiteral));
    }

    #[test]
    fn misplaced_neighbor_fault_triggers_warning_and_detaches_map() {
        let d = SynthesisDraft::new(
            &sample_prompt(),
            BTreeSet::from([FaultKind::MisplacedNeighborCmd]),
        );
        let text = d.render();
        let parsed = bf_lite::parse_config(&text, None);
        assert!(
            parsed
                .warnings
                .iter()
                .any(|w| w.kind == net_model::WarningKind::MisplacedCommand),
            "{text}"
        );
    }

    #[test]
    fn topology_faults_detected_by_verifier() {
        // Build the star, synthesize R2 from its description, inject each
        // topology fault, and confirm the verifier sees it.
        let (topology, _) = topo_model::star(2);
        let desc = topo_model::describe_router(&topology, "R2").unwrap();
        for f in [
            FaultKind::WrongIfaceAddress,
            FaultKind::WrongLocalAs,
            FaultKind::WrongRouterId,
            FaultKind::MissingNeighbor,
            FaultKind::MissingNetwork,
            FaultKind::ExtraNetwork,
            FaultKind::ExtraNeighbor,
        ] {
            let d = SynthesisDraft::new(&desc, BTreeSet::from([f]));
            let parsed = bf_lite::parse_config(&d.render(), None);
            let findings = topo_model::verify_router(&topology, "R2", &parsed.device);
            assert!(!findings.is_empty(), "{f:?} must be detected");
        }
        // And the clean draft has no findings.
        let d = SynthesisDraft::new(&desc, BTreeSet::new());
        let parsed = bf_lite::parse_config(&d.render(), None);
        let findings = topo_model::verify_router(&topology, "R2", &parsed.device);
        assert!(findings.is_empty(), "{findings:?}");
    }
}

//! # llm-sim — the language-model substrate
//!
//! The paper studies a loop *around* GPT-4; it had no API access and
//! simulated calls by hand-feeding ChatGPT. This crate is the
//! reproduction's substitution for that manual step (documented in
//! DESIGN.md §3): a [`LanguageModel`] trait plus [`SimulatedGpt4`], a
//! generative model of GPT-4's observed behaviour on the two tasks,
//! calibrated to the paper's error catalogue:
//!
//! * **First drafts** are the *reference* solution (the provably correct
//!   translation/synthesis from `config-ir`) perturbed by faults drawn
//!   from an [`ErrorModel`] under a seeded RNG — one fault constructor per
//!   error the paper reports (Tables 2 and 3, Sections 3.2 and 4.2).
//! * **Rectification prompts** are classified against the humanizer's
//!   formulaic templates ([`prompts::PromptClass`]); matching faults are
//!   repaired according to their per-class repair behaviour: most fix on
//!   the generated prompt, the paper's two hard cases (`ge 24` prefix
//!   lengths, BGP redistribution; AND/OR stanzas and misplaced `neighbor`
//!   lines in synthesis) require a human prompt, and the `ge 24` repair
//!   takes the paper's detour through fresh invalid syntax.
//! * **Pathologies**: with model-controlled probabilities a successful
//!   repair introduces a new fault or *reintroduces a previously fixed
//!   one* ("Sometimes it even reintroduces errors that were previously
//!   fixed!").
//! * The IIP database ("initial instruction prompts") suppresses the
//!   preventable error classes exactly as Section 4.2 describes.
//!
//! The trait boundary means a real API client can replace the simulation
//! without touching COSYNTH.

pub mod backend;
pub mod error_model;
pub mod faults;
pub mod gpt4;
pub mod model;
pub mod prompts;
pub mod rng;
pub mod synth_task;
pub mod translate_task;

pub use backend::{BackendChoice, CascadeRouter, CostLedger, CostRecord, ModelBackend, Tier};
pub use error_model::{ErrorModel, TransportModel};
pub use faults::{FaultKind, RepairBehavior};
pub use gpt4::SimulatedGpt4;
pub use model::{LanguageModel, Message, Role, ScriptedLlm, TransportError};
pub use prompts::PromptClass;

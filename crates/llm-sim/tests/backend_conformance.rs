//! Backend conformance suite: the contract every [`LanguageModel`]
//! backend must honour, run over all four simulated tiers, the
//! degenerate single-tier cascades, and the cheap-first cascade.
//!
//! The contract:
//! 1. per-seed determinism — the same seed drives the same conversation
//!    to byte-identical replies and an identical cost ledger;
//! 2. transport faults surface as the matching typed
//!    [`TransportError`], never as content;
//! 3. every attempt (success or transport failure) records exactly one
//!    backend span when traced;
//! 4. the cost ledger is monotone (one charge per completion) and
//!    conserved (total = Σ per-backend calls × unit cost);
//! 5. timeouts are uncharged (the request never arrived), while
//!    truncation/garbling burn a billed completion.

use llm_sim::model::fence;
use llm_sim::prompts::TRANSLATE_TASK;
use llm_sim::{
    BackendChoice, CascadeRouter, LanguageModel, Message, ModelBackend, SimulatedGpt4, Tier,
    TransportError, TransportModel,
};
use telemetry::{SessionTrace, Stage};

const CISCO: &str = "\
hostname border1
interface Ethernet0/1
 ip address 10.0.1.1 255.255.255.0
router bgp 100
 network 1.2.3.0 mask 255.255.255.0
 neighbor 2.3.4.5 remote-as 200
 neighbor 2.3.4.5 route-map to_provider out
ip prefix-list our-networks seq 5 permit 1.2.3.0/24 ge 24
route-map to_provider permit 10
 match ip address prefix-list our-networks
 set metric 50
route-map to_provider deny 100
";

fn task_prompt() -> String {
    format!("{TRANSLATE_TASK}\n{}", fence(CISCO))
}

/// Verifier-style rectification feedback: none of these carry a task
/// marker, so the cascade classifies each as an escalation signal.
const FEEDBACKS: [&str; 4] = [
    "In the original configuration, the BGP MED value set is 50, but in \
     the translation it is 999.",
    "In the original configuration, there is a route-map to_provider, but \
     in the translation there is no corresponding policy.",
    "The interface address 10.0.1.1 does not match the translation.",
    "There is a syntax error near the policy-statement block.",
];

/// Every backend shape under test: the four direct tiers, the four
/// degenerate single-tier cascades, and the cheap-first route.
fn all_choices() -> Vec<BackendChoice> {
    Tier::ALL
        .iter()
        .map(|t| BackendChoice::Tier(*t))
        .chain(Tier::ALL.iter().map(|t| BackendChoice::CascadeOf(*t)))
        .chain(std::iter::once(BackendChoice::CheapFirst))
        .collect()
}

/// Drives a task-plus-feedback conversation and returns every reply.
fn drive(llm: &mut dyn LanguageModel) -> Vec<String> {
    let mut transcript = vec![Message::user(task_prompt())];
    let mut replies = Vec::new();
    let r = llm.complete(&transcript);
    transcript.push(Message::assistant(r.clone()));
    replies.push(r);
    for fb in FEEDBACKS {
        transcript.push(Message::user(fb));
        let r = llm.complete(&transcript);
        transcript.push(Message::assistant(r.clone()));
        replies.push(r);
    }
    replies
}

#[test]
fn per_seed_determinism_with_identical_cost_ledgers() {
    for choice in all_choices() {
        let clean = TransportModel::default();
        let mut a = choice.build(7, clean);
        let mut b = choice.build(7, clean);
        assert_eq!(
            drive(a.as_mut()),
            drive(b.as_mut()),
            "{}: same seed must replay byte-identically",
            choice.label()
        );
        assert_eq!(
            a.cost(),
            b.cost(),
            "{}: same conversation must bill identically",
            choice.label()
        );
        assert!(a.cost().conserved(), "{}", choice.label());
    }
}

#[test]
fn transport_faults_surface_as_typed_errors() {
    let classes = [
        (
            TransportModel {
                p_timeout: 1.0,
                ..Default::default()
            },
            TransportError::Timeout,
        ),
        (
            TransportModel {
                p_truncated: 1.0,
                ..Default::default()
            },
            TransportError::TruncatedResponse,
        ),
        (
            TransportModel {
                p_malformed: 1.0,
                ..Default::default()
            },
            TransportError::MalformedPayload,
        ),
    ];
    for choice in all_choices() {
        for (transport, expected) in classes {
            let mut llm = choice.build(3, transport);
            let got = llm.try_complete(&[Message::user(task_prompt())]);
            assert_eq!(
                got.err(),
                Some(expected),
                "{}: a certain {} must surface as its typed error",
                choice.label(),
                expected.code()
            );
        }
    }
}

#[test]
fn every_attempt_records_one_backend_span() {
    for choice in all_choices() {
        // Three clean attempts: three spans.
        let mut llm = choice.build(5, TransportModel::default());
        let mut trace = SessionTrace::new();
        let transcript = [Message::user(task_prompt())];
        for _ in 0..3 {
            llm.try_complete_traced(&transcript, &mut trace).unwrap();
        }
        assert_eq!(
            trace.get(Stage::Backend).count,
            3,
            "{}: one span per successful attempt",
            choice.label()
        );
        // Two timed-out attempts: still one span each.
        let mut flaky = choice.build(
            5,
            TransportModel {
                p_timeout: 1.0,
                ..Default::default()
            },
        );
        let mut trace = SessionTrace::new();
        for _ in 0..2 {
            let _ = flaky.try_complete_traced(&transcript, &mut trace);
        }
        assert_eq!(
            trace.get(Stage::Backend).count,
            2,
            "{}: failed attempts are spans too",
            choice.label()
        );
    }
}

#[test]
fn cost_ledger_is_monotone_and_conserved() {
    for choice in all_choices() {
        let mut llm = choice.build(11, TransportModel::default());
        let mut transcript = vec![Message::user(task_prompt())];
        let mut last_calls = 0;
        for turn in 0..FEEDBACKS.len() + 1 {
            let r = llm.complete(&transcript);
            transcript.push(Message::assistant(r));
            if let Some(fb) = FEEDBACKS.get(turn) {
                transcript.push(Message::user(*fb));
            }
            let ledger = llm.cost();
            assert_eq!(
                ledger.total_calls(),
                last_calls + 1,
                "{}: exactly one charge per completion",
                choice.label()
            );
            last_calls = ledger.total_calls();
            assert!(ledger.conserved(), "{}", choice.label());
            for rec in ledger.records() {
                let tier = Tier::parse(rec.backend).unwrap_or_else(|| {
                    panic!("{}: unknown backend {}", choice.label(), rec.backend)
                });
                assert_eq!(
                    rec.unit_milli_cost,
                    tier.unit_milli_cost(),
                    "{}",
                    choice.label()
                );
            }
        }
    }
}

#[test]
fn timeouts_are_uncharged_but_burned_completions_are_billed() {
    for choice in all_choices() {
        let transcript = [Message::user(task_prompt())];
        let mut timeout = choice.build(
            9,
            TransportModel {
                p_timeout: 1.0,
                ..Default::default()
            },
        );
        assert!(timeout.try_complete(&transcript).is_err());
        assert_eq!(
            timeout.cost().total_calls(),
            0,
            "{}: a timeout never reached the backend, so it cannot bill",
            choice.label()
        );
        for transport in [
            TransportModel {
                p_truncated: 1.0,
                ..Default::default()
            },
            TransportModel {
                p_malformed: 1.0,
                ..Default::default()
            },
        ] {
            let mut burned = choice.build(9, transport);
            assert!(burned.try_complete(&transcript).is_err());
            assert_eq!(
                burned.cost().total_calls(),
                1,
                "{}: a truncated/garbled completion was produced and is billed",
                choice.label()
            );
        }
    }
}

#[test]
fn tier_backends_report_their_price_sheet() {
    for t in Tier::ALL {
        let gpt = SimulatedGpt4::for_tier(t, 1);
        assert_eq!(gpt.unit_milli_cost(), t.unit_milli_cost());
        assert_eq!(gpt.latency_ms(), t.latency_ms());
        assert_eq!(gpt.name(), t.name());
    }
}

#[test]
fn cheap_first_escalates_on_feedback_and_restarts_on_task() {
    let mut llm = CascadeRouter::cheap_first(21, TransportModel::default());
    let mut transcript = vec![Message::user(task_prompt())];
    let r = llm.complete(&transcript);
    transcript.push(Message::assistant(r));
    assert_eq!(llm.active_tier(), Tier::Cheap, "tasks start at the bottom");
    assert_eq!(llm.unit_milli_cost(), Tier::Cheap.unit_milli_cost());

    // Cheap has patience 0: the first feedback escalates to std.
    transcript.push(Message::user(FEEDBACKS[0]));
    let r = llm.complete(&transcript);
    transcript.push(Message::assistant(r));
    assert_eq!(llm.active_tier(), Tier::Std);
    assert_eq!(llm.unit_milli_cost(), Tier::Std.unit_milli_cost());

    // Std has patience 2: two more feedbacks are absorbed, the third
    // escalates to premium.
    for fb in &FEEDBACKS[1..3] {
        transcript.push(Message::user(*fb));
        let r = llm.complete(&transcript);
        transcript.push(Message::assistant(r));
        assert_eq!(llm.active_tier(), Tier::Std);
    }
    transcript.push(Message::user(FEEDBACKS[3]));
    let r = llm.complete(&transcript);
    transcript.push(Message::assistant(r));
    assert_eq!(llm.active_tier(), Tier::Premium);

    // The ledger saw every tier the cascade walked through.
    let ledger = llm.cost();
    assert!(ledger.calls_for(Tier::Cheap.name()) >= 1);
    assert!(ledger.calls_for(Tier::Std.name()) >= 1);
    assert!(ledger.calls_for(Tier::Premium.name()) >= 1);
    assert!(ledger.conserved());

    // A fresh task restarts the cascade at the cheapest tier.
    let fresh = vec![Message::user(task_prompt())];
    let _ = llm.complete(&fresh);
    assert_eq!(llm.active_tier(), Tier::Cheap);
}

#[test]
fn transport_retry_of_an_identical_transcript_never_double_escalates() {
    let mut llm = CascadeRouter::cheap_first(13, TransportModel::default());
    let mut transcript = vec![Message::user(task_prompt())];
    let r = llm.complete(&transcript);
    transcript.push(Message::assistant(r));
    transcript.push(Message::user(FEEDBACKS[0]));
    let _ = llm.try_complete(&transcript);
    assert_eq!(llm.active_tier(), Tier::Std);
    // A retry re-sends the identical transcript: the routing state must
    // not move again.
    let _ = llm.try_complete(&transcript);
    assert_eq!(llm.active_tier(), Tier::Std, "retries are not feedback");
}

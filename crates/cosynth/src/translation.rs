//! Use case 1: Cisco→Juniper translation under Verified Prompt
//! Programming (Section 3).
//!
//! The loop: GPT-4 drafts a translation; Batfish-lite checks syntax;
//! Campion-lite checks semantics against the original; the humanizer
//! turns each finding into a rectification prompt; findings that survive
//! the per-finding attempt budget are escalated to the human with the
//! paper's targeted prompts. The session ends verified (no warnings, no
//! differences) or exhausted.

use crate::humanizer::{HumanFixKind, Humanizer};
use crate::leverage::Leverage;
use crate::session::{LoggedPrompt, PromptKind, SessionLimits, SessionTranscript};
use bf_lite::Vendor;
use campion_lite::CampionFinding;
use llm_sim::model::fence;
use llm_sim::prompts::TRANSLATE_TASK;
use llm_sim::LanguageModel;
use net_model::{Protocol, WarningKind};
use policy_symbolic::BehaviorDiff;
use std::collections::BTreeMap;

/// One row of the regenerated Table 2.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ErrorRow {
    /// Error description (first-seen humanized summary).
    pub error: String,
    /// Error class (Table 2's "Type" column).
    pub error_type: String,
    /// Whether the generated prompts alone fixed it ("Fixed" column).
    pub fixed_by_auto: bool,
}

/// The outcome of a translation session.
#[derive(Debug, Clone)]
pub struct TranslationOutcome {
    /// The final Junos config text.
    pub final_config: String,
    /// Whether the verifiers attest the final config (clean parse, no
    /// Campion differences).
    pub verified: bool,
    /// Prompt accounting.
    pub leverage: Leverage,
    /// Rectification rounds used.
    pub rounds: usize,
    /// The regenerated Table 2 rows, in first-seen order.
    pub error_rows: Vec<ErrorRow>,
    /// The full prompt log.
    pub log: Vec<LoggedPrompt>,
}

/// The translation session driver.
#[derive(Default)]
pub struct TranslationSession {
    /// Loop bounds.
    pub limits: SessionLimits,
}

impl TranslationSession {
    /// Runs the session: translate `cisco_text`, then drive the VPP loop
    /// until verified or exhausted.
    pub fn run<M: LanguageModel + ?Sized>(
        &self,
        llm: &mut M,
        cisco_text: &str,
    ) -> TranslationOutcome {
        let (cisco_ast, _w) = cisco_cfg::parse(cisco_text);
        let (original, _notes) = config_ir::from_cisco(&cisco_ast);
        let mut t = SessionTranscript::new(llm, None);
        let mut current = t.send_expecting_config(
            PromptKind::Task,
            format!("{TRANSLATE_TASK}\n{}", fence(cisco_text)),
            "",
        );
        let mut attempts: BTreeMap<String, usize> = BTreeMap::new();
        let mut rows: Vec<ErrorRow> = Vec::new();
        let mut row_index: BTreeMap<String, usize> = BTreeMap::new();
        let mut rounds = 0usize;
        let mut verified = false;
        while rounds < self.limits.max_rounds {
            rounds += 1;
            // Phase 1: syntax (Batfish parse warnings).
            let parsed = bf_lite::parse_config(&current, Some(Vendor::Juniper));
            // Record a Table 2 row for every distinct warning up front —
            // the model sometimes fixes a different syntax problem than
            // the one quoted, and each deserves its row.
            for w in &parsed.warnings {
                let key = format!("syntax:{:?}:{}", w.kind, w.text);
                record_row(
                    &mut rows,
                    &mut row_index,
                    &key,
                    warning_summary(w),
                    "Syntax error",
                );
            }
            if let Some(w) = parsed.warnings.first() {
                let key = format!("syntax:{:?}:{}", w.kind, w.text);
                // Attempts count only *failed* (no-progress) prompts, so a
                // reintroduced fault does not inherit escalation state.
                let failed = attempts.get(&key).copied().unwrap_or(0);
                let next = if failed < self.limits.attempts_per_finding {
                    t.send_expecting_config(PromptKind::Auto, Humanizer::syntax(w), &current)
                } else {
                    // Syntax punting is rare in translation; re-quote the
                    // warning as a human prompt (the paper's operators did
                    // exactly this for stubborn lines).
                    mark_human(&mut rows, &row_index, &key);
                    let human = match w.kind {
                        WarningKind::MisplacedCommand => {
                            Humanizer::human_escalation(HumanFixKind::NeighborPlacement)
                        }
                        WarningKind::BadPrefixListSyntax => {
                            Humanizer::human_escalation(HumanFixKind::PrefixLength)
                        }
                        _ => format!(
                            "The following line is still invalid, please rewrite it \
                             correctly: '{}'",
                            w.text
                        ),
                    };
                    t.send_expecting_config(PromptKind::Human, human, &current)
                };
                if next == current {
                    bump(&mut attempts, &key);
                }
                current = next;
                continue;
            }
            // Phase 2: semantics (Campion differences).
            let translated = parsed.device;
            let findings = campion_lite::compare(&original, &translated);
            let Some(f) = findings.first() else {
                verified = true;
                break;
            };
            let key = finding_key(f);
            record_row(
                &mut rows,
                &mut row_index,
                &key,
                finding_summary(f),
                f.class_name_for_table(),
            );
            let failed = attempts.get(&key).copied().unwrap_or(0);
            let next = if failed < self.limits.attempts_per_finding {
                t.send_expecting_config(PromptKind::Auto, Humanizer::campion(f), &current)
            } else {
                mark_human(&mut rows, &row_index, &key);
                let kind = human_fix_for(f);
                t.send_expecting_config(
                    PromptKind::Human,
                    Humanizer::human_escalation(kind),
                    &current,
                )
            };
            if next == current {
                bump(&mut attempts, &key);
            }
            current = next;
        }
        TranslationOutcome {
            final_config: current,
            verified,
            leverage: t.leverage,
            rounds,
            error_rows: rows,
            log: t.log,
        }
    }
}

fn bump(attempts: &mut BTreeMap<String, usize>, key: &str) -> usize {
    let e = attempts.entry(key.to_string()).or_insert(0);
    *e += 1;
    *e
}

/// Table 2's error column for a syntax warning.
fn warning_summary(w: &net_model::ParseWarning) -> String {
    match w.kind {
        WarningKind::MissingLocalAs => "Missing BGP local-as attribute".into(),
        WarningKind::BadPrefixListSyntax => "Invalid syntax for prefix lists".into(),
        WarningKind::MisplacedCommand => "Misplaced command".into(),
        WarningKind::CliKeyword => "CLI commands in config file".into(),
        _ => format!("Syntax: {}", w.message),
    }
}

fn record_row(
    rows: &mut Vec<ErrorRow>,
    index: &mut BTreeMap<String, usize>,
    key: &str,
    error: String,
    error_type: &str,
) {
    if !index.contains_key(key) {
        index.insert(key.to_string(), rows.len());
        rows.push(ErrorRow {
            error,
            error_type: error_type.to_string(),
            fixed_by_auto: true,
        });
    }
}

fn mark_human(rows: &mut [ErrorRow], index: &BTreeMap<String, usize>, key: &str) {
    if let Some(&i) = index.get(key) {
        rows[i].fixed_by_auto = false;
    }
}

/// A stable key identifying a finding across rounds (so repeated
/// occurrences count as attempts on the same problem).
fn finding_key(f: &CampionFinding) -> String {
    match f {
        CampionFinding::MissingNeighbor { addr, in_original } => {
            format!("neighbor:{addr}:{in_original}")
        }
        CampionFinding::MissingPolicy {
            neighbor,
            direction,
            in_original,
            ..
        } => format!("policy:{neighbor}:{direction}:{in_original}"),
        CampionFinding::MissingInterface { name, in_original } => {
            format!("iface:{}:{in_original}", name.canonical_key())
        }
        CampionFinding::MissingNetwork {
            prefix,
            in_original,
        } => {
            format!("network:{prefix}:{in_original}")
        }
        CampionFinding::MissingRedistribution { protocol, .. } => {
            format!("redist:{protocol}")
        }
        CampionFinding::LocalAsMismatch { .. } => "local-as".into(),
        CampionFinding::RouterIdMismatch { .. } => "router-id".into(),
        CampionFinding::RemoteAsMismatch { neighbor, .. } => format!("remote-as:{neighbor}"),
        CampionFinding::InterfaceAddressDiff { original_name, .. } => {
            format!("iface-addr:{}", original_name.canonical_key())
        }
        CampionFinding::OspfCostDiff { original_name, .. } => {
            format!("ospf-cost:{}", original_name.canonical_key())
        }
        CampionFinding::OspfPassiveDiff { original_name, .. } => {
            format!("ospf-passive:{}", original_name.canonical_key())
        }
        CampionFinding::PolicyBehavior {
            neighbor,
            direction,
            diff,
            ..
        } => {
            // The aspect (action/med/community/lp) distinguishes repeated
            // different problems with the same policy; witnesses vary, so
            // they are not part of the key — except that redistribution
            // action diffs (non-BGP witness) are their own problem.
            let aspect = match diff {
                BehaviorDiff::Action { route, .. } if route.protocol != Protocol::Bgp => {
                    "action-redist"
                }
                BehaviorDiff::Action { .. } => "action",
                BehaviorDiff::Med { .. } => "med",
                BehaviorDiff::LocalPref { .. } => "lp",
                BehaviorDiff::Community { .. } => "community",
            };
            format!("behavior:{neighbor}:{direction}:{aspect}")
        }
    }
}

/// A short human-readable summary for the Table 2 row.
fn finding_summary(f: &CampionFinding) -> String {
    match f {
        CampionFinding::MissingPolicy { direction, .. } => {
            format!("Missing/extra BGP route policy ({direction})")
        }
        CampionFinding::MissingNeighbor { .. } => "Missing/extra BGP neighbor".into(),
        CampionFinding::MissingInterface { .. } => "Missing/extra interface".into(),
        CampionFinding::MissingNetwork { .. } => "Missing/extra BGP network".into(),
        CampionFinding::MissingRedistribution { .. } => "Different redistribution into BGP".into(),
        CampionFinding::LocalAsMismatch { .. } => "Missing BGP local-as attribute".into(),
        CampionFinding::RouterIdMismatch { .. } => "Different router id".into(),
        CampionFinding::RemoteAsMismatch { .. } => "Different remote AS".into(),
        CampionFinding::InterfaceAddressDiff { .. } => "Different interface address".into(),
        CampionFinding::OspfCostDiff { .. } => "Different OSPF link cost".into(),
        CampionFinding::OspfPassiveDiff { .. } => "Different OSPF passive interface setting".into(),
        CampionFinding::PolicyBehavior { diff, .. } => match diff {
            BehaviorDiff::Med { .. } => "Setting wrong BGP MED value".into(),
            BehaviorDiff::Action { route, .. } if route.protocol != Protocol::Bgp => {
                "Different redistribution into BGP".into()
            }
            BehaviorDiff::Action { .. } => "Different prefix lengths match in BGP".into(),
            BehaviorDiff::LocalPref { .. } => "Different local preference".into(),
            BehaviorDiff::Community { .. } => "Different communities attached".into(),
        },
    }
}

/// Maps a stuck finding to the paper's targeted human intervention.
fn human_fix_for(f: &CampionFinding) -> HumanFixKind {
    match f {
        CampionFinding::MissingRedistribution { .. } => HumanFixKind::Redistribution,
        CampionFinding::PolicyBehavior { diff, .. } => match diff {
            BehaviorDiff::Action { route, .. } if route.protocol != Protocol::Bgp => {
                HumanFixKind::Redistribution
            }
            _ => HumanFixKind::PrefixLength,
        },
        _ => HumanFixKind::PrefixLength,
    }
}

/// Extension trait: Table 2's type column from a finding.
trait Table2Class {
    fn class_name_for_table(&self) -> &'static str;
}

impl Table2Class for CampionFinding {
    fn class_name_for_table(&self) -> &'static str {
        match self.class() {
            0 => "Structure mismatch",
            1 => "Attribute error",
            _ => "Policy error",
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use llm_sim::{ErrorModel, FaultKind, SimulatedGpt4};

    /// The bundled border-router config exercising BGP, OSPF, prefix
    /// lists with `ge`, route maps with MED, and redistribution — the
    /// same feature classes as the Batfish example the paper used.
    pub const BORDER_CFG: &str = "\
hostname border1
interface Ethernet0/1
 ip address 10.0.1.1 255.255.255.0
 ip ospf cost 10
interface Loopback0
 ip address 1.2.3.4 255.255.255.255
 ip ospf cost 1
router ospf 1
 router-id 1.2.3.4
 network 10.0.1.0 0.0.0.255 area 0
 network 1.2.3.4 0.0.0.0 area 0
 passive-interface Loopback0
router bgp 100
 bgp router-id 1.2.3.4
 network 1.2.3.0 mask 255.255.255.0
 neighbor 2.3.4.5 remote-as 200
 neighbor 2.3.4.5 send-community
 neighbor 2.3.4.5 route-map to_provider out
 neighbor 2.3.4.5 route-map from_customer in
 redistribute ospf route-map ospf_to_bgp
ip prefix-list our-networks seq 5 permit 1.2.3.0/24 ge 24
ip prefix-list private-ips seq 5 permit 10.0.0.0/8 ge 8
route-map to_provider permit 10
 match ip address prefix-list our-networks
 set metric 50
route-map to_provider deny 100
route-map from_customer deny 90
 match ip address prefix-list private-ips
route-map from_customer permit 100
 set local-preference 120
route-map ospf_to_bgp permit 10
";

    #[test]
    fn flawless_model_verifies_with_zero_prompts() {
        let mut llm = SimulatedGpt4::new(ErrorModel::flawless(), 42);
        let outcome = TranslationSession::default().run(&mut llm, BORDER_CFG);
        assert!(outcome.verified);
        assert_eq!(outcome.leverage.auto, 0);
        assert_eq!(outcome.leverage.human, 0);
        assert!(outcome.error_rows.is_empty());
    }

    #[test]
    fn single_auto_fixable_fault_costs_one_auto_prompt() {
        let mut llm = SimulatedGpt4::new(ErrorModel::only(FaultKind::WrongMed), 42);
        let outcome = TranslationSession::default().run(&mut llm, BORDER_CFG);
        assert!(outcome.verified, "{:#?}", outcome.error_rows);
        assert_eq!(outcome.leverage.auto, 1);
        assert_eq!(outcome.leverage.human, 0);
        assert_eq!(outcome.error_rows.len(), 1);
        assert!(outcome.error_rows[0].fixed_by_auto);
        assert_eq!(outcome.error_rows[0].error, "Setting wrong BGP MED value");
    }

    #[test]
    fn redistribution_fault_needs_one_human_prompt() {
        let mut llm = SimulatedGpt4::new(ErrorModel::only(FaultKind::RedistributionDropped), 42);
        let outcome = TranslationSession::default().run(&mut llm, BORDER_CFG);
        assert!(outcome.verified, "{:#?}", outcome.log.last());
        assert_eq!(outcome.leverage.human, 1);
        let row = outcome
            .error_rows
            .iter()
            .find(|r| r.error.contains("redistribution"))
            .expect("row recorded");
        assert!(!row.fixed_by_auto, "Table 2 says No for redistribution");
    }

    #[test]
    fn ge24_fault_needs_human_and_takes_syntax_detour() {
        let mut llm = SimulatedGpt4::new(ErrorModel::only(FaultKind::Ge24Dropped), 42);
        let outcome = TranslationSession::default().run(&mut llm, BORDER_CFG);
        assert!(outcome.verified);
        assert_eq!(outcome.leverage.human, 1);
        // The detour: after the human fix, a fresh syntax error appears
        // and is fixed by an automated prompt.
        let syntax_after_human = outcome
            .log
            .iter()
            .skip_while(|p| p.kind != PromptKind::Human)
            .any(|p| p.kind == PromptKind::Auto && p.prompt.contains("syntax error"));
        assert!(syntax_after_human, "{:#?}", outcome.log);
        let row = outcome
            .error_rows
            .iter()
            .find(|r| r.error.contains("prefix lengths"))
            .expect("row recorded");
        assert!(!row.fixed_by_auto, "Table 2 says No for prefix lengths");
    }

    #[test]
    fn full_paper_model_reaches_verification() {
        let mut llm = SimulatedGpt4::new(ErrorModel::paper_default(), 7);
        let outcome = TranslationSession::default().run(&mut llm, BORDER_CFG);
        assert!(
            outcome.verified,
            "rounds={} log tail={:#?}",
            outcome.rounds,
            outcome.log.last()
        );
        // Exactly the two hard cases need humans.
        assert_eq!(outcome.leverage.human, 2, "{:#?}", outcome.error_rows);
        assert!(outcome.leverage.auto >= 6, "{}", outcome.leverage);
        // Table 2's shape: ≥6 distinct error rows, exactly 2 not fixed by
        // generated prompts.
        let not_auto = outcome
            .error_rows
            .iter()
            .filter(|r| !r.fixed_by_auto)
            .count();
        assert_eq!(not_auto, 2, "{:#?}", outcome.error_rows);
        assert!(outcome.error_rows.len() >= 6);
    }

    #[test]
    fn leverage_lands_in_paper_band_across_seeds() {
        // The paper reports 10x; the conclusion claims the 5–10x band.
        let mut ratios = Vec::new();
        for seed in 0..5 {
            let mut llm = SimulatedGpt4::new(ErrorModel::paper_default(), seed);
            let outcome = TranslationSession::default().run(&mut llm, BORDER_CFG);
            assert!(outcome.verified, "seed {seed}");
            assert_eq!(outcome.leverage.human, 2, "seed {seed}");
            ratios.push(outcome.leverage.ratio());
        }
        let mean = ratios.iter().sum::<f64>() / ratios.len() as f64;
        assert!(
            (3.0..=15.0).contains(&mean),
            "mean leverage {mean} out of plausible band; {ratios:?}"
        );
    }
}

//! Use case 3: fault repair — start from a broken *running* config,
//! localize the fault, and let the verifier loop drive the fix.
//!
//! The synthesis and translation drivers begin from an LLM draft; this
//! driver begins from a known-good snapshot that `fault-inject` has
//! broken. Each round it re-verifies the whole snapshot through the
//! same machinery the synthesis loop uses — `bf-lite` parse warnings,
//! the topology verifier, the cached symbolic local checks — and, when
//! those channels are silent, falls back to a `campion-lite`-style
//! structural/behavioral diff of each router against the *intent* (the
//! reference device rebuilt from its Modularizer prompt). The first
//! finding becomes a [`Localization`]: suspect router plus a line span
//! in its rendered config, which is also what makes localization
//! precision measurable against `fault-inject`'s ground truth.
//!
//! The localized router is then re-prompted with the repair task (its
//! description and policy sentences, the localization hint, and the
//! broken config). Repair prompts are automated until the per-session
//! attempt budget is spent, after which the session escalates to the
//! human rewrite instruction — same leverage accounting as the other
//! two use cases.

use crate::composer::{check_scenario, GlobalCheckReport};
use crate::humanizer::Humanizer;
use crate::iip::IipDatabase;
use crate::incremental::{IncrementalVerifier, VerifyMode};
use crate::leverage::Leverage;
use crate::modularizer::{Modularizer, RouterAssignment};
use crate::session::{
    LoggedPrompt, PromptKind, RetryPolicy, SessionBudget, SessionLimits, SessionTranscript,
    TransportStats,
};
use crate::verifier_ctx::VerifierContext;
use bf_lite::{LocalPolicyCheck, Vendor};
use campion_lite::CampionFinding;
use fault_inject::{GroundTruth, Injection};
use llm_sim::{prompts, CostLedger, LanguageModel};
use std::collections::BTreeMap;
use telemetry::Stage;
use topo_model::{Scenario, TopologyFinding};

/// A localized fault: the suspect router and a 1-based inclusive line
/// span in its current rendered config, plus the verifier finding that
/// implicated it (reused verbatim as the repair prompt's hint).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Localization {
    /// Suspect router.
    pub device: String,
    /// First suspect line (1-based, inclusive).
    pub line_start: usize,
    /// Last suspect line (1-based, inclusive).
    pub line_end: usize,
    /// The humanized finding that pointed here.
    pub reason: String,
}

impl Localization {
    /// Whether this localization agrees with the injector's ground
    /// truth: same device, overlapping line spans. Computable without
    /// re-parsing any config — the metadata carries everything.
    pub fn agrees(&self, fault: &GroundTruth) -> bool {
        self.device == fault.device
            && self.line_start <= fault.line_end
            && fault.line_start <= self.line_end
    }
}

/// The outcome of one repair session.
#[derive(Debug, Clone)]
pub struct RepairOutcome {
    /// Final per-router configs.
    pub configs: BTreeMap<String, String>,
    /// Whether the snapshot verifies again: all local checks pass and
    /// the scenario's global expectations hold.
    pub repaired: bool,
    /// Repair prompts issued (auto + human) before the verdict.
    pub rounds: usize,
    /// The first localization of the session (`None` when the snapshot
    /// verified immediately — nothing to localize).
    pub first_localization: Option<Localization>,
    /// The final whole-network check report.
    pub global: GlobalCheckReport,
    /// Prompt accounting.
    pub leverage: Leverage,
    /// Full prompt log.
    pub log: Vec<LoggedPrompt>,
    /// Symbolic-space cache lookups served warm across the session's
    /// re-verification rounds.
    pub space_cache_hits: usize,
    /// Space (re)builds: first sight of a router or a repair edit to it.
    pub space_cache_misses: usize,
    /// Whether the session stopped early on its [`SessionBudget`].
    pub deadline_exceeded: bool,
    /// Transport retry/escalation accounting for the whole session.
    pub transport: TransportStats,
    /// Where the session's wall-clock went, by pipeline stage
    /// (localization rounds, backend calls, re-simulations). Span
    /// counts are deterministic; durations are wall-clock.
    pub trace: telemetry::SessionTrace,
    /// Per-backend model-cost accounting for this session (calls ×
    /// unit milli-cost, with simulated latency).
    pub cost: CostLedger,
}

/// The repair session driver.
pub struct RepairSession {
    /// Loop bounds: `attempts_per_finding` automated repair prompts
    /// before the human rewrite escalation, `max_rounds` total repair
    /// prompts before the session gives up. Repair rounds are whole
    /// snapshot re-verifications, so the default bound is far tighter
    /// than the synthesis loop's.
    pub limits: SessionLimits,
    /// The IIP database loaded at chat start.
    pub iips: IipDatabase,
    /// Per-session deadline (default unlimited).
    pub budget: SessionBudget,
    /// Transport retry policy.
    pub retry: RetryPolicy,
    /// Re-verification strategy (default: incremental, sequential).
    /// Per-seed session content is byte-identical across every mode —
    /// only wall-clock, trace span counts, and cache/pool counters
    /// differ; `cosynth-fleet` pins this A/B identity.
    pub verify: VerifyMode,
}

impl Default for RepairSession {
    fn default() -> Self {
        RepairSession {
            limits: SessionLimits {
                attempts_per_finding: SessionLimits::default().attempts_per_finding,
                max_rounds: 6,
            },
            iips: IipDatabase::paper_default(),
            budget: SessionBudget::default(),
            retry: RetryPolicy::default(),
            verify: VerifyMode::default(),
        }
    }
}

impl RepairSession {
    /// Runs the session: localize, prompt, re-verify, until the
    /// scenario's expectations hold or the round budget is spent.
    /// Builds a one-shot verifier context; resident workers use
    /// [`RepairSession::run_in`].
    pub fn run<M: LanguageModel + ?Sized>(
        &self,
        llm: &mut M,
        scenario: &Scenario,
        injection: &Injection,
    ) -> RepairOutcome {
        self.run_in(
            llm,
            scenario,
            injection,
            &mut VerifierContext::without_pooling(),
        )
    }

    /// [`RepairSession::run`] against a caller-owned [`VerifierContext`]
    /// whose manager pool survives the session — the resident-worker
    /// entry point. Content and accounting are byte-identical to the
    /// one-shot path.
    pub fn run_in<M: LanguageModel + ?Sized>(
        &self,
        llm: &mut M,
        scenario: &Scenario,
        injection: &Injection,
        ctx: &mut VerifierContext,
    ) -> RepairOutcome {
        ctx.begin_session();
        let mut configs = injection.configs.clone();
        let cost0 = llm.cost();
        let mut t = SessionTranscript::new(llm, self.iips.system_message())
            .with_budget(self.budget)
            .with_retry(self.retry);
        let mut first_localization: Option<Localization> = None;
        let mut rounds = 0usize;
        let mut deadline_exceeded = false;
        // Incremental mode memoizes per-device verdicts across rounds
        // and defers the whole-network simulation until its result is
        // observable (`global` is `None` while stale). Full mode keeps
        // the historical eager schedule: one sim up front and one after
        // every edit. Both modes simulate exactly the configs the
        // outcome reports, so `outcome.global` — like every other
        // content field — is byte-identical between them.
        let mut inc = self
            .verify
            .incremental
            .then(|| IncrementalVerifier::new(scenario, self.verify.parallel, ctx));
        // Assignments are pure in (topology, policies); incremental mode
        // shares one Arc'd copy across sessions on a pinned family via
        // the worker memo instead of re-deriving ~n prompts per session.
        // Same bytes either way, so content stays identical across modes.
        let assignments_arc = match inc.as_ref() {
            Some(inc) => inc.assignments(),
            None => std::sync::Arc::new(Modularizer::assign_scenario(scenario)),
        };
        let assignments: &[RouterAssignment] = &assignments_arc;
        let mut global = if inc.is_some() {
            None
        } else {
            Some(
                t.trace
                    .time(Stage::Sim, || check_scenario(scenario, &configs)),
            )
        };
        let repaired = loop {
            // The localize span covers the whole sweep; the space
            // build/hit (and parse) spans it contains are recorded
            // separately into the context's trace, so stage totals
            // overlap by design.
            let loc = t.trace.time(Stage::Localize, || match inc.as_mut() {
                Some(inc) => inc.localize(scenario, &configs, ctx),
                None => localize(scenario, assignments, &configs, ctx),
            });
            // Deferred sims in incremental mode go through the
            // verifier's parse hook, which serves clones of devices the
            // sweep already parsed instead of re-parsing the network.
            if loc.is_none() {
                if global.is_none() {
                    global = Some(t.trace.time(Stage::Sim, || match inc.as_ref() {
                        Some(inc) => inc.check_global(scenario, &configs, ctx),
                        None => check_scenario(scenario, &configs),
                    }));
                }
                if global.as_ref().expect("just ensured").holds() {
                    break true;
                }
            }
            if t.over_budget() {
                deadline_exceeded = true;
                if global.is_none() {
                    global = Some(t.trace.time(Stage::Sim, || match inc.as_ref() {
                        Some(inc) => inc.check_global(scenario, &configs, ctx),
                        None => check_scenario(scenario, &configs),
                    }));
                }
                break false;
            }
            if rounds >= self.limits.max_rounds {
                if global.is_none() {
                    global = Some(t.trace.time(Stage::Sim, || match inc.as_ref() {
                        Some(inc) => inc.check_global(scenario, &configs, ctx),
                        None => check_scenario(scenario, &configs),
                    }));
                }
                break false;
            }
            // A failing global check with every local channel silent
            // still needs a target; fall back to the first policy
            // router (scored as a localization miss).
            let loc = loc.unwrap_or_else(|| fallback_localization(assignments, &configs));
            if first_localization.is_none() {
                first_localization = Some(loc.clone());
            }
            rounds += 1;
            let assignment = assignments
                .iter()
                .find(|a| a.name == loc.device)
                .expect("localization names an internal router");
            let current = configs.get(&loc.device).cloned().unwrap_or_default();
            let escalate = rounds > self.limits.attempts_per_finding;
            let kind = if escalate {
                PromptKind::Human
            } else {
                PromptKind::Auto
            };
            let prompt = repair_prompt(assignment, &loc, &current, escalate);
            let next = t.send_expecting_config(kind, prompt, &current);
            configs.insert(loc.device.clone(), next);
            match inc.as_mut() {
                Some(inc) => {
                    // The edit dirties its dependency neighborhood and
                    // staleness-marks the sim; both are recomputed only
                    // when next observed.
                    inc.invalidate_edit(&loc.device);
                    global = None;
                }
                None => {
                    global = Some(
                        t.trace
                            .time(Stage::Sim, || check_scenario(scenario, &configs)),
                    );
                }
            }
        };
        let global = global.expect("every break path computes the final report");
        let mut trace = t.trace;
        trace.merge(&ctx.trace);
        let cost = t.backend_cost().since(&cost0);
        RepairOutcome {
            configs,
            repaired,
            rounds,
            first_localization,
            global,
            leverage: t.leverage,
            log: t.log,
            space_cache_hits: ctx.cache.hits,
            space_cache_misses: ctx.cache.misses,
            deadline_exceeded,
            transport: t.transport,
            trace,
            cost,
        }
    }
}

/// Builds the repair prompt: the router's description and policy
/// sentences (so the model can re-derive the reference), the repair task
/// sentence — or the human rewrite escalation — the localization hint,
/// and the broken config in a fence.
fn repair_prompt(
    assignment: &RouterAssignment,
    loc: &Localization,
    current: &str,
    escalate: bool,
) -> String {
    let mut p = String::new();
    for line in assignment.prompt.lines() {
        // The synthesis task sentence would ask for a fresh config; the
        // repair task below replaces it.
        if line.trim() != prompts::SYNTH_TASK {
            p.push_str(line);
            p.push('\n');
        }
    }
    p.push_str(if escalate {
        prompts::REPAIR_REWRITE
    } else {
        prompts::REPAIR_TASK
    });
    p.push('\n');
    p.push_str(&format!(
        "The verifier localized the fault near lines {}-{}: {}\n",
        loc.line_start, loc.line_end, loc.reason
    ));
    p.push_str("```\n");
    p.push_str(current);
    if !current.ends_with('\n') {
        p.push('\n');
    }
    p.push_str("```\n");
    p
}

/// Localizes the first fault the verifier channels can see, in the
/// order the VPP loop runs them: parse warnings, then the topology
/// verifier, then the cached symbolic local checks — and only when all
/// of those are silent on every router, the campion-lite structural/
/// behavioral diff against each router's intent.
pub fn localize(
    scenario: &Scenario,
    assignments: &[RouterAssignment],
    configs: &BTreeMap<String, String>,
    ctx: &mut VerifierContext,
) -> Option<Localization> {
    let mut clean: Vec<(&RouterAssignment, &String, config_ir::Device)> = Vec::new();
    for assignment in assignments {
        let Some(text) = configs.get(&assignment.name) else {
            continue;
        };
        match local_verdict_in(scenario, assignment, text, ctx) {
            (_, Some(loc)) => return Some(loc),
            (device, None) => clean.push((assignment, text, device)),
        }
    }
    // Campion-style diff against the intent: the reference device
    // rebuilt from the router's own prompt is the embodiment of its
    // spec, so any structural or behavioral divergence localizes a
    // fault the local checks could not phrase (e.g. a permit flipped
    // on a clause no check is vacuously quantified over).
    for (assignment, text, device) in clean {
        if let Some(loc) = campion_verdict_in(assignment, text, &device, ctx) {
            return Some(loc);
        }
    }
    None
}

/// Parses a rendered config and applies the assignment-name fixup the
/// VPP loop relies on (drafts rarely carry a hostname). Pure in
/// `(text, name)`; shared by the sequential sweep, the memoized
/// re-verification in [`crate::incremental`], and the parallel fan-out.
pub(crate) fn parse_device(text: &str, name: &str) -> bf_lite::ParsedConfig {
    let mut parsed = bf_lite::parse_config(text, Some(Vendor::Cisco));
    if parsed.device.name.is_empty() {
        parsed.device.name = name.to_string();
    }
    parsed
}

/// The local verdict for one device, in VPP order: parse warnings, the
/// topology verifier, then the symbolic local checks (space served warm
/// from the context's cache). Returns the parsed device (always — the
/// whole-network simulation wants it even when the verdict fails) plus
/// the first finding, `None` when every channel is silent.
///
/// The verdict is a pure function of `(scenario, assignment, text)` —
/// more precisely of the router's own topology spec, its check set, and
/// the text; `topo_model::verify_router` reads nothing else. The
/// context only caches the symbolic space, which never changes a
/// witness. That purity is what makes the per-device memoization in
/// [`crate::incremental`] sound, both within a session and across
/// sessions on the same worker.
pub(crate) fn local_verdict_in(
    scenario: &Scenario,
    assignment: &RouterAssignment,
    text: &str,
    ctx: &mut VerifierContext,
) -> (config_ir::Device, Option<Localization>) {
    let parsed = ctx
        .trace
        .time(Stage::Parse, || parse_device(text, &assignment.name));
    if let Some(w) = parsed.warnings.first() {
        let (line_start, line_end) = if w.line > 0 {
            (w.line, w.line)
        } else {
            whole_file(text)
        };
        let loc = Localization {
            device: assignment.name.clone(),
            line_start,
            line_end,
            reason: Humanizer::syntax(w),
        };
        return (parsed.device, Some(loc));
    }
    let device = parsed.device;
    let findings = topo_model::verify_router(&scenario.topology, &assignment.name, &device);
    if let Some(f) = findings.first() {
        let (line_start, line_end) = topology_span(text, f);
        let loc = Localization {
            device: assignment.name.clone(),
            line_start,
            line_end,
            reason: Humanizer::topology(f),
        };
        return (device, Some(loc));
    }
    let mut space = assignment
        .checks
        .iter()
        .any(LocalPolicyCheck::is_symbolic)
        .then(|| ctx.space_for(&assignment.name, &device, &assignment.checks));
    for check in &assignment.checks {
        let result = match space.as_mut() {
            Some(space) if check.is_symbolic() => {
                bf_lite::check_local_policy_in(space, &device, check)
            }
            _ => bf_lite::check_local_policy(&device, check),
        };
        if let Err(witness) = result {
            let map = check_map(check);
            let (line_start, line_end) = map_span(text, &map).unwrap_or(whole_file(text));
            let loc = Localization {
                device: assignment.name.clone(),
                line_start,
                line_end,
                reason: Humanizer::semantic(&map, check, &witness),
            };
            return (device, Some(loc));
        }
    }
    (device, None)
}

/// [`local_verdict_in`] without the context: the symbolic space (when
/// the check set needs one) is built into the caller-provided pooled
/// manager, and comes back with its cache fingerprint so the caller can
/// install it warm. The parallel fan-out runs this on worker threads,
/// where neither the cache nor the trace can be borrowed; an unused
/// manager comes back in the `Err` slot for release. Verdicts are
/// byte-identical to the context path — same parse, same check order,
/// and pooled managers reproduce fresh managers' results exactly.
#[allow(clippy::type_complexity)]
pub(crate) fn local_verdict_standalone(
    scenario: &Scenario,
    assignment: &RouterAssignment,
    text: &str,
    mgr: bdd::Manager,
) -> (
    config_ir::Device,
    Option<Localization>,
    Result<(u64, policy_symbolic::RouteSpace), bdd::Manager>,
) {
    let parsed = parse_device(text, &assignment.name);
    if let Some(w) = parsed.warnings.first() {
        let (line_start, line_end) = if w.line > 0 {
            (w.line, w.line)
        } else {
            whole_file(text)
        };
        let loc = Localization {
            device: assignment.name.clone(),
            line_start,
            line_end,
            reason: Humanizer::syntax(w),
        };
        return (parsed.device, Some(loc), Err(mgr));
    }
    let device = parsed.device;
    let findings = topo_model::verify_router(&scenario.topology, &assignment.name, &device);
    if let Some(f) = findings.first() {
        let (line_start, line_end) = topology_span(text, f);
        let loc = Localization {
            device: assignment.name.clone(),
            line_start,
            line_end,
            reason: Humanizer::topology(f),
        };
        return (device, Some(loc), Err(mgr));
    }
    let mut spare = Some(mgr);
    let mut built = None;
    if assignment.checks.iter().any(LocalPolicyCheck::is_symbolic) {
        let fingerprint = crate::space_cache::ir_fingerprint(&device, &assignment.checks);
        let mgr = spare.take().expect("manager not yet consumed");
        built = Some((
            fingerprint,
            bf_lite::space_for_checks_in(mgr, &device, &assignment.checks),
        ));
    }
    let mut space = built.as_mut().map(|(_, s)| s);
    for check in &assignment.checks {
        let result = match space.as_deref_mut() {
            Some(space) if check.is_symbolic() => {
                bf_lite::check_local_policy_in(space, &device, check)
            }
            _ => bf_lite::check_local_policy(&device, check),
        };
        if let Err(witness) = result {
            let map = check_map(check);
            let (line_start, line_end) = map_span(text, &map).unwrap_or(whole_file(text));
            let loc = Localization {
                device: assignment.name.clone(),
                line_start,
                line_end,
                reason: Humanizer::semantic(&map, check, &witness),
            };
            return (
                device,
                Some(loc),
                Ok(built.expect("symbolic witness implies a built space")),
            );
        }
    }
    (
        device,
        None,
        built.ok_or_else(|| spare.expect("manager unused when no space was built")),
    )
}

/// The campion verdict for one locally-clean device: the structural/
/// behavioral diff against the reference device rebuilt from the
/// router's own prompt. Pure in `(assignment, text, device)`.
pub(crate) fn campion_verdict_in(
    assignment: &RouterAssignment,
    text: &str,
    device: &config_ir::Device,
    ctx: &mut VerifierContext,
) -> Option<Localization> {
    // The behaviour diff builds the largest BDDs in the workspace;
    // drawing its manager from the worker pool is what keeps the
    // final (all-channels-silent) verification round off the
    // fresh-allocation path.
    let (loc, mgr) = campion_verdict_with(assignment, text, device, ctx.pool.acquire());
    ctx.pool.release(mgr);
    loc
}

/// [`campion_verdict_in`] threading the manager explicitly, so a
/// parallel worker can reuse one pooled manager across its whole chunk
/// of devices — campion findings are canonical regardless of manager
/// history, so reuse without clearing is sound.
pub(crate) fn campion_verdict_with(
    assignment: &RouterAssignment,
    text: &str,
    device: &config_ir::Device,
    mgr: bdd::Manager,
) -> (Option<Localization>, bdd::Manager) {
    let intended = llm_sim::synth_task::reference_device(&llm_sim::synth_task::understand_prompt(
        &assignment.prompt,
    ));
    let (findings, mgr) = campion_lite::compare_in(mgr, &intended, device);
    let loc = findings.first().map(|f| {
        let (line_start, line_end) = campion_span(text, f);
        Localization {
            device: assignment.name.clone(),
            line_start,
            line_end,
            reason: Humanizer::campion(f),
        }
    });
    (loc, mgr)
}

fn fallback_localization(
    assignments: &[RouterAssignment],
    configs: &BTreeMap<String, String>,
) -> Localization {
    let assignment = assignments
        .iter()
        .find(|a| !a.checks.is_empty())
        .or_else(|| assignments.first())
        .expect("scenario has internal routers");
    let text = configs
        .get(&assignment.name)
        .map(String::as_str)
        .unwrap_or("");
    let (line_start, line_end) = whole_file(text);
    Localization {
        device: assignment.name.clone(),
        line_start,
        line_end,
        reason: "The global expectations fail but no local finding pinpoints a line; \
                 review this policy router."
            .to_string(),
    }
}

/// The map a failing local check implicates (first element of its
/// policy chain).
fn check_map(check: &LocalPolicyCheck) -> String {
    match check {
        LocalPolicyCheck::PermittedRoutesCarry { chain, .. }
        | LocalPolicyCheck::RoutesWithCommunityDenied { chain, .. }
        | LocalPolicyCheck::PermittedRoutesPreserve { chain, .. }
        | LocalPolicyCheck::PermittedRoutesSetLocalPref { chain, .. } => {
            chain.first().cloned().unwrap_or_default()
        }
    }
}

// ---- line-span helpers (all 1-based, inclusive) ----

fn whole_file(text: &str) -> (usize, usize) {
    (1, text.lines().count().max(1))
}

/// Span of the lines matching `pred` (first to last match).
fn matching_span(text: &str, pred: impl Fn(&str) -> bool) -> Option<(usize, usize)> {
    let mut start = None;
    let mut end = 0;
    for (i, line) in text.lines().enumerate() {
        if pred(line) {
            let n = i + 1;
            if start.is_none() {
                start = Some(n);
            }
            end = n;
        }
    }
    start.map(|s| (s, end))
}

/// Span of a block: the header lines matching `header` plus any
/// following indented continuation lines (covers multi-stanza route
/// maps and interface/router blocks alike).
fn block_span(text: &str, header: impl Fn(&str) -> bool) -> Option<(usize, usize)> {
    let mut start = None;
    let mut end = 0;
    let mut inside = false;
    for (i, line) in text.lines().enumerate() {
        let n = i + 1;
        if header(line) {
            if start.is_none() {
                start = Some(n);
            }
            end = n;
            inside = true;
        } else if inside && line.starts_with(' ') {
            end = n;
        } else {
            inside = false;
        }
    }
    start.map(|s| (s, end))
}

/// Span of every stanza of `route-map <map>`.
fn map_span(text: &str, map: &str) -> Option<(usize, usize)> {
    let header = format!("route-map {map} ");
    block_span(text, |l| l.starts_with(&header))
}

/// Span of the `router bgp` block.
fn bgp_span(text: &str) -> Option<(usize, usize)> {
    block_span(text, |l| l.starts_with("router bgp"))
}

/// Span of the lines configuring neighbor `addr`.
fn neighbor_span(text: &str, addr: std::net::Ipv4Addr) -> Option<(usize, usize)> {
    let marker = format!("neighbor {addr} ");
    matching_span(text, |l| l.trim_start().starts_with(&marker))
}

fn topology_span(text: &str, f: &TopologyFinding) -> (usize, usize) {
    let span = match f {
        TopologyFinding::InterfaceAddressMismatch { iface, .. } => {
            let header = format!("interface {iface}");
            block_span(text, |l| l.trim_end() == header)
        }
        TopologyFinding::LocalAsMismatch { .. } => {
            matching_span(text, |l| l.starts_with("router bgp"))
        }
        TopologyFinding::RouterIdMismatch { .. } => {
            matching_span(text, |l| l.trim_start().starts_with("bgp router-id"))
                .or_else(|| bgp_span(text))
        }
        TopologyFinding::NeighborNotDeclared { .. }
        | TopologyFinding::NetworkNotDeclared { .. } => {
            // The artifact is *missing*; the deletion point is inside
            // the BGP block.
            bgp_span(text)
        }
        TopologyFinding::IncorrectNeighbor { addr, .. } => {
            neighbor_span(text, *addr).or_else(|| bgp_span(text))
        }
        TopologyFinding::IncorrectNetwork { prefix, .. } => {
            let marker = format!("network {}", prefix.network());
            matching_span(text, |l| l.trim_start().starts_with(&marker)).or_else(|| bgp_span(text))
        }
    };
    span.unwrap_or(whole_file(text))
}

fn campion_span(text: &str, f: &CampionFinding) -> (usize, usize) {
    let span = match f {
        CampionFinding::MissingNeighbor { addr, in_original } => {
            if *in_original {
                bgp_span(text)
            } else {
                neighbor_span(text, *addr).or_else(|| bgp_span(text))
            }
        }
        CampionFinding::MissingPolicy { neighbor, .. }
        | CampionFinding::RemoteAsMismatch { neighbor, .. } => {
            neighbor_span(text, *neighbor).or_else(|| bgp_span(text))
        }
        CampionFinding::MissingNetwork {
            prefix,
            in_original,
        } => {
            if *in_original {
                bgp_span(text)
            } else {
                let marker = format!("network {}", prefix.network());
                matching_span(text, |l| l.trim_start().starts_with(&marker))
                    .or_else(|| bgp_span(text))
            }
        }
        CampionFinding::LocalAsMismatch { .. } => {
            matching_span(text, |l| l.starts_with("router bgp"))
        }
        CampionFinding::RouterIdMismatch { .. } => {
            matching_span(text, |l| l.trim_start().starts_with("bgp router-id"))
                .or_else(|| bgp_span(text))
        }
        CampionFinding::InterfaceAddressDiff {
            translated_name, ..
        }
        | CampionFinding::OspfCostDiff {
            translated_name, ..
        }
        | CampionFinding::OspfPassiveDiff {
            translated_name, ..
        } => {
            let header = format!("interface {}", translated_name.as_str());
            block_span(text, |l| l.trim_end() == header)
        }
        CampionFinding::PolicyBehavior {
            translated_policy,
            original_policy,
            ..
        } => translated_policy
            .as_deref()
            .or(original_policy.as_deref())
            .and_then(|m| map_span(text, m)),
        CampionFinding::MissingInterface { .. } | CampionFinding::MissingRedistribution { .. } => {
            None
        }
    };
    span.unwrap_or(whole_file(text))
}

#[cfg(test)]
mod tests {
    use super::*;
    use llm_sim::synth_task::SynthesisDraft;
    use llm_sim::{ErrorModel, SimulatedGpt4};
    use std::collections::BTreeSet;

    /// Clean rendered configs for every internal router of a scenario.
    fn clean_configs(scenario: &Scenario) -> BTreeMap<String, String> {
        Modularizer::assign_scenario(scenario)
            .iter()
            .map(|a| {
                (
                    a.name.clone(),
                    SynthesisDraft::new(&a.prompt, BTreeSet::new()).render(),
                )
            })
            .collect()
    }

    #[test]
    fn clean_snapshots_localize_to_nothing() {
        // No false positives: every channel (including the campion
        // intent diff) must stay silent on reference snapshots, across
        // families and intents.
        for index in 0..10 {
            let scenario = scenario_gen::generate(11, index);
            let assignments = Modularizer::assign_scenario(&scenario);
            let configs = clean_configs(&scenario);
            let mut ctx = VerifierContext::new();
            let loc = localize(&scenario, &assignments, &configs, &mut ctx);
            assert!(loc.is_none(), "{}: {loc:?}", scenario.name);
        }
    }

    #[test]
    fn every_injected_class_is_localized_to_the_right_device() {
        let mut seen = BTreeSet::new();
        for index in 0..12 {
            let scenario = scenario_gen::generate(11, index);
            let assignments = Modularizer::assign_scenario(&scenario);
            let configs = clean_configs(&scenario);
            for injection in fault_inject::corpus(&configs, 100 + index as u64) {
                let mut ctx = VerifierContext::new();
                let loc = localize(&scenario, &assignments, &injection.configs, &mut ctx)
                    .unwrap_or_else(|| {
                        panic!(
                            "{}: {:?} must be localizable",
                            scenario.name, injection.fault
                        )
                    });
                assert_eq!(
                    loc.device, injection.fault.device,
                    "{}: {:?} vs {loc:?}",
                    scenario.name, injection.fault
                );
                assert!(
                    loc.agrees(&injection.fault),
                    "{}: span miss {:?} vs {loc:?}",
                    scenario.name,
                    injection.fault
                );
                seen.insert(injection.fault.class);
            }
        }
        assert!(
            seen.len() >= 8,
            "corpus must exercise (nearly) all classes: {seen:?}"
        );
    }

    #[test]
    fn repair_session_fixes_an_injected_fault() {
        let scenario = scenario_gen::generate(3, 1); // ring family
        let configs = clean_configs(&scenario);
        let injection = fault_inject::inject(&configs, 5).expect("applicable fault");
        let mut llm = SimulatedGpt4::new(ErrorModel::paper_default(), 17);
        let outcome = RepairSession::default().run(&mut llm, &scenario, &injection);
        assert!(outcome.repaired, "{:#?}", outcome.log.last());
        assert!(outcome.rounds >= 1);
        let loc = outcome.first_localization.expect("fault was localized");
        assert!(
            loc.agrees(&injection.fault),
            "{loc:?} vs {:?}",
            injection.fault
        );
        assert!(outcome.global.holds());
    }

    #[test]
    fn repair_deadline_yields_typed_outcome() {
        let scenario = scenario_gen::generate(3, 1);
        let configs = clean_configs(&scenario);
        let injection = fault_inject::inject(&configs, 5).expect("applicable fault");
        let mut llm = SimulatedGpt4::new(ErrorModel::paper_default(), 17);
        let session = RepairSession {
            budget: SessionBudget {
                max_wall_ms: Some(0),
                ..Default::default()
            },
            ..Default::default()
        };
        let outcome = session.run(&mut llm, &scenario, &injection);
        assert!(outcome.deadline_exceeded, "an expired budget must trip");
        assert!(!outcome.repaired);
        assert_eq!(outcome.rounds, 0, "no repair prompt past the deadline");
    }

    #[test]
    fn dead_transport_repair_escalates_every_send_and_still_fixes() {
        // Every request times out: each send burns its whole retry
        // budget, escalates to the human re-issue, and the session still
        // lands the fix — the worst transport cannot wedge a repair.
        let scenario = scenario_gen::generate(3, 1);
        let configs = clean_configs(&scenario);
        let injection = fault_inject::inject(&configs, 5).expect("applicable fault");
        let mut model = ErrorModel::paper_default();
        model.transport = llm_sim::TransportModel {
            p_timeout: 1.0,
            ..Default::default()
        };
        let mut llm = SimulatedGpt4::new(model, 17);
        let outcome = RepairSession::default().run(&mut llm, &scenario, &injection);
        assert!(outcome.repaired, "{:#?}", outcome.log.last());
        assert!(outcome.transport.retries > 0, "dead backend forces retries");
        assert_eq!(
            outcome.transport.escalations,
            outcome.log.len(),
            "every send exhausts its budget"
        );
        assert_eq!(
            outcome.transport.retries,
            outcome.log.len() * RetryPolicy::default().max_retries
        );
    }

    #[test]
    fn stalled_auto_repairs_escalate_to_the_human_channel() {
        // A model that always fixes the wrong line never repairs on the
        // automated channel; the session must escalate and the forced
        // rewrite must land the fix.
        let scenario = scenario_gen::generate(3, 0);
        let configs = clean_configs(&scenario);
        let injection = fault_inject::inject(&configs, 9).expect("applicable fault");
        let mut model = ErrorModel::paper_default();
        model.p_repair_wrong_line = 1.0;
        let mut llm = SimulatedGpt4::new(model, 4);
        let outcome = RepairSession::default().run(&mut llm, &scenario, &injection);
        assert!(outcome.repaired, "{:#?}", outcome.log.last());
        assert!(outcome.leverage.human >= 1, "{}", outcome.leverage);
        assert_eq!(
            outcome.leverage.auto,
            SessionLimits::default().attempts_per_finding
        );
        assert!(outcome.rounds > SessionLimits::default().attempts_per_finding);
    }

    #[test]
    fn space_cache_survives_repair_rounds_and_invalidates_per_router() {
        // Find a scenario with at least two symbolic policy routers so
        // per-router invalidation is observable, wipe a community on one
        // of them (a fault only the symbolic carry check can see), and
        // hold the model on the wrong-line pathology for the automated
        // rounds: the cosmetic edits leave the suspect's IR unchanged and
        // every other router untouched, so re-verification rounds after
        // the first must be answered from the warm cache.
        let scenario = (0..20)
            .map(|i| scenario_gen::generate(11, i))
            .find(|s| {
                Modularizer::assign_scenario(s)
                    .iter()
                    .filter(|a| a.checks.iter().any(LocalPolicyCheck::is_symbolic))
                    .count()
                    >= 2
            })
            .expect("generator produces multi-policy-router scenarios");
        let assignments = Modularizer::assign_scenario(&scenario);
        let symbolic_routers = assignments
            .iter()
            .filter(|a| a.checks.iter().any(LocalPolicyCheck::is_symbolic))
            .count();
        let configs = clean_configs(&scenario);
        let suspect = assignments
            .iter()
            .find(|a| {
                a.checks.iter().any(LocalPolicyCheck::is_symbolic)
                    && fault_inject::applicable_classes(&configs[&a.name])
                        .contains(&fault_inject::FaultClass::CommunityWiped)
            })
            .expect("a tagging router exists");
        let mut rng = llm_sim::rng::SimRng::seed_from_u64(21);
        let (mutated, line_start, line_end, detail) = fault_inject::mutate_config(
            &configs[&suspect.name],
            fault_inject::FaultClass::CommunityWiped,
            &mut rng,
        )
        .expect("community wipe applies");
        let mut broken = configs.clone();
        broken.insert(suspect.name.clone(), mutated);
        let injection = Injection {
            configs: broken,
            fault: GroundTruth {
                device: suspect.name.clone(),
                class: fault_inject::FaultClass::CommunityWiped,
                line_start,
                line_end,
                detail,
            },
        };
        let mut model = ErrorModel::paper_default();
        model.p_repair_wrong_line = 1.0;
        let mut llm = SimulatedGpt4::new(model, 8);
        let outcome = RepairSession::default().run(&mut llm, &scenario, &injection);
        assert!(outcome.repaired, "{:#?}", outcome.log.last());
        assert!(
            outcome.rounds > SessionLimits::default().attempts_per_finding,
            "wrong-line model must burn the automated budget"
        );
        // Per-router invalidation: every untouched router has exactly one
        // IR all session (≤ 1 miss each); only the repaired router sees a
        // second fingerprint. The cosmetic wrong-line edits lower to the
        // same IR, so they must not rebuild anything.
        assert!(
            outcome.space_cache_misses <= symbolic_routers + 1,
            "a repair to one router must invalidate only that router: \
             misses={} symbolic_routers={symbolic_routers}",
            outcome.space_cache_misses
        );
        // The suspect is re-verified every automated round with an
        // unchanged fingerprint: those lookups must all be warm.
        assert!(
            outcome.space_cache_hits >= SessionLimits::default().attempts_per_finding,
            "re-verification across rounds must hit the cache: hits={} misses={}",
            outcome.space_cache_hits,
            outcome.space_cache_misses
        );
    }

    #[test]
    fn repair_outcome_is_deterministic_per_seed() {
        let scenario = scenario_gen::generate(7, 2);
        let configs = clean_configs(&scenario);
        let injection = fault_inject::inject(&configs, 13).expect("applicable fault");
        let run = || {
            let mut llm = SimulatedGpt4::new(ErrorModel::paper_default(), 99);
            RepairSession::default().run(&mut llm, &scenario, &injection)
        };
        let a = run();
        let b = run();
        assert_eq!(a.repaired, b.repaired);
        assert_eq!(a.rounds, b.rounds);
        assert_eq!(a.configs, b.configs);
        assert_eq!(a.leverage, b.leverage);
        assert_eq!(a.first_localization, b.first_localization);
    }
}

//! Leverage: the paper's headline metric.
//!
//! "Define leverage as the ratio L of the number of automated prompts in
//! Figure 2 to the number of human prompts." The initial task prompt is
//! counted as neither: it exists identically in plain pair programming,
//! and the metric isolates the verifier's contribution.

/// Prompt counts and the leverage ratio.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct Leverage {
    /// Automated (verifier-generated) rectification prompts.
    pub auto: usize,
    /// Manual (human) correction prompts.
    pub human: usize,
}

impl Leverage {
    /// Records an automated prompt.
    pub fn record_auto(&mut self) {
        self.auto += 1;
    }

    /// Records a human prompt.
    pub fn record_human(&mut self) {
        self.human += 1;
    }

    /// The ratio `auto / human`. With zero human prompts the paper's
    /// metric is undefined; we report `auto` as an optimistic bound
    /// (every automated prompt replaced a would-be human one).
    pub fn ratio(&self) -> f64 {
        if self.human == 0 {
            self.auto as f64
        } else {
            self.auto as f64 / self.human as f64
        }
    }

    /// Merges counts from a sub-session (per-router loops).
    pub fn merge(&mut self, other: Leverage) {
        self.auto += other.auto;
        self.human += other.human;
    }
}

impl std::fmt::Display for Leverage {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{} automated / {} human prompts (leverage {:.1}x)",
            self.auto,
            self.human,
            self.ratio()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_numbers() {
        let translation = Leverage { auto: 20, human: 2 };
        assert!((translation.ratio() - 10.0).abs() < 1e-9);
        let synthesis = Leverage { auto: 12, human: 2 };
        assert!((synthesis.ratio() - 6.0).abs() < 1e-9);
    }

    #[test]
    fn zero_human_reports_auto_count() {
        let l = Leverage { auto: 7, human: 0 };
        assert_eq!(l.ratio(), 7.0);
    }

    #[test]
    fn merge_and_record() {
        let mut l = Leverage::default();
        l.record_auto();
        l.record_auto();
        l.record_human();
        l.merge(Leverage { auto: 3, human: 1 });
        assert_eq!(l.auto, 5);
        assert_eq!(l.human, 2);
        assert!((l.ratio() - 2.5).abs() < 1e-9);
    }

    #[test]
    fn display_is_informative() {
        let l = Leverage { auto: 20, human: 2 };
        let s = l.to_string();
        assert!(s.contains("20 automated"));
        assert!(s.contains("10.0x"));
    }
}

//! The IIP database: initial instruction prompts "for avoiding common
//! mistakes ... built and added by experts over time" (Section 2).

use llm_sim::gpt4::IIP_MARKER;

/// One initial instruction prompt.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Iip {
    /// Short identifier.
    pub id: &'static str,
    /// The instruction text.
    pub text: String,
}

/// The expert-curated IIP database.
#[derive(Debug, Clone, Default)]
pub struct IipDatabase {
    entries: Vec<Iip>,
}

impl IipDatabase {
    /// An empty database (the IIP-off ablation).
    pub fn empty() -> Self {
        IipDatabase::default()
    }

    /// The paper's four Section 4.2 instructions.
    pub fn paper_default() -> Self {
        let mut db = IipDatabase::default();
        db.add(
            "no-cli",
            "Generate the configuration as a .cfg file. Do not produce commands to be \
             entered on the command line interface.",
        );
        db.add(
            "no-exec-keywords",
            "Do not use the keywords 'exit', 'end', 'configure terminal', 'ip routing', \
             'write', or 'conf t' anywhere in the configuration file.",
        );
        db.add(
            "match-community-list",
            "When matching against a community in a route-map, first declare an \
             'ip community-list' containing the community, and in the route-map match \
             using only the list.",
        );
        db.add(
            "additive-community",
            "When adding a community to a route with 'set community', always use the \
             'additive' keyword so existing communities are preserved.",
        );
        db
    }

    /// Adds an instruction.
    pub fn add(&mut self, id: &'static str, text: impl Into<String>) {
        self.entries.push(Iip {
            id,
            text: text.into(),
        });
    }

    /// Number of instructions.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the database is empty.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// The entries.
    pub fn entries(&self) -> &[Iip] {
        &self.entries
    }

    /// Renders the database as the system message that starts every chat.
    /// Returns `None` when empty (no system message at all).
    pub fn system_message(&self) -> Option<String> {
        if self.entries.is_empty() {
            return None;
        }
        let mut out = format!(
            "{IIP_MARKER} Follow these standing instructions when writing router \
             configurations:\n"
        );
        for (i, e) in self.entries.iter().enumerate() {
            out.push_str(&format!("{}. {}\n", i + 1, e.text));
        }
        Some(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_default_has_four_entries() {
        let db = IipDatabase::paper_default();
        assert_eq!(db.len(), 4);
        let ids: Vec<_> = db.entries().iter().map(|e| e.id).collect();
        assert_eq!(
            ids,
            vec![
                "no-cli",
                "no-exec-keywords",
                "match-community-list",
                "additive-community"
            ]
        );
    }

    #[test]
    fn system_message_carries_marker() {
        let db = IipDatabase::paper_default();
        let msg = db.system_message().unwrap();
        assert!(msg.contains(IIP_MARKER));
        assert!(msg.contains("additive"));
        assert!(msg.contains("community-list"));
    }

    #[test]
    fn empty_database_has_no_message() {
        assert_eq!(IipDatabase::empty().system_message(), None);
    }

    #[test]
    fn extensible() {
        let mut db = IipDatabase::paper_default();
        db.add("new-rule", "Always set a router-id explicitly.");
        assert_eq!(db.len(), 5);
        assert!(db.system_message().unwrap().contains("router-id"));
    }
}

//! Incremental re-verification: session cost that scales with the
//! *edit*, not the network.
//!
//! The repair loop historically re-verified the whole snapshot after
//! every model edit — every router re-parsed, re-checked against the
//! topology, re-checked symbolically, and (when all local channels were
//! silent) re-diffed against its intent with `campion-lite`, plus a
//! whole-network simulation per round. At 5–12 routers that is noise; at
//! the internet-scale families (36–512 routers) the campion BDD
//! behaviour diffs and the sweep dominate the session, even though a
//! repair round edits exactly one device.
//!
//! This module lifts the `bf-lite::sim` dirty-set idea to the symbolic
//! layer:
//!
//! * [`DependencyTracker`] maps a rectification edit to the set of
//!   devices whose import/export reachability can change: the edited
//!   device itself plus its internal BGP neighbors (an edit changes what
//!   the device announces, so the neighbors' imports move). This is
//!   deliberately **conservative** — the per-device verdicts below
//!   depend only on the device's own config, so `{edited}` alone would
//!   already be sound; the BGP neighborhood is the honest bound on
//!   reachability influence and is what the soundness property test
//!   pins.
//! * [`IncrementalVerifier`] memoizes the two per-device verdicts the
//!   sweep computes — the *local* verdict (parse warnings → topology
//!   verifier → symbolic local checks) and the *campion* verdict (the
//!   structural/behavioral diff against the router's intent) — and
//!   invalidates exactly the dirty set after each edit. Verdicts are
//!   pure functions of `(scenario, assignment, config text)` (see
//!   `repair::local_verdict_in`), so a memo hit is byte-identical to a
//!   recompute; each entry stores the fingerprint of the text it was
//!   computed from and debug-asserts it on every hit.
//!
//! The sweep preserves the full sweep's semantics exactly: devices are
//! visited in assignment order, the first local finding wins, and the
//! campion phase runs only when every device's local channels are
//! silent. Lazily-memoized early exit means the first rounds do no more
//! work than the full sweep did — the win is that rounds 2..n recompute
//! only the dirty neighborhood instead of everything before the suspect.
//!
//! ## Cross-session sharing
//!
//! The fleet pins one topology per `(seed, family)` and varies only the
//! intent and fault per session, so almost everything a session derives
//! from the scenario is derivable once per family:
//!
//! * [`SessionStatics`] — the assignments, the per-device memo-key
//!   bases, the name→index map, and the dependency tracker — is a pure
//!   function of `(topology, policies)` and is shared through an `Arc`
//!   in the worker memo; a later session pays one streamed hash of the
//!   topology instead of re-deriving ~n prompts and keys.
//! * [`VerdictMemo`] keeps per-device local/campion verdicts and whole
//!   `GlobalCheckReport`s keyed by content fingerprints, so a warm
//!   worker answers the sweeps and the final simulation of session
//!   *k+1* from session *k*'s work.
//!
//! ## Parallel mode
//!
//! With [`VerifyMode::parallel`] the one-time O(n) sweeps fan out over
//! scoped threads: each missing local verdict is computed standalone on
//! a worker with a pooled BDD manager from the [`VerifierContext`]
//! (spaces built via `bf_lite::space_for_checks_in` come back with
//! their fingerprint and are installed warm into the session cache),
//! and missing campion verdicts are chunked across workers that each
//! reuse one pooled manager for their whole chunk (campion findings are
//! canonical regardless of manager history). Per-device verdicts are
//! pure, so the fan-out returns the same first-in-assignment-order
//! localization the sequential sweep returns; the only difference is
//! that a parallel round computes *all* missing verdicts instead of
//! early-exiting, which pre-warms later rounds.
//!
//! ## What "byte-identical" excludes
//!
//! Per-seed session **content** — configs, repaired, rounds,
//! localizations, the global report, leverage, the prompt log, cost —
//! is identical across full / incremental / incremental+parallel; the
//! fleet A/B test pins this. Wall-clock, trace span *counts* (skipped
//! parses, deferred sims), and space-cache/pool counters necessarily
//! differ between modes and are excluded from the identity.

use crate::modularizer::{Modularizer, RouterAssignment};
use crate::repair::{self, Localization};
use crate::verifier_ctx::VerifierContext;
use bdd::FxHasher;
use std::collections::{BTreeMap, BTreeSet, HashMap};
use std::fmt::Write as _;
use std::hash::{Hash as _, Hasher as _};
use std::sync::Arc;
use topo_model::Scenario;

fn fx(bytes: &[u8]) -> u64 {
    let mut h = FxHasher::default();
    h.write(bytes);
    h.finish()
}

/// Streams `Debug` renderings straight into an `FxHasher`, skipping the
/// intermediate `String` a format-then-hash pass would allocate — at
/// 512 routers those allocations are a measurable slice of a warm
/// session once everything else is memoized.
struct HashWriter<'a>(&'a mut FxHasher);

impl std::fmt::Write for HashWriter<'_> {
    fn write_str(&mut self, s: &str) -> std::fmt::Result {
        self.0.write(s.as_bytes());
        Ok(())
    }
}

/// Re-verification strategy for a session. Default: incremental on,
/// parallel off — the `--no-incremental` / `--parallel-verify` fleet
/// flags map straight onto the two fields.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct VerifyMode {
    /// Memoize per-device verdicts across rounds and re-verify only the
    /// dirty set after each edit (plus defer unobservable sims).
    pub incremental: bool,
    /// Fan the one-time per-device sweeps out over scoped threads with
    /// pooled managers. Implies the incremental bookkeeping.
    pub parallel: bool,
}

impl Default for VerifyMode {
    fn default() -> Self {
        VerifyMode {
            incremental: true,
            parallel: false,
        }
    }
}

impl VerifyMode {
    /// The historical schedule: full re-verification every round.
    pub fn full() -> Self {
        VerifyMode {
            incremental: false,
            parallel: false,
        }
    }
}

/// Maps a rectification edit to the devices whose import/export
/// reachability can change: the edited device plus its internal BGP
/// neighbors, precomputed from the scenario topology.
#[derive(Debug, Clone)]
pub struct DependencyTracker {
    neighbors: BTreeMap<String, Vec<String>>,
}

impl DependencyTracker {
    /// Builds the tracker from the scenario's internal BGP adjacency.
    /// Reads each router's interface peer list directly — one pass over
    /// the edges — rather than `Topology::internal_neighbors_of`, whose
    /// all-pairs probing is quadratic in the router count and was the
    /// single largest fixed cost of an incremental session on the
    /// 512-router families. Same sets: an interface's `peer_router` is
    /// exactly what `internal_neighbors_of` probes for.
    pub fn new(scenario: &Scenario) -> Self {
        let internal: BTreeSet<&str> = scenario
            .topology
            .internal_routers()
            .map(|r| r.name.as_str())
            .collect();
        let neighbors = scenario
            .topology
            .internal_routers()
            .map(|r| {
                (
                    r.name.clone(),
                    r.interfaces
                        .iter()
                        .filter(|i| internal.contains(i.peer_router.as_str()))
                        .map(|i| i.peer_router.clone())
                        .collect(),
                )
            })
            .collect();
        DependencyTracker { neighbors }
    }

    /// The dirty set of an edit to `device`: the device itself plus its
    /// internal BGP neighbors. Every device outside this set keeps a
    /// byte-identical rendered config and verdict across the edit — the
    /// soundness property the `cosynth-fleet` test suite pins.
    pub fn dirty_of(&self, device: &str) -> BTreeSet<String> {
        let mut dirty = BTreeSet::from([device.to_string()]);
        if let Some(ns) = self.neighbors.get(device) {
            dirty.extend(ns.iter().cloned());
        }
        dirty
    }
}

/// A memoized verdict and the fingerprint of the config text it was
/// computed from (the text is the verdict's entire input besides the
/// immutable scenario, so the fingerprint doubles as a soundness
/// witness for the dirty-set bookkeeping).
#[derive(Clone)]
struct MemoEntry {
    textfx: u64,
    verdict: Option<Localization>,
}

/// A cross-session local verdict: the parsed device (reused by the
/// deferred whole-network simulation) plus the first local finding.
pub(crate) struct CachedLocal {
    pub(crate) device: config_ir::Device,
    pub(crate) verdict: Option<Localization>,
}

/// The two memo-key bases of one device, fixed for a topology+policy
/// pair: the local base hashes the router's topology spec and check
/// set, the campion base its name and prompt. The full memo key appends
/// the config-text fingerprint.
#[derive(Clone, Copy)]
struct DeviceKeys {
    local: u64,
    campion: u64,
}

/// Everything a repair session derives from the scenario that is a pure
/// function of `(topology, policies)`: the modular assignments, the
/// per-device memo-key bases, the assignment index of each router, and
/// the dependency tracker. Built once per `(topology, policies)` per
/// worker and shared via `Arc` — a session on a pinned family pays one
/// streamed topology hash instead of re-deriving ~n prompts, keys, and
/// adjacency lists.
pub(crate) struct SessionStatics {
    assignments: Arc<Vec<RouterAssignment>>,
    /// Memo-key bases, aligned with `assignments`.
    keys: Vec<DeviceKeys>,
    /// Assignment index of each internal router.
    index: HashMap<String, usize>,
    tracker: DependencyTracker,
}

impl SessionStatics {
    fn build(scenario: &Scenario) -> Self {
        let assignments = Modularizer::assign_scenario(scenario);
        let spec_hash: HashMap<&str, u64> = scenario
            .topology
            .routers
            .iter()
            .map(|r| {
                let mut h = FxHasher::default();
                r.hash(&mut h);
                (r.name.as_str(), h.finish())
            })
            .collect();
        let keys = assignments
            .iter()
            .map(|a| {
                let mut h = FxHasher::default();
                h.write(
                    &spec_hash
                        .get(a.name.as_str())
                        .copied()
                        .unwrap_or_default()
                        .to_le_bytes(),
                );
                let _ = write!(HashWriter(&mut h), "{:?}", a.checks);
                let local = h.finish();
                let mut h = FxHasher::default();
                h.write(a.name.as_bytes());
                h.write(a.prompt.as_bytes());
                DeviceKeys {
                    local,
                    campion: h.finish(),
                }
            })
            .collect();
        let index = assignments
            .iter()
            .enumerate()
            .map(|(i, a)| (a.name.clone(), i))
            .collect();
        SessionStatics {
            assignments: Arc::new(assignments),
            keys,
            index,
            tracker: DependencyTracker::new(scenario),
        }
    }
}

/// Entries per cross-session verdict map before the map is cleared
/// wholesale. A worker pinned to one large family needs one entry per
/// device per distinct config text — a few thousand covers every family
/// with room for the faulted/repaired variants; clearing on overflow
/// only costs recomputation, never correctness.
const CROSS_CAP: usize = 4096;

/// Distinct `(topology, policies)` bundles kept per worker — one per
/// family the worker has seen.
const STATICS_CAP: usize = 64;

/// The **worker-lifetime** verdict memo, resident in the
/// [`VerifierContext`] next to the manager pool.
///
/// Per-device verdicts are pure functions of `(own topology spec, check
/// set, config text)` — local — and `(assignment name, prompt, config
/// text)` — campion. On the internet-scale families the fleet pins one
/// topology per `(seed, family)` and varies only the intent and fault
/// per session, so almost every device of session *k+1* carries the
/// same spec, checks, and text as in session *k*: a resident worker can
/// answer those sweeps from this memo without recomputing anything.
///
/// Keys are `(input fingerprint, text fingerprint)` 64-bit FxHash
/// pairs; a wrong answer needs a collision on both halves
/// simultaneously (~2⁻¹²⁸ per candidate pair), which is treated as
/// impossible. Only the **incremental** verifier consults the memo —
/// `--no-incremental` keeps the historical recompute-everything path
/// untouched — and hits return clones of pure values, so session
/// content stays byte-identical across modes and across worker
/// placements.
#[derive(Default)]
pub(crate) struct VerdictMemo {
    local: HashMap<(u64, u64), CachedLocal>,
    campion: HashMap<(u64, u64), Option<Localization>>,
    /// Whole-network check reports, keyed on `(topology + expectations,
    /// every internal config text)` — `check_scenario` is pure in
    /// exactly those inputs, so sessions that converge back to the same
    /// snapshot (the common case: a repair restores the reference text)
    /// share one simulation.
    global: HashMap<(u64, u64), crate::composer::GlobalCheckReport>,
    /// Whole-sweep localizations, keyed on `(topology + policies, every
    /// internal config text)`. The sweep is pure in exactly those
    /// inputs (assignment order, checks, and prompts all derive from
    /// topology + policies), so a snapshot the worker has swept before
    /// — above all the per-intent reference snapshot every converging
    /// session ends on, whose clean sweep is the costliest scan of the
    /// session — returns its verdict for the cost of hashing the texts.
    sweep: HashMap<(u64, u64), Option<Localization>>,
    /// Scenario-static bundles, keyed on `(topology fingerprint,
    /// policies fingerprint)`.
    statics: HashMap<(u64, u64), Arc<SessionStatics>>,
    /// Sweep verdicts answered from the memo.
    pub(crate) hits: usize,
    /// Sweep verdicts computed (and inserted).
    pub(crate) misses: usize,
}

impl VerdictMemo {
    fn insert_local(&mut self, key: (u64, u64), entry: CachedLocal) {
        if self.local.len() >= CROSS_CAP {
            self.local.clear();
        }
        self.local.insert(key, entry);
    }

    fn insert_campion(&mut self, key: (u64, u64), verdict: Option<Localization>) {
        if self.campion.len() >= CROSS_CAP {
            self.campion.clear();
        }
        self.campion.insert(key, verdict);
    }

    fn insert_global(&mut self, key: (u64, u64), report: crate::composer::GlobalCheckReport) {
        if self.global.len() >= CROSS_CAP {
            self.global.clear();
        }
        self.global.insert(key, report);
    }

    fn insert_sweep(&mut self, key: (u64, u64), verdict: Option<Localization>) {
        if self.sweep.len() >= CROSS_CAP {
            self.sweep.clear();
        }
        self.sweep.insert(key, verdict);
    }

    fn insert_statics(&mut self, key: (u64, u64), statics: Arc<SessionStatics>) {
        if self.statics.len() >= STATICS_CAP {
            self.statics.clear();
        }
        self.statics.insert(key, statics);
    }
}

/// Session-scoped incremental re-verification state: the shared
/// scenario statics plus the two per-device verdict memos (index-
/// aligned with the assignments). Created per repair session by
/// `RepairSession::run_in` when [`VerifyMode::incremental`] is on.
pub(crate) struct IncrementalVerifier {
    statics: Arc<SessionStatics>,
    parallel: bool,
    /// FxHash of everything `check_scenario` reads besides the configs:
    /// the topology fingerprint plus the expectations. Scenarios at
    /// different indices that share topology and intent collide here on
    /// purpose — that is what lets their simulations share a memo entry.
    scenario_hash: u64,
    /// Input-side base of the whole-sweep memo key: topology +
    /// policies, i.e. everything a sweep reads besides the configs.
    sweep_base: u64,
    local: Vec<Option<MemoEntry>>,
    campion: Vec<Option<MemoEntry>>,
}

/// Below this many missing verdicts the fan-out costs more than it
/// saves (thread spawn + manager shuffling); the sweep stays sequential.
const PARALLEL_THRESHOLD: usize = 8;

/// Upper bound on worker threads for one fan-out.
const MAX_WORKERS: usize = 8;

/// A worker-memo key: `(input fingerprint, config-text fingerprint)`.
type MemoKey = (u64, u64);
/// One local-prefill work item: device index, memo key, pooled manager.
type LocalItem = (usize, MemoKey, bdd::Manager);
/// One campion-prefill work item: device index, campion key, local key
/// (the local key lets a worker reuse the memoized parse).
type CampionItem = (usize, MemoKey, MemoKey);

fn worker_count(items: usize) -> usize {
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
        .min(MAX_WORKERS)
        .min(items)
        .max(1)
}

impl IncrementalVerifier {
    pub(crate) fn new(scenario: &Scenario, parallel: bool, ctx: &mut VerifierContext) -> Self {
        // The topology fingerprint is the session's only O(network)
        // hashing cost; everything derived from it comes out of the
        // worker memo on a pinned family. Field-walk hashing via the
        // derived `Hash` impls — an order of magnitude cheaper than
        // rendering `Debug` text at 512 routers.
        let mut h = FxHasher::default();
        scenario.topology.routers.hash(&mut h);
        let topo_hash = h.finish();
        let mut p = FxHasher::default();
        scenario.policies.hash(&mut p);
        let skey = (topo_hash, p.finish());
        let statics = match ctx.memo.statics.get(&skey) {
            Some(s) => Arc::clone(s),
            None => {
                let s = Arc::new(SessionStatics::build(scenario));
                ctx.memo.insert_statics(skey, Arc::clone(&s));
                s
            }
        };
        let mut h = FxHasher::default();
        h.write(&topo_hash.to_le_bytes());
        scenario.expectations.hash(&mut h);
        let mut sb = FxHasher::default();
        sb.write(&skey.0.to_le_bytes());
        sb.write(&skey.1.to_le_bytes());
        let n = statics.assignments.len();
        IncrementalVerifier {
            statics,
            parallel,
            scenario_hash: h.finish(),
            sweep_base: sb.finish(),
            local: vec![None; n],
            campion: vec![None; n],
        }
    }

    /// The session's modular assignments, shared with every other
    /// session on the same `(topology, policies)` pair.
    pub(crate) fn assignments(&self) -> Arc<Vec<RouterAssignment>> {
        Arc::clone(&self.statics.assignments)
    }

    /// The deferred whole-network check. Two memo layers, both sound by
    /// purity of `check_scenario` in `(topology, expectations, configs)`:
    /// the whole **report** is served from the worker memo when this
    /// exact snapshot was simulated before (sessions that converge back
    /// to the reference text share one simulation), and on a report
    /// miss the parse hook serves clones of devices the sweeps already
    /// parsed instead of re-parsing every internal router. Devices the
    /// memo does not hold — evicted, or never swept this session — are
    /// parsed fresh, so the report is byte-identical to the hook-free
    /// path either way.
    pub(crate) fn check_global(
        &self,
        scenario: &Scenario,
        configs: &BTreeMap<String, String>,
        ctx: &mut VerifierContext,
    ) -> crate::composer::GlobalCheckReport {
        let mut h = FxHasher::default();
        for (name, text) in configs {
            h.write(name.as_bytes());
            h.write(&[0]);
            h.write(text.as_bytes());
            h.write(&[1]);
        }
        let key = (self.scenario_hash, h.finish());
        if let Some(report) = ctx.memo.global.get(&key) {
            ctx.memo.hits += 1;
            return report.clone();
        }
        ctx.memo.misses += 1;
        let statics = &self.statics;
        let memo = &ctx.memo;
        let report = crate::composer::check_scenario_with(scenario, configs, |name, text| {
            if let Some(&i) = statics.index.get(name) {
                let k = statics.keys[i];
                if let Some(c) = memo.local.get(&(k.local, fx(text.as_bytes()))) {
                    return c.device.clone();
                }
            }
            crate::composer::parse_internal(name, text)
        });
        ctx.memo.insert_global(key, report.clone());
        report
    }

    /// Drops the memo entries of every device in the edit's dirty set;
    /// the next sweep recomputes exactly those.
    pub(crate) fn invalidate_edit(&mut self, device: &str) {
        for d in self.statics.tracker.dirty_of(device) {
            if let Some(&i) = self.statics.index.get(&d) {
                self.local[i] = None;
                self.campion[i] = None;
            }
        }
    }

    /// The memoized sweep: identical semantics to `repair::localize`
    /// (assignment order, first local finding wins, campion only when
    /// all local channels are silent), with verdicts served from the
    /// memo where the dependency tracker proved them still valid.
    ///
    /// The whole sweep is itself a pure function of `(topology,
    /// policies, configs)`, so a snapshot the worker has swept before is
    /// answered from the worker memo for the cost of hashing the config
    /// texts — the per-intent reference snapshot every converging
    /// session ends on makes this the common case on a pinned family.
    pub(crate) fn localize(
        &mut self,
        scenario: &Scenario,
        configs: &BTreeMap<String, String>,
        ctx: &mut VerifierContext,
    ) -> Option<Localization> {
        let mut h = FxHasher::default();
        for (name, text) in configs {
            h.write(name.as_bytes());
            h.write(&[0]);
            h.write(text.as_bytes());
            h.write(&[1]);
        }
        let skey = (self.sweep_base, h.finish());
        if let Some(v) = ctx.memo.sweep.get(&skey) {
            ctx.memo.hits += 1;
            return v.clone();
        }
        let verdict = self.localize_uncached(scenario, configs, ctx);
        ctx.memo.insert_sweep(skey, verdict.clone());
        verdict
    }

    fn localize_uncached(
        &mut self,
        scenario: &Scenario,
        configs: &BTreeMap<String, String>,
        ctx: &mut VerifierContext,
    ) -> Option<Localization> {
        let statics = Arc::clone(&self.statics);
        if self.parallel {
            self.prefill_local(scenario, &statics, configs, ctx);
        }
        for (i, assignment) in statics.assignments.iter().enumerate() {
            let Some(text) = configs.get(&assignment.name) else {
                continue;
            };
            let verdict = match &self.local[i] {
                Some(m) => {
                    debug_assert_eq!(
                        m.textfx,
                        fx(text.as_bytes()),
                        "memo entry for {} outlived an edit the tracker missed",
                        assignment.name
                    );
                    m.verdict.clone()
                }
                None => {
                    let textfx = fx(text.as_bytes());
                    let tkey = (statics.keys[i].local, textfx);
                    let cached = ctx.memo.local.get(&tkey).map(|c| c.verdict.clone());
                    let verdict = match cached {
                        Some(v) => {
                            ctx.memo.hits += 1;
                            v
                        }
                        None => {
                            ctx.memo.misses += 1;
                            let (device, verdict) =
                                repair::local_verdict_in(scenario, assignment, text, ctx);
                            ctx.memo.insert_local(
                                tkey,
                                CachedLocal {
                                    device,
                                    verdict: verdict.clone(),
                                },
                            );
                            verdict
                        }
                    };
                    self.local[i] = Some(MemoEntry {
                        textfx,
                        verdict: verdict.clone(),
                    });
                    verdict
                }
            };
            if verdict.is_some() {
                return verdict;
            }
        }
        if self.parallel {
            self.prefill_campion(&statics, configs, ctx);
        }
        for (i, assignment) in statics.assignments.iter().enumerate() {
            let Some(text) = configs.get(&assignment.name) else {
                continue;
            };
            let verdict = match &self.campion[i] {
                Some(m) => {
                    debug_assert_eq!(
                        m.textfx,
                        fx(text.as_bytes()),
                        "campion memo for {} outlived an edit the tracker missed",
                        assignment.name
                    );
                    m.verdict.clone()
                }
                None => {
                    let textfx = fx(text.as_bytes());
                    let keys = statics.keys[i];
                    let ckey = (keys.campion, textfx);
                    let cached = ctx.memo.campion.get(&ckey).cloned();
                    let verdict = match cached {
                        Some(v) => {
                            ctx.memo.hits += 1;
                            v
                        }
                        None => {
                            ctx.memo.misses += 1;
                            // The device passed its local channels this
                            // round, so the reparse is warning-free —
                            // and skippable when the worker memo still
                            // holds the parse.
                            let device = match ctx.memo.local.get(&(keys.local, textfx)) {
                                Some(c) => c.device.clone(),
                                None => repair::parse_device(text, &assignment.name).device,
                            };
                            let verdict =
                                repair::campion_verdict_in(assignment, text, &device, ctx);
                            ctx.memo.insert_campion(ckey, verdict.clone());
                            verdict
                        }
                    };
                    self.campion[i] = Some(MemoEntry {
                        textfx,
                        verdict: verdict.clone(),
                    });
                    verdict
                }
            };
            if verdict.is_some() {
                return verdict;
            }
        }
        None
    }

    /// Computes every missing local verdict on scoped worker threads.
    /// Each worker takes a chunk of devices and one pooled manager per
    /// device (the same count the sequential sweep would pin in the
    /// cache); built spaces come back with their fingerprint and are
    /// installed warm, so the post-fill sequential pass is all memo
    /// hits and the cache is exactly as warm as a sequential sweep
    /// would have left it.
    fn prefill_local(
        &mut self,
        scenario: &Scenario,
        statics: &SessionStatics,
        configs: &BTreeMap<String, String>,
        ctx: &mut VerifierContext,
    ) {
        // Resolve worker-memo hits inline first — a warm worker answers
        // most of the sweep without touching a thread — and fan out only
        // the true misses.
        let mut todo: Vec<(usize, MemoKey)> = Vec::new();
        for (i, a) in statics.assignments.iter().enumerate() {
            if self.local[i].is_some() {
                continue;
            }
            let Some(text) = configs.get(&a.name) else {
                continue;
            };
            let textfx = fx(text.as_bytes());
            let tkey = (statics.keys[i].local, textfx);
            match ctx.memo.local.get(&tkey) {
                Some(c) => {
                    ctx.memo.hits += 1;
                    self.local[i] = Some(MemoEntry {
                        textfx,
                        verdict: c.verdict.clone(),
                    });
                }
                None => todo.push((i, tkey)),
            }
        }
        if todo.len() < PARALLEL_THRESHOLD {
            return;
        }
        let workers = worker_count(todo.len());
        let mut work: Vec<Vec<LocalItem>> = (0..workers).map(|_| Vec::new()).collect();
        for (j, (i, tkey)) in todo.into_iter().enumerate() {
            work[j % workers].push((i, tkey, ctx.pool.acquire()));
        }
        let results = std::thread::scope(|s| {
            let handles: Vec<_> = work
                .into_iter()
                .map(|chunk| {
                    s.spawn(move || {
                        chunk
                            .into_iter()
                            .map(|(i, tkey, mgr)| {
                                let a = &statics.assignments[i];
                                let text = configs[&a.name].as_str();
                                let (device, verdict, built) =
                                    repair::local_verdict_standalone(scenario, a, text, mgr);
                                (i, tkey, device, verdict, built)
                            })
                            .collect::<Vec<_>>()
                    })
                })
                .collect();
            handles
                .into_iter()
                .flat_map(|h| h.join().expect("local-verdict worker panicked"))
                .collect::<Vec<_>>()
        });
        for (i, tkey, device, verdict, built) in results {
            match built {
                Ok((fingerprint, space)) => {
                    let start = std::time::Instant::now();
                    ctx.cache.install(
                        &mut ctx.pool,
                        &statics.assignments[i].name,
                        fingerprint,
                        space,
                    );
                    // The build itself ran on a worker; the span records
                    // the install so SpaceBuild counts still mirror the
                    // cache's miss counter.
                    ctx.trace
                        .record(telemetry::Stage::SpaceBuild, start.elapsed());
                }
                Err(mgr) => ctx.pool.release(mgr),
            }
            ctx.memo.misses += 1;
            ctx.memo.insert_local(
                tkey,
                CachedLocal {
                    device,
                    verdict: verdict.clone(),
                },
            );
            self.local[i] = Some(MemoEntry {
                textfx: tkey.1,
                verdict,
            });
        }
    }

    /// Computes every missing campion verdict on scoped worker threads;
    /// each worker reuses one pooled manager across its whole chunk.
    fn prefill_campion(
        &mut self,
        statics: &SessionStatics,
        configs: &BTreeMap<String, String>,
        ctx: &mut VerifierContext,
    ) {
        // Same shape as the local prefill: worker-memo hits inline,
        // threads only for the misses. Each fan-out item carries both
        // its campion key and its local key so a worker can reuse the
        // memoized parse instead of re-parsing the text.
        let mut todo: Vec<CampionItem> = Vec::new();
        for (i, a) in statics.assignments.iter().enumerate() {
            if self.campion[i].is_some() {
                continue;
            }
            let Some(text) = configs.get(&a.name) else {
                continue;
            };
            let keys = statics.keys[i];
            let textfx = fx(text.as_bytes());
            let ckey = (keys.campion, textfx);
            match ctx.memo.campion.get(&ckey) {
                Some(v) => {
                    ctx.memo.hits += 1;
                    self.campion[i] = Some(MemoEntry {
                        textfx,
                        verdict: v.clone(),
                    });
                }
                None => todo.push((i, ckey, (keys.local, textfx))),
            }
        }
        if todo.len() < PARALLEL_THRESHOLD {
            return;
        }
        let workers = worker_count(todo.len());
        let mut work: Vec<(Vec<CampionItem>, bdd::Manager)> = (0..workers)
            .map(|_| (Vec::new(), ctx.pool.acquire()))
            .collect();
        for (j, item) in todo.into_iter().enumerate() {
            work[j % workers].0.push(item);
        }
        let memo = &ctx.memo;
        let results = std::thread::scope(|s| {
            let handles: Vec<_> = work
                .into_iter()
                .map(|(chunk, mut mgr)| {
                    s.spawn(move || {
                        let mut out = Vec::with_capacity(chunk.len());
                        for (i, ckey, lkey) in chunk {
                            let a = &statics.assignments[i];
                            let text = configs[&a.name].as_str();
                            let device = match memo.local.get(&lkey) {
                                Some(c) => c.device.clone(),
                                None => repair::parse_device(text, &a.name).device,
                            };
                            let (verdict, back) =
                                repair::campion_verdict_with(a, text, &device, mgr);
                            mgr = back;
                            out.push((i, ckey, lkey.1, verdict));
                        }
                        (out, mgr)
                    })
                })
                .collect();
            handles
                .into_iter()
                .map(|h| h.join().expect("campion worker panicked"))
                .collect::<Vec<_>>()
        });
        for (chunk, mgr) in results {
            ctx.pool.release(mgr);
            for (i, ckey, textfx, verdict) in chunk {
                ctx.memo.misses += 1;
                ctx.memo.insert_campion(ckey, verdict.clone());
                self.campion[i] = Some(MemoEntry { textfx, verdict });
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_mode_is_incremental_sequential() {
        assert_eq!(
            VerifyMode::default(),
            VerifyMode {
                incremental: true,
                parallel: false
            }
        );
        assert!(!VerifyMode::full().incremental);
    }

    #[test]
    fn dirty_set_is_the_edit_plus_its_internal_neighbors() {
        let scenario = scenario_gen::generate(1, 0); // chain family
        let tracker = DependencyTracker::new(&scenario);
        let internal: Vec<String> = scenario
            .topology
            .internal_routers()
            .map(|r| r.name.clone())
            .collect();
        for name in &internal {
            let dirty = tracker.dirty_of(name);
            assert!(dirty.contains(name), "the edit itself is always dirty");
            for d in &dirty {
                assert!(
                    d == name || scenario.topology.has_link(name, d),
                    "{d} is dirty for an edit to {name} without an adjacency"
                );
            }
            // Everything outside the set is a non-neighbor.
            for other in &internal {
                if !dirty.contains(other) {
                    assert!(!scenario.topology.has_link(name, other));
                }
            }
        }
        // A chain interior router has exactly two internal neighbors.
        let mid = &internal[1];
        assert_eq!(tracker.dirty_of(mid).len(), 3);
    }

    #[test]
    fn dirty_set_stays_bounded_on_large_families() {
        // The whole point: on the 144-router fat tree the dirty set of
        // any edit is a bounded neighborhood, not the network.
        let scenario = scenario_gen::generate_family("fat-tree-144", 1, 0);
        let tracker = DependencyTracker::new(&scenario);
        let n = scenario.topology.internal_routers().count();
        assert_eq!(n, 144);
        for r in scenario.topology.internal_routers() {
            let dirty = tracker.dirty_of(&r.name);
            assert!(
                dirty.len() <= 17,
                "{}: dirty set of {} devices on a degree-bounded topology",
                r.name,
                dirty.len()
            );
        }
    }

    #[test]
    fn session_statics_are_shared_across_sessions_on_a_pinned_family() {
        // Two sessions on the same (seed, family) share the topology;
        // when they also share the intent (and thus the policies) the
        // second must reuse the first's statics bundle. A different
        // seed — different topology — must not.
        let mut ctx = VerifierContext::new();
        let a = scenario_gen::generate_family("as-graph-64", 3, 0);
        let b = (1..32)
            .map(|i| scenario_gen::generate_family("as-graph-64", 3, i))
            .find(|s| s.intent == a.intent)
            .expect("some later index repeats the intent");
        assert_eq!(a.policies, b.policies, "same intent, same policies");
        let v1 = IncrementalVerifier::new(&a, false, &mut ctx);
        let v2 = IncrementalVerifier::new(&b, false, &mut ctx);
        assert!(Arc::ptr_eq(&v1.statics, &v2.statics));
        let c = scenario_gen::generate_family("as-graph-64", 4, 0);
        let mut c2 = c.clone();
        c2.policies = a.policies.clone();
        let v3 = IncrementalVerifier::new(&c2, false, &mut ctx);
        assert!(
            !Arc::ptr_eq(&v1.statics, &v3.statics),
            "a different topology must not share statics even with equal policies"
        );
    }
}

//! Per-router-draft symbolic space cache.
//!
//! The VPP loop re-verifies every candidate config a model emits, and
//! each symbolic local check used to rebuild its `RouteSpace` (a BDD
//! manager pre-sized for the 40+ variable route encoding, plus the
//! compiled policy transfer) from scratch — the dominant cost of chain
//! and star sessions measured in `BENCH_scenarios.json`. This cache
//! keys one space per router on a fingerprint of the draft's config IR
//! (plus the check set, which fixes the community universe):
//!
//! * **Hit** — the draft parsed to the same IR as the cached one (the
//!   common case: a failed rectification attempt returns the previous
//!   config verbatim, and a round that fails in the syntax or topology
//!   phase never reaches the symbolic checks at all), so the warm
//!   space with its populated BDD unique table and op caches is reused.
//! * **Miss / invalidation** — a rectification edit changed the
//!   router's IR, so the entry is replaced. Only that router's entry is
//!   touched; other routers' spaces survive the whole session.
//!
//! Sharing one space across a draft's checks is sound because
//! [`bf_lite::space_for_checks`] includes every check's community up
//! front, and a community variable unconstrained by both policy and
//! query never appears on a counterexample path — witnesses are
//! byte-identical to the uncached per-check spaces, which is what keeps
//! fleet leverage/convergence fields reproducible across kernels.

use bdd::FxHasher;
use bf_lite::LocalPolicyCheck;
use config_ir::Device;
use policy_symbolic::RouteSpace;
use std::collections::BTreeMap;
use std::hash::Hasher;

/// One cached space and the draft fingerprint it was built for.
struct Entry {
    fingerprint: u64,
    space: RouteSpace,
}

/// Session-scoped cache: one [`RouteSpace`] per router name, invalidated
/// by config-IR fingerprint. Create one per synthesis session and pass
/// it through the rectification loop.
#[derive(Default)]
pub struct RouteSpaceCache {
    entries: BTreeMap<String, Entry>,
    /// Lookups answered by a cached space.
    pub hits: usize,
    /// Lookups that (re)built the space — first sight of a router or a
    /// rectification edit to it.
    pub misses: usize,
}

impl RouteSpaceCache {
    /// An empty cache.
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of routers with a live cached space.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether no spaces are cached.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// The space for `router`'s current draft, rebuilt iff the draft's
    /// IR (or the check set) changed since the last call. Builds are
    /// fresh (unpooled); resident workers use
    /// [`RouteSpaceCache::space_for_in`] via
    /// [`crate::verifier_ctx::VerifierContext`] instead.
    pub fn space_for(
        &mut self,
        router: &str,
        device: &Device,
        checks: &[LocalPolicyCheck],
    ) -> &mut RouteSpace {
        let mut pool = crate::verifier_ctx::ManagerPool::disabled();
        self.space_for_in(&mut pool, router, device, checks)
    }

    /// [`RouteSpaceCache::space_for`] with (re)builds drawing their BDD
    /// manager from `pool` — and invalidated entries releasing theirs
    /// back to it — so a worker amortizes table allocation across every
    /// session it runs. Verdicts and witnesses are bit-identical to the
    /// fresh path.
    pub fn space_for_in(
        &mut self,
        pool: &mut crate::verifier_ctx::ManagerPool,
        router: &str,
        device: &Device,
        checks: &[LocalPolicyCheck],
    ) -> &mut RouteSpace {
        let fingerprint = ir_fingerprint(device, checks);
        let hit = self
            .entries
            .get(router)
            .is_some_and(|e| e.fingerprint == fingerprint);
        if hit {
            self.hits += 1;
        } else {
            self.misses += 1;
            // Release the stale manager *before* acquiring, so an
            // invalidated entry's own manager can serve its rebuild
            // instead of forcing a fresh allocation per invalidation.
            if let Some(stale) = self.entries.remove(router) {
                pool.release(stale.space.into_manager());
            }
            let space = bf_lite::space_for_checks_in(pool.acquire(), device, checks);
            self.entries
                .insert(router.to_string(), Entry { fingerprint, space });
        }
        &mut self.entries.get_mut(router).expect("just ensured").space
    }

    /// Installs a space built *outside* the cache — the parallel sweep
    /// builds spaces on worker threads, where the cache cannot be
    /// borrowed — releasing any stale entry's manager to `pool`.
    /// Counted as a miss: the build happened, just elsewhere, so the
    /// hit/miss ledger keeps meaning "lookups answered warm" vs
    /// "spaces built".
    pub fn install(
        &mut self,
        pool: &mut crate::verifier_ctx::ManagerPool,
        router: &str,
        fingerprint: u64,
        space: RouteSpace,
    ) {
        self.misses += 1;
        if let Some(stale) = self.entries.remove(router) {
            pool.release(stale.space.into_manager());
        }
        self.entries
            .insert(router.to_string(), Entry { fingerprint, space });
    }

    /// The cached space for `router`, if one is live — a plain map
    /// lookup with no fingerprint work. Used by
    /// [`crate::verifier_ctx::VerifierContext`] to re-borrow the space
    /// it just ensured after recording the lookup's timing.
    pub fn space_mut(&mut self, router: &str) -> Option<&mut RouteSpace> {
        self.entries.get_mut(router).map(|e| &mut e.space)
    }

    /// Empties the cache, yielding every cached space (so a pool can
    /// reclaim the managers). Counters are left untouched.
    pub fn drain(&mut self) -> Vec<RouteSpace> {
        std::mem::take(&mut self.entries)
            .into_values()
            .map(|e| e.space)
            .collect()
    }
}

/// Fingerprints a draft's config IR together with its check set.
///
/// The IR's `Debug` form is a complete rendering of the lowered config
/// (policies, sets, interfaces, BGP stanzas), so hashing it captures
/// exactly the inputs the symbolic space depends on — while drafts that
/// differ only in surface text (whitespace, comments, stanza order the
/// lowering normalizes) still share a fingerprint. The checks fix the
/// extra community variables `space_for_checks` adds. The rendering is
/// streamed straight into the hasher via a `fmt::Write` adapter — no
/// intermediate `String` per round.
pub fn ir_fingerprint(device: &Device, checks: &[LocalPolicyCheck]) -> u64 {
    use std::fmt::Write as _;
    let mut w = HashWriter(FxHasher::default());
    let _ = write!(w, "{device:?}");
    for c in checks {
        let _ = write!(w, "{c:?}");
    }
    w.0.finish()
}

/// `fmt::Write` → `Hasher` adapter for [`ir_fingerprint`].
struct HashWriter(FxHasher);

impl std::fmt::Write for HashWriter {
    fn write_str(&mut self, s: &str) -> std::fmt::Result {
        self.0.write(s.as_bytes());
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use config_ir::{ClauseAction, IrClause, IrPolicy, Modifier};
    use std::collections::BTreeSet;

    fn tagging_device(name: &str, community: &str) -> Device {
        let mut d = Device::named(name);
        let mut p = IrPolicy::new("ADD_COMM");
        p.clauses.push(IrClause {
            id: "10".into(),
            action: ClauseAction::Permit,
            conditions: vec![],
            modifiers: vec![Modifier::SetCommunities {
                communities: BTreeSet::from([community.parse().unwrap()]),
                additive: true,
            }],
        });
        d.policies.push(p);
        d
    }

    fn carry_check(community: &str) -> LocalPolicyCheck {
        LocalPolicyCheck::PermittedRoutesCarry {
            chain: vec!["ADD_COMM".into()],
            community: community.parse().unwrap(),
        }
    }

    #[test]
    fn same_draft_hits_different_draft_misses() {
        let mut cache = RouteSpaceCache::new();
        let d = tagging_device("r1", "100:1");
        let checks = [carry_check("100:1")];
        let _ = cache.space_for("r1", &d, &checks);
        let _ = cache.space_for("r1", &d, &checks);
        assert_eq!((cache.hits, cache.misses), (1, 1));
        // A second router gets its own entry without evicting the first.
        let d2 = tagging_device("r2", "100:1");
        let _ = cache.space_for("r2", &d2, &checks);
        assert_eq!(cache.len(), 2);
        assert_eq!((cache.hits, cache.misses), (1, 2));
    }

    #[test]
    fn rectification_edit_invalidates_stale_space() {
        let mut cache = RouteSpaceCache::new();
        let d = tagging_device("r1", "100:1");
        let checks = [carry_check("100:1")];
        let space = cache.space_for("r1", &d, &checks);
        assert!(
            space.community_var("200:2".parse().unwrap()).is_none(),
            "community 200:2 must not be in the pre-edit universe"
        );
        // The rectified draft tags a different community: the stale
        // space (whose universe lacks it) must NOT be reused.
        let rectified = tagging_device("r1", "200:2");
        let checks2 = [carry_check("200:2")];
        let space = cache.space_for("r1", &rectified, &checks2);
        assert!(
            space.community_var("200:2".parse().unwrap()).is_some(),
            "invalidation must rebuild the space over the new universe"
        );
        assert_eq!((cache.hits, cache.misses), (0, 2));
        assert_eq!(cache.len(), 1, "replaced in place, not accumulated");
    }

    #[test]
    fn cached_and_fresh_spaces_agree_on_verdicts_and_witnesses() {
        let mut cache = RouteSpaceCache::new();
        // A buggy draft (tags nothing) checked twice through the cache
        // must yield the identical witness a fresh space yields.
        let mut d = Device::named("r1");
        let mut p = IrPolicy::new("ADD_COMM");
        p.clauses.push(IrClause::permit_all("10"));
        d.policies.push(p);
        let checks = [carry_check("100:1")];
        let fresh = bf_lite::check_local_policy(&d, &checks[0]);
        let via_cache = {
            let space = cache.space_for("r1", &d, &checks);
            bf_lite::check_local_policy_in(space, &d, &checks[0])
        };
        let again = {
            let space = cache.space_for("r1", &d, &checks);
            bf_lite::check_local_policy_in(space, &d, &checks[0])
        };
        assert_eq!(fresh.clone().unwrap_err(), via_cache.unwrap_err());
        assert_eq!(fresh.unwrap_err(), again.unwrap_err());
        assert_eq!(cache.hits, 1);
    }
}

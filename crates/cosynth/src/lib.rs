//! # cosynth — Verified Prompt Programming for router configurations
//!
//! The paper's envisioned system (Figure 3), built in full: the triple
//! `(A, V, H)` where the verification suite `V` sits between the LLM `A`
//! and the human `H`, automatically converting verifier findings into
//! natural-language rectification prompts and only escalating to the
//! human when automatic correction stalls.
//!
//! ## Components (paper name → module)
//!
//! * Humanizer (Figure 2's `H` boxes) → [`humanizer`]: formulaic prompt
//!   templates with typed holes, reproducing Tables 1 and 3.
//! * IIP database → [`iip`]: initial instruction prompts loaded at the
//!   start of every chat (Section 4.2's four entries).
//! * Modularizer → [`modularizer`]: topology JSON → per-router textual
//!   descriptions + local policy specs (Lightyear-style decomposition).
//! * Composer → [`composer`]: per-router outputs reassembled into a
//!   Batfish-lite snapshot for the whole-network check.
//! * The VPP drivers → [`translation`] (use case 1: Cisco→Juniper on one
//!   router, verified by Batfish parse + Campion), [`synthesis`] (use
//!   case 2: no-transit on a star, verified by Batfish parse + topology
//!   verifier + Batfish searchRoutePolicies, then whole-network
//!   simulation), and [`repair`] (use case 3: a fault-injected running
//!   snapshot is localized through the same verifier channels and
//!   repaired, with escalation to the human rewrite when automated
//!   repair stalls).
//! * Leverage accounting → [`leverage`]: `L = automated / human` prompts.
//!   The initial task prompt is counted as neither (it exists identically
//!   in plain pair programming); human prompts are the manual correction
//!   prompts the verifier loop could not avoid.
//! * Session reports → [`report`]: regenerates Table 1, Table 2 and
//!   Table 3 from live runs.
//! * Symbolic-space cache → [`space_cache`]: one `RouteSpace` per router
//!   draft, keyed on a config-IR fingerprint and shared across the
//!   synthesize–verify–rectify iterations of a session.
//! * Verifier context → [`verifier_ctx`]: the worker-resident pairing of
//!   a recycled-BDD-manager pool with the space cache, so a resident
//!   worker amortizes table allocation across every session it runs
//!   (`run_scenario_in` / `run_in` are the pooled session entry points).
//! * Incremental re-verification → [`incremental`]: the dependency
//!   tracker + per-device verdict memo that make repair-session cost
//!   scale with the edit instead of the network, plus the parallel
//!   sweep fan-out ([`VerifyMode`] selects the strategy; content is
//!   byte-identical across modes).

pub mod composer;
pub mod humanizer;
pub mod iip;
pub mod incremental;
pub mod leverage;
pub mod modularizer;
pub mod repair;
pub mod report;
pub mod session;
pub mod space_cache;
pub mod synthesis;
pub mod translation;
pub mod verifier_ctx;

pub use composer::{check_scenario, compose_and_check, GlobalCheckReport, GlobalViolation};
pub use humanizer::Humanizer;
pub use iip::IipDatabase;
pub use incremental::{DependencyTracker, VerifyMode};
pub use leverage::Leverage;
pub use modularizer::{LocalPolicySpec, Modularizer, RouterAssignment};
pub use repair::{Localization, RepairOutcome, RepairSession};
pub use report::{scenario_table, FamilyRow};
pub use session::{LoggedPrompt, PromptKind, SessionLimits, SessionTranscript};
pub use space_cache::RouteSpaceCache;
pub use synthesis::{SpecStyle, SynthesisOutcome, SynthesisSession};
pub use translation::{ErrorRow, TranslationOutcome, TranslationSession};
pub use verifier_ctx::{ManagerPool, VerifierContext};

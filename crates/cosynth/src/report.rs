//! Report rendering: regenerates the paper's tables from live sessions.

use crate::translation::{ErrorRow, TranslationOutcome};
use crate::SynthesisOutcome;
use criterion::SampleStats;

/// Renders Table 1 (sample rectification prompts for translation) from a
/// session log: one representative automated prompt per error class.
pub fn table1(outcome: &TranslationOutcome) -> String {
    let mut out = String::from("Table 1: Sample rectification prompts for translation\n");
    let mut seen = std::collections::BTreeSet::new();
    for p in &outcome.log {
        if p.kind != crate::session::PromptKind::Auto {
            continue;
        }
        let class = if p.prompt.contains("syntax error") {
            "Syntax error"
        } else if p.prompt.contains("no corresponding") {
            "Structural mismatch"
        } else if p.prompt.contains("cost set to") || p.prompt.contains("passive set to") {
            "Attribute difference"
        } else if p.prompt.contains("performs the following action")
            || p.prompt.contains("MED value")
        {
            "Policy behavior difference"
        } else {
            continue;
        };
        if seen.insert(class) {
            out.push_str(&format!("\n[{class}]\n{}\n", p.prompt));
        }
    }
    out
}

/// Renders Table 2 (translation errors and fixability) from a session.
pub fn table2(rows: &[ErrorRow]) -> String {
    let mut out =
        String::from("Table 2: Translation errors and whether generated prompts fixed them\n");
    let w = rows
        .iter()
        .map(|r| r.error.len())
        .max()
        .unwrap_or(20)
        .max(20);
    out.push_str(&format!("{:<w$}  {:<18}  Fixed\n", "Error", "Type", w = w));
    for r in rows {
        out.push_str(&format!(
            "{:<w$}  {:<18}  {}\n",
            r.error,
            r.error_type,
            if r.fixed_by_auto { "Yes" } else { "No" },
            w = w
        ));
    }
    out
}

/// Renders Table 3 (sample rectification prompts for local synthesis)
/// from a synthesis session log.
pub fn table3(outcome: &SynthesisOutcome) -> String {
    let mut out = String::from("Table 3: Sample rectification prompts for local synthesis\n");
    let mut syntax = Vec::new();
    let mut topology = Vec::new();
    let mut semantic = Vec::new();
    for p in &outcome.log {
        if p.kind != crate::session::PromptKind::Auto {
            continue;
        }
        if p.prompt.contains("syntax error") {
            syntax.push(p.prompt.clone());
        } else if p.prompt.contains("not declared")
            || p.prompt.contains("does not match")
            || p.prompt.contains("Incorrect")
        {
            topology.push(p.prompt.clone());
        } else if p.prompt.contains("route-map") {
            semantic.push(p.prompt.clone());
        }
    }
    out.push_str("\n[Syntax error]\n");
    for p in syntax.iter().take(2) {
        out.push_str(&format!("{p}\n"));
    }
    out.push_str("\n[Topology error]\n");
    for p in topology.iter().take(7) {
        out.push_str(&format!("{p}\n"));
    }
    out.push_str("\n[Semantic error]\n");
    for p in semantic.iter().take(2) {
        out.push_str(&format!("{p}\n"));
    }
    out
}

/// Renders a leverage summary line (the Section 3.2 / 4.2 results).
pub fn leverage_line(name: &str, l: &crate::Leverage) -> String {
    format!("{name}: {l}")
}

/// One aggregate row of the fleet report: every session of one topology
/// family, reduced to the paper's metrics plus wall-clock spread.
#[derive(Debug, Clone, PartialEq)]
pub struct FamilyRow {
    /// Topology family (`star`, `ring`, `chain`, …).
    pub family: String,
    /// Sessions run.
    pub sessions: usize,
    /// Sessions whose local loops verified AND whose global expectations
    /// held.
    pub converged: usize,
    /// Sessions where local verification passed but a fault survived to
    /// the whole-network check (the composition gap the paper's final
    /// simulation step exists to catch).
    pub fault_survivals: usize,
    /// Total automated prompts across the family's sessions.
    pub auto: usize,
    /// Total human prompts.
    pub human: usize,
    /// Mean BGP simulation rounds to the fixed point.
    pub mean_sim_rounds: f64,
    /// Total backend calls across the family's sessions.
    pub llm_calls: u64,
    /// Total model cost across the family's sessions, milli-units.
    pub milli_cost: u64,
    /// Per-session wall-clock spread, milliseconds.
    pub session_ms: SampleStats,
}

impl FamilyRow {
    /// The family's aggregate leverage ratio (auto/human; bare auto when
    /// no session needed a human, as in [`crate::Leverage::ratio`]).
    pub fn leverage(&self) -> f64 {
        crate::Leverage {
            auto: self.auto,
            human: self.human,
        }
        .ratio()
    }
}

/// Renders the fleet's per-family aggregate — a Table-3-style summary of
/// scenario-generator sessions, one row per topology family.
pub fn scenario_table(rows: &[FamilyRow]) -> String {
    let mut out = String::from(
        "Table S: VPP fleet aggregate per topology family\n\
         (leverage = automated/human prompts; surv = faults surviving local checks)\n",
    );
    out.push_str(&format!(
        "{:<12} {:>5} {:>5} {:>5} {:>6} {:>6} {:>9} {:>7} {:>7} {:>8} {:>9} {:>9} {:>9}\n",
        "family",
        "runs",
        "conv",
        "surv",
        "auto",
        "human",
        "leverage",
        "rounds",
        "calls",
        "m$",
        "p10 ms",
        "med ms",
        "p90 ms"
    ));
    for r in rows {
        out.push_str(&format!(
            "{:<12} {:>5} {:>5} {:>5} {:>6} {:>6} {:>8.1}x {:>7.1} {:>7} {:>8} {:>9.1} {:>9.1} {:>9.1}\n",
            r.family,
            r.sessions,
            r.converged,
            r.fault_survivals,
            r.auto,
            r.human,
            r.leverage(),
            r.mean_sim_rounds,
            r.llm_calls,
            r.milli_cost,
            r.session_ms.p10,
            r.session_ms.median,
            r.session_ms.p90
        ));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::translation::TranslationSession;
    use crate::{SpecStyle, SynthesisSession};
    use llm_sim::{ErrorModel, SimulatedGpt4};

    const CFG: &str = "\
hostname border1
interface Loopback0
 ip address 1.2.3.4 255.255.255.255
 ip ospf cost 1
router ospf 1
 network 1.2.3.4 0.0.0.0 area 0
 passive-interface Loopback0
router bgp 100
 network 1.2.3.0 mask 255.255.255.0
 neighbor 2.3.4.5 remote-as 200
 neighbor 2.3.4.5 send-community
 neighbor 2.3.4.5 route-map to_provider out
 redistribute ospf route-map ospf_to_bgp
ip prefix-list our-networks seq 5 permit 1.2.3.0/24 ge 24
route-map to_provider permit 10
 match ip address prefix-list our-networks
 set metric 50
route-map to_provider deny 100
route-map ospf_to_bgp permit 10
";

    #[test]
    fn table2_renders_yes_no_column() {
        let mut llm = SimulatedGpt4::new(ErrorModel::paper_default(), 3);
        let outcome = TranslationSession::default().run(&mut llm, CFG);
        let t = table2(&outcome.error_rows);
        assert!(t.contains("Yes"));
        assert!(t.contains("No"));
        assert!(t.contains("Setting wrong BGP MED value"));
    }

    #[test]
    fn table1_has_multiple_classes() {
        let mut llm = SimulatedGpt4::new(ErrorModel::paper_default(), 3);
        let outcome = TranslationSession::default().run(&mut llm, CFG);
        let t = table1(&outcome);
        assert!(t.contains("[Syntax error]"), "{t}");
        assert!(t.contains("[Attribute difference]"), "{t}");
    }

    #[test]
    fn table3_collects_synthesis_prompt_classes() {
        let mut llm = SimulatedGpt4::new(ErrorModel::paper_default(), 11);
        let s = SynthesisSession {
            style: SpecStyle::Local,
            ..Default::default()
        };
        let outcome = s.run(&mut llm, 3);
        let t = table3(&outcome);
        assert!(t.contains("[Semantic error]"));
        assert!(t.contains("route-map"), "{t}");
    }

    #[test]
    fn scenario_table_renders_rows() {
        let rows = vec![FamilyRow {
            family: "ring".into(),
            sessions: 8,
            converged: 8,
            fault_survivals: 0,
            auto: 40,
            human: 5,
            mean_sim_rounds: 6.5,
            llm_calls: 52,
            milli_cost: 1300,
            session_ms: SampleStats::from_samples(&[1.0, 2.0, 4.0]).unwrap(),
        }];
        let t = scenario_table(&rows);
        assert!(t.contains("ring"), "{t}");
        assert!(t.contains("8.0x"), "{t}");
        assert!(t.contains("p90 ms"), "{t}");
        assert!(t.contains("1300"), "{t}");
        assert!(t.contains(" m$"), "{t}");
    }

    #[test]
    fn leverage_line_format() {
        let l = crate::Leverage { auto: 12, human: 2 };
        let s = leverage_line("no-transit", &l);
        assert!(s.contains("no-transit"));
        assert!(s.contains("6.0x"));
    }
}

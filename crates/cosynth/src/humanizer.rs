//! The humanizer: verifier findings → natural-language rectification
//! prompts.
//!
//! "Since verifier feedback is often cryptic, we use simple code that we
//! call a humanizer that converts the feedback to natural language
//! prompts." Each template below reproduces a row of Table 1
//! (translation) or Table 3 (local synthesis); non-italic text is the
//! formula, italic fields are filled from the finding.

use campion_lite::{CampionFinding, Direction};
#[cfg(test)]
use net_model::WarningKind;
use net_model::{ParseWarning, RouteAdvertisement};
use policy_symbolic::BehaviorDiff;
use topo_model::TopologyFinding;

/// The humanizer. Stateless; templates are fixed formulas per finding
/// type, so it is a plain namespace struct (kept as a type so an expert-
/// extensible template database can hang off it later, as the paper
/// suggests for IIPs).
pub struct Humanizer;

impl Humanizer {
    /// Table 1 row 1 / Table 3 row 1: syntax errors quote the offending
    /// line (Batfish parse warnings "can be reused as prompts").
    pub fn syntax(warning: &ParseWarning) -> String {
        if warning.line == 0 {
            // Whole-config findings (e.g. missing local AS) carry their
            // message instead of a line.
            format!(
                "There is a syntax error: '{}'. {}",
                warning.text, warning.message
            )
        } else {
            format!("There is a syntax error:\n'{}'", warning.text)
        }
    }

    /// Translation findings (Table 1 rows 2–4).
    pub fn campion(finding: &CampionFinding) -> String {
        match finding {
            CampionFinding::MissingPolicy {
                neighbor,
                direction,
                in_original,
                ..
            } => {
                if *in_original {
                    format!(
                        "In the original configuration, there is an {direction} route map \
                         for bgp neighbor {neighbor}, but in the translation, there is no \
                         corresponding route map"
                    )
                } else {
                    format!(
                        "In the translation, there is an {direction} route map for bgp \
                         neighbor {neighbor}, but in the original configuration, there is \
                         no corresponding route map"
                    )
                }
            }
            CampionFinding::MissingNeighbor { addr, in_original } => {
                if *in_original {
                    format!(
                        "In the original configuration, there is a BGP neighbor {addr}, \
                         but in the translation, there is no corresponding neighbor"
                    )
                } else {
                    format!(
                        "In the translation, there is a BGP neighbor {addr} that does not \
                         exist in the original configuration"
                    )
                }
            }
            CampionFinding::MissingInterface { name, in_original } => {
                if *in_original {
                    format!(
                        "In the original configuration, there is an interface {name}, but \
                         in the translation, there is no corresponding interface"
                    )
                } else {
                    format!(
                        "In the translation, there is an interface {name} that does not \
                         exist in the original configuration"
                    )
                }
            }
            CampionFinding::MissingNetwork {
                prefix,
                in_original,
            } => {
                if *in_original {
                    format!(
                        "In the original configuration, the network {prefix} is announced \
                         in BGP, but in the translation it is not"
                    )
                } else {
                    format!(
                        "In the translation, the network {prefix} is announced in BGP, but \
                         in the original configuration it is not"
                    )
                }
            }
            CampionFinding::MissingRedistribution {
                protocol,
                in_original,
            } => {
                if *in_original {
                    format!(
                        "In the original configuration, routes are redistributed from \
                         {protocol} into BGP, but in the translation they are not"
                    )
                } else {
                    format!(
                        "In the translation, routes are redistributed from {protocol} into \
                         BGP, but in the original configuration they are not"
                    )
                }
            }
            CampionFinding::LocalAsMismatch {
                original,
                translated,
            } => format!(
                "In the original configuration, the local AS number is {original}, but in \
                 the translation it is {translated}"
            ),
            CampionFinding::RouterIdMismatch {
                original,
                translated,
            } => format!(
                "In the original configuration, the router id is {original}, but in the \
                 translation it is {translated}"
            ),
            CampionFinding::RemoteAsMismatch {
                neighbor,
                original,
                translated,
            } => format!(
                "In the original configuration, BGP neighbor {neighbor} has remote AS \
                 {}, but in the translation it has {}",
                opt(original),
                opt(translated)
            ),
            CampionFinding::InterfaceAddressDiff {
                original_name,
                translated_name,
                original,
                translated,
            } => format!(
                "In the original configuration, interface {original_name} has address {}, \
                 but in the translation, the corresponding interface {translated_name} has \
                 address {}",
                opt(original),
                opt(translated)
            ),
            CampionFinding::OspfCostDiff {
                original_name,
                translated_name,
                original,
                translated,
            } => format!(
                "In the original configuration, the OSPF link for {original_name} has cost \
                 set to {}, but in the translation, the corresponding link to \
                 {translated_name} has cost set to {}",
                opt(original),
                opt(translated)
            ),
            CampionFinding::OspfPassiveDiff {
                original_name,
                translated_name,
                original,
                translated,
            } => format!(
                "In the original configuration, the OSPF interface {original_name} has \
                 passive set to {original}, but in the translation, the corresponding \
                 interface {translated_name} has passive set to {translated}"
            ),
            CampionFinding::PolicyBehavior {
                neighbor,
                direction,
                original_policy,
                translated_policy,
                diff,
            } => Self::behavior(
                neighbor,
                *direction,
                original_policy,
                translated_policy,
                diff,
            ),
        }
    }

    /// Table 1 row 4: policy behaviour differences get an example prefix.
    fn behavior(
        neighbor: &std::net::Ipv4Addr,
        direction: Direction,
        original_policy: &Option<String>,
        translated_policy: &Option<String>,
        diff: &BehaviorDiff,
    ) -> String {
        let op = original_policy.clone().unwrap_or_else(|| "(none)".into());
        let tp = translated_policy.clone().unwrap_or_else(|| "(none)".into());
        match diff {
            BehaviorDiff::Action {
                route,
                first_permits,
            } => {
                let (a, b) = if *first_permits {
                    ("ACCEPT", "REJECT")
                } else {
                    ("REJECT", "ACCEPT")
                };
                format!(
                    "In the original configuration, for the prefix {}, the BGP {direction} \
                     policy {op} for BGP neighbor {neighbor} performs the following action: \
                     {a}. But, in the translation, the corresponding BGP {direction} policy \
                     {tp} performs the following action: {b}",
                    route.prefix
                )
            }
            BehaviorDiff::Med {
                route,
                first,
                second,
            } => format!(
                "In the original configuration, for the prefix {}, the BGP {direction} \
                 policy {op} for BGP neighbor {neighbor} sets the BGP MED value to {}. \
                 But, in the translation, the corresponding policy {tp} sets the MED \
                 value to {}",
                route.prefix,
                opt(first),
                opt(second)
            ),
            BehaviorDiff::LocalPref {
                route,
                first,
                second,
            } => format!(
                "In the original configuration, for the prefix {}, the BGP {direction} \
                 policy {op} for BGP neighbor {neighbor} sets local-preference to {}. \
                 But, in the translation, the corresponding policy {tp} sets it to {}",
                route.prefix,
                opt(first),
                opt(second)
            ),
            BehaviorDiff::Community {
                route,
                community,
                first_has,
            } => {
                let (a, b) = if *first_has {
                    ("attaches", "does not attach")
                } else {
                    ("does not attach", "attaches")
                };
                format!(
                    "In the original configuration, for the prefix {}, the BGP {direction} \
                     policy {op} for BGP neighbor {neighbor} {a} the community {community}. \
                     But, in the translation, the corresponding policy {tp} {b} it",
                    route.prefix
                )
            }
        }
    }

    /// Table 3 topology-error rows.
    pub fn topology(finding: &TopologyFinding) -> String {
        match finding {
            TopologyFinding::InterfaceAddressMismatch {
                iface,
                expected,
                found,
            } => match found {
                Some(f) => format!(
                    "Interface {iface} ip address does not match with given config. \
                     Expected {}, found {}",
                    expected.addr, f.addr
                ),
                None => format!(
                    "Interface {iface} ip address does not match with given config. \
                     Expected {}, found none",
                    expected.addr
                ),
            },
            TopologyFinding::LocalAsMismatch { expected, found } => format!(
                "Local AS number does not match. Expected {expected}, found {}",
                opt(found)
            ),
            TopologyFinding::RouterIdMismatch { expected, found } => format!(
                "Router ID does not match with given config. Expected {expected}, found {}",
                opt(found)
            ),
            TopologyFinding::NeighborNotDeclared { addr, asn } => {
                format!("Neighbor with IP address {addr} and AS {asn} not declared")
            }
            TopologyFinding::NetworkNotDeclared { prefix } => {
                format!("Network {prefix} not declared")
            }
            TopologyFinding::IncorrectNetwork { prefix, router } => format!(
                "Incorrect network declaration. {prefix} is not directly connected to {router}"
            ),
            TopologyFinding::IncorrectNeighbor { addr, asn } => format!(
                "Incorrect neighbor declaration. No neighbor with IP address {addr} AS {} found",
                opt(asn)
            ),
        }
    }

    /// Table 3's semantic-error row: a local-policy counterexample.
    pub fn semantic(
        map: &str,
        check: &bf_lite::LocalPolicyCheck,
        witness: &RouteAdvertisement,
    ) -> String {
        match check {
            bf_lite::LocalPolicyCheck::RoutesWithCommunityDenied { community, .. } => format!(
                "The route-map {map} permits routes that have the community {community}. \
                 However, they should be denied. For example, the route {} with \
                 communities [{}] is permitted.",
                witness.prefix,
                witness
                    .communities
                    .iter()
                    .map(|c| c.to_string())
                    .collect::<Vec<_>>()
                    .join(", ")
            ),
            bf_lite::LocalPolicyCheck::PermittedRoutesCarry { community, .. } => format!(
                "The route-map {map} permits the route {} without adding the community \
                 {community}. However, every permitted route should carry it.",
                witness.prefix
            ),
            bf_lite::LocalPolicyCheck::PermittedRoutesPreserve { community, .. } => format!(
                "The route-map {map} removes the existing community {community} from the \
                 route {}. However, existing communities should be preserved; use the \
                 'additive' keyword.",
                witness.prefix
            ),
            bf_lite::LocalPolicyCheck::PermittedRoutesSetLocalPref { value, .. } => {
                // The check also fails when the map denies the probe (or
                // is missing), so state both halves of the contract.
                let observed = match witness.local_pref {
                    Some(lp) => format!("comes out with local-preference {lp}"),
                    None => "is denied or left at the default preference".to_string(),
                };
                format!(
                    "The route-map {map} should permit all routes from this neighbor \
                     and set local-preference {value} on them, but the route {} {observed}.",
                    witness.prefix
                )
            }
        }
    }

    /// The human escalation prompt for a finding the automatic loop could
    /// not fix, mirroring the paper's manual interventions.
    pub fn human_escalation(finding_kind: HumanFixKind) -> String {
        match finding_kind {
            HumanFixKind::PrefixLength => "To match prefixes of length 24 or greater under \
                 1.2.3.0/24, use 'route-filter 1.2.3.0/24 prefix-length-range /24-/32' \
                 (or 'orlonger'). Apply this to the translated prefix list."
                .to_string(),
            HumanFixKind::Redistribution => "Please add 'from bgp' conditions to the routing \
                 policies that control exporting, so that redistribution into BGP matches \
                 the original configuration."
                .to_string(),
            HumanFixKind::SeparateStanzas => "Declare each match statement in a separate \
                 route-map stanza so the filters use OR semantics rather than AND."
                .to_string(),
            HumanFixKind::NeighborPlacement => "All network and neighbor commands must be \
                 placed inside the 'router bgp' block. Move the neighbor route-map \
                 attachments there."
                .to_string(),
        }
    }
}

/// The four manual interventions observed in the paper.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum HumanFixKind {
    /// §3.2: the `ge 24` prefix-length translation.
    PrefixLength,
    /// §3.2: redistribution into BGP (`from bgp` conditions).
    Redistribution,
    /// §4.2: AND/OR route-map stanza semantics.
    SeparateStanzas,
    /// §4.2: neighbor commands outside `router bgp`.
    NeighborPlacement,
}

fn opt<T: std::fmt::Display>(v: &Option<T>) -> String {
    match v {
        Some(x) => x.to_string(),
        None => "none".to_string(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use llm_sim::prompts::{classify, PromptClass};

    #[test]
    fn syntax_prompt_matches_table1_shape() {
        let w = ParseWarning::new(
            5,
            "policy-options prefix-list our-networks 1.2.3.0/24-32",
            "invalid",
            WarningKind::BadPrefixListSyntax,
        );
        let p = Humanizer::syntax(&w);
        assert!(p.starts_with("There is a syntax error:"));
        assert!(p.contains("1.2.3.0/24-32"));
        // And the simulated model recognizes it.
        assert!(matches!(classify(&p), PromptClass::SyntaxError { .. }));
    }

    #[test]
    fn missing_policy_prompt_matches_table1_text() {
        let f = CampionFinding::MissingPolicy {
            neighbor: "2.3.4.5".parse().unwrap(),
            direction: Direction::Import,
            policy: "from_provider".into(),
            in_original: true,
        };
        let p = Humanizer::campion(&f);
        assert_eq!(
            p,
            "In the original configuration, there is an import route map for bgp \
             neighbor 2.3.4.5, but in the translation, there is no corresponding route map"
        );
        assert_eq!(classify(&p), PromptClass::StructuralMissingPolicy);
    }

    #[test]
    fn ospf_cost_prompt_matches_table1_text() {
        let f = CampionFinding::OspfCostDiff {
            original_name: "Loopback0".into(),
            translated_name: "lo0.0".into(),
            original: Some(1),
            translated: Some(0),
        };
        let p = Humanizer::campion(&f);
        assert_eq!(
            p,
            "In the original configuration, the OSPF link for Loopback0 has cost set to 1, \
             but in the translation, the corresponding link to lo0.0 has cost set to 0"
        );
        assert_eq!(classify(&p), PromptClass::AttributeOspfCost);
    }

    #[test]
    fn policy_action_prompt_matches_table1_text() {
        let f = CampionFinding::PolicyBehavior {
            neighbor: "2.3.4.5".parse().unwrap(),
            direction: Direction::Export,
            original_policy: Some("to_provider".into()),
            translated_policy: Some("to_provider".into()),
            diff: BehaviorDiff::Action {
                route: RouteAdvertisement::bgp("1.2.3.0/25".parse().unwrap()),
                first_permits: true,
            },
        };
        let p = Humanizer::campion(&f);
        assert!(p.contains("for the prefix 1.2.3.0/25"));
        assert!(p.contains("the BGP export policy to_provider for BGP neighbor 2.3.4.5"));
        assert!(p.contains("performs the following action: ACCEPT"));
        assert!(p.contains("performs the following action: REJECT"));
        assert_eq!(classify(&p), PromptClass::PolicyCommunity);
    }

    #[test]
    fn topology_prompts_match_table3_text() {
        let f = TopologyFinding::NeighborNotDeclared {
            addr: "1.0.0.1".parse().unwrap(),
            asn: net_model::Asn(1),
        };
        assert_eq!(
            Humanizer::topology(&f),
            "Neighbor with IP address 1.0.0.1 and AS 1 not declared"
        );
        let f = TopologyFinding::IncorrectNetwork {
            prefix: "7.0.0.0/24".parse().unwrap(),
            router: "R1".into(),
        };
        assert_eq!(
            Humanizer::topology(&f),
            "Incorrect network declaration. 7.0.0.0/24 is not directly connected to R1"
        );
        let f = TopologyFinding::LocalAsMismatch {
            expected: net_model::Asn(1),
            found: Some(net_model::Asn(3)),
        };
        assert_eq!(
            Humanizer::topology(&f),
            "Local AS number does not match. Expected 1, found 3"
        );
        for t in [
            Humanizer::topology(&f),
            Humanizer::topology(&TopologyFinding::NetworkNotDeclared {
                prefix: "1.0.0.0/24".parse().unwrap(),
            }),
        ] {
            assert_eq!(classify(&t), PromptClass::TopologyError, "{t}");
        }
    }

    #[test]
    fn semantic_prompt_matches_table3_text() {
        let check = bf_lite::LocalPolicyCheck::RoutesWithCommunityDenied {
            chain: vec!["DROP_COMMUNITY".into()],
            community: "100:1".parse().unwrap(),
        };
        let witness = RouteAdvertisement::bgp("9.9.9.0/24".parse().unwrap())
            .with_community("100:1".parse().unwrap());
        let p = Humanizer::semantic("DROP_COMMUNITY", &check, &witness);
        assert!(p.starts_with(
            "The route-map DROP_COMMUNITY permits routes that have the community 100:1. \
             However, they should be denied."
        ));
        assert_eq!(classify(&p), PromptClass::PolicyCommunity);
    }

    #[test]
    fn human_escalations_are_recognized_as_human() {
        use llm_sim::prompts::PromptClass as PC;
        assert_eq!(
            classify(&Humanizer::human_escalation(HumanFixKind::PrefixLength)),
            PC::HumanPrefixLength
        );
        assert_eq!(
            classify(&Humanizer::human_escalation(HumanFixKind::Redistribution)),
            PC::HumanFromBgp
        );
        assert_eq!(
            classify(&Humanizer::human_escalation(HumanFixKind::SeparateStanzas)),
            PC::HumanSeparateStanzas
        );
        assert_eq!(
            classify(&Humanizer::human_escalation(
                HumanFixKind::NeighborPlacement
            )),
            PC::HumanNeighborPlacement
        );
    }

    #[test]
    fn missing_local_as_warning_is_humanized_and_classified() {
        let w = ParseWarning::global(
            "BGP group 'ebgp-peers' declares neighbors but no local AS is configured; \
             add 'routing-options autonomous-system <asn>' or a group-level 'local-as'",
            WarningKind::MissingLocalAs,
        );
        let p = Humanizer::syntax(&w);
        assert!(matches!(classify(&p), PromptClass::SyntaxError { .. }));
    }
}

//! The Composer: reassembles per-router configs into a Batfish-lite
//! snapshot and runs the whole-network no-transit check — the paper's
//! final step ("we simulate the entire BGP communication using Batfish as
//! a final step, in order to ensure that the global policy is
//! satisfied").

use bf_lite::sim::{run, Snapshot};
use config_ir::{Device, IrBgp, IrInterface, IrNeighbor};
use net_model::{Asn, Prefix};
use std::collections::BTreeMap;
use topo_model::{Expectation, RouterSpec, Scenario, StarRoles, Topology};

/// A violation of the global policy.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum GlobalViolation {
    /// ISP `to_isp` can reach ISP `from_isp`'s prefix — transit.
    TransitLeak {
        /// Prefix owner.
        from_isp: String,
        /// The ISP that (wrongly) learned the route.
        to_isp: String,
        /// The leaked prefix.
        prefix: Prefix,
    },
    /// The customer prefix never reached an ISP.
    CustomerUnreachable {
        /// The ISP missing the route.
        at_isp: String,
    },
    /// An ISP prefix never reached the customer.
    IspUnreachableFromCustomer {
        /// The ISP whose prefix is missing.
        isp: String,
        /// The missing prefix.
        prefix: Prefix,
    },
    /// A scenario expectation `Reachable { at, prefix }` failed.
    MissingRoute {
        /// The device missing the route.
        at: String,
        /// The expected prefix.
        prefix: Prefix,
    },
    /// A scenario expectation `Unreachable { at, prefix }` failed.
    ForbiddenRoute {
        /// The device that (wrongly) learned the route.
        at: String,
        /// The forbidden prefix.
        prefix: Prefix,
    },
    /// A scenario expectation `PreferVia` failed: the winning route does
    /// not originate from the required AS.
    WrongPreference {
        /// The observing device.
        at: String,
        /// The contested prefix.
        prefix: Prefix,
        /// The required origin AS.
        expected_origin: Asn,
        /// The origin AS of the route actually installed (`None` = no
        /// route at all).
        found_origin: Option<Asn>,
    },
}

/// The whole-network check report.
#[derive(Debug, Clone)]
pub struct GlobalCheckReport {
    /// All violations found (empty = the global policy holds).
    pub violations: Vec<GlobalViolation>,
    /// Simulation rounds to the fixed point.
    pub sim_rounds: usize,
    /// Whether the simulation diverged (policy oscillation).
    pub diverged: bool,
    /// Session-establishment problems (configs that broke peering).
    pub session_problems: Vec<String>,
}

impl GlobalCheckReport {
    /// Whether the global no-transit policy is satisfied.
    pub fn holds(&self) -> bool {
        self.violations.is_empty() && !self.diverged
    }
}

/// Builds the IR device for an external stub directly from its topology
/// spec (stubs are simulated, not synthesized).
pub fn device_from_spec(spec: &RouterSpec) -> Device {
    let mut d = Device::named(&spec.name);
    for i in &spec.interfaces {
        let mut ir = IrInterface::named(&i.name);
        ir.address = Some(i.address);
        d.interfaces.push(ir);
    }
    let mut bgp = IrBgp::new(spec.asn);
    bgp.router_id = Some(spec.router_id);
    bgp.networks = spec.networks.clone();
    for n in &spec.neighbors {
        let mut irn = IrNeighbor::new(n.addr);
        irn.remote_as = Some(n.asn);
        irn.send_community = true;
        bgp.neighbors.push(irn);
    }
    d.bgp = Some(bgp);
    d
}

/// The default internal-router lowering: parse the config text and
/// apply the hostname fixup (config files may omit the hostname; the
/// composer names devices from the folder layout as Batfish does).
/// Pure in `(name, text)` — the incremental verifier's parse hook
/// relies on this to substitute memoized parses for fresh ones.
pub(crate) fn parse_internal(name: &str, text: &str) -> Device {
    let parsed = bf_lite::parse_config(text, Some(bf_lite::Vendor::Cisco));
    let mut device = parsed.device;
    if device.name.is_empty() {
        device.name = name.to_string();
    }
    device
}

/// Assembles the simulation snapshot: internal routers from their
/// (parsed) configs, stubs straight from their topology specs. `parse`
/// lowers one internal router's config text; it must agree with
/// [`parse_internal`] (the incremental verifier passes a memo-backed
/// hook that clones already-parsed devices instead of re-parsing the
/// whole network per simulation).
fn build_snapshot_with(
    topology: &Topology,
    configs: &BTreeMap<String, String>,
    parse: &mut dyn FnMut(&str, &str) -> Device,
) -> Snapshot {
    let mut devices = Vec::new();
    for spec in topology.internal_routers() {
        match configs.get(&spec.name) {
            Some(text) => devices.push(parse(&spec.name, text)),
            None => {
                // A missing config is an empty device — sessions to it
                // fail and show up in session_problems.
                devices.push(Device::named(&spec.name));
            }
        }
    }
    for spec in topology.stubs() {
        devices.push(device_from_spec(spec));
    }
    Snapshot::new(devices)
}

fn build_snapshot(topology: &Topology, configs: &BTreeMap<String, String>) -> Snapshot {
    build_snapshot_with(topology, configs, &mut |name, text| {
        parse_internal(name, text)
    })
}

/// Composes a scenario's configs, runs the simulation, and evaluates the
/// scenario's expectations — the whole-network check for any generated
/// scenario.
pub fn check_scenario(
    scenario: &Scenario,
    configs: &BTreeMap<String, String>,
) -> GlobalCheckReport {
    check_scenario_with(scenario, configs, parse_internal)
}

/// [`check_scenario`] with a caller-supplied internal-router lowering.
/// The hook must return exactly what [`parse_internal`] returns for the
/// same `(name, text)` — the incremental verifier serves clones of
/// devices it already parsed during localization, which keeps the
/// report byte-identical while skipping an O(network) reparse per
/// simulation.
pub(crate) fn check_scenario_with(
    scenario: &Scenario,
    configs: &BTreeMap<String, String>,
    mut parse: impl FnMut(&str, &str) -> Device,
) -> GlobalCheckReport {
    let snapshot = build_snapshot_with(&scenario.topology, configs, &mut parse);
    let report = run(&snapshot);
    let mut violations = Vec::new();
    for e in &scenario.expectations {
        match e {
            Expectation::Reachable { at, prefix } => {
                let present = snapshot
                    .device_index(at)
                    .and_then(|i| report.route_at(i, prefix))
                    .is_some();
                if !present {
                    violations.push(GlobalViolation::MissingRoute {
                        at: at.clone(),
                        prefix: *prefix,
                    });
                }
            }
            Expectation::Unreachable { at, prefix } => {
                let present = snapshot
                    .device_index(at)
                    .and_then(|i| report.route_at(i, prefix))
                    .is_some();
                if present {
                    violations.push(GlobalViolation::ForbiddenRoute {
                        at: at.clone(),
                        prefix: *prefix,
                    });
                }
            }
            Expectation::PreferVia { at, prefix, origin } => {
                let found = snapshot
                    .device_index(at)
                    .and_then(|i| report.route_at(i, prefix));
                // A locally originated route has an empty AS path: its
                // origin is the observing device's own AS.
                let found_origin = found.and_then(|r| {
                    r.as_path
                        .origin_as()
                        .or_else(|| scenario.topology.router(at).map(|s| s.asn))
                });
                if found.is_none() || found_origin != Some(*origin) {
                    violations.push(GlobalViolation::WrongPreference {
                        at: at.clone(),
                        prefix: *prefix,
                        expected_origin: *origin,
                        found_origin,
                    });
                }
            }
        }
    }
    GlobalCheckReport {
        violations,
        sim_rounds: report.rounds,
        diverged: report.diverged,
        session_problems: snapshot.session_problems.clone(),
    }
}

/// Composes internal router configs (Cisco text, as returned by the LLM)
/// with the topology's stubs, runs the BGP simulation, and checks
/// no-transit.
pub fn compose_and_check(
    topology: &Topology,
    roles: &StarRoles,
    configs: &BTreeMap<String, String>,
) -> GlobalCheckReport {
    let snapshot = build_snapshot(topology, configs);
    let report = run(&snapshot);
    let mut violations = Vec::new();
    // ISP-side checks.
    for (j, isp_j) in roles.isps.iter().enumerate() {
        let Some(jdx) = snapshot.device_index(isp_j) else {
            continue;
        };
        if report.route_at(jdx, &roles.customer_prefix).is_none() {
            violations.push(GlobalViolation::CustomerUnreachable {
                at_isp: isp_j.clone(),
            });
        }
        for (i, isp_i) in roles.isps.iter().enumerate() {
            if i == j {
                continue;
            }
            let p = roles.isp_prefixes[i];
            if report.route_at(jdx, &p).is_some() {
                violations.push(GlobalViolation::TransitLeak {
                    from_isp: isp_i.clone(),
                    to_isp: isp_j.clone(),
                    prefix: p,
                });
            }
        }
    }
    // Customer-side checks.
    if let Some(cdx) = snapshot.device_index(&roles.customer) {
        for (i, isp) in roles.isps.iter().enumerate() {
            let p = roles.isp_prefixes[i];
            if report.route_at(cdx, &p).is_none() {
                violations.push(GlobalViolation::IspUnreachableFromCustomer {
                    isp: isp.clone(),
                    prefix: p,
                });
            }
        }
    }
    GlobalCheckReport {
        violations,
        sim_rounds: report.rounds,
        diverged: report.diverged,
        session_problems: snapshot.session_problems.clone(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::modularizer::Modularizer;
    use llm_sim::synth_task::SynthesisDraft;
    use std::collections::BTreeSet;
    use topo_model::star;

    /// Builds the reference (correct) configs for all internal routers.
    fn reference_configs(topology: &Topology, roles: &StarRoles) -> BTreeMap<String, String> {
        let mut out = BTreeMap::new();
        for a in Modularizer::assign(topology, roles) {
            let draft = SynthesisDraft::new(&a.prompt, BTreeSet::new());
            out.insert(a.name.clone(), draft.render());
        }
        out
    }

    #[test]
    fn correct_configs_satisfy_no_transit() {
        let (t, roles) = star(3);
        let configs = reference_configs(&t, &roles);
        let report = compose_and_check(&t, &roles, &configs);
        assert!(
            report.holds(),
            "violations: {:#?}\nsession problems: {:#?}",
            report.violations,
            report.session_problems
        );
    }

    #[test]
    fn unfiltered_hub_leaks_transit() {
        let (t, roles) = star(3);
        let mut configs = reference_configs(&t, &roles);
        // Strip the filters from R1 (keep sessions alive): resynthesize
        // the hub with no egress filters.
        let assignments = Modularizer::assign(&t, &roles);
        let hub = &assignments[0];
        let mut stripped_prompt = String::new();
        for line in hub.prompt.lines() {
            if !line.starts_with("At egress to neighbor ") {
                stripped_prompt.push_str(line);
                stripped_prompt.push('\n');
            }
        }
        let draft = SynthesisDraft::new(&stripped_prompt, BTreeSet::new());
        configs.insert(hub.name.clone(), draft.render());
        let report = compose_and_check(&t, &roles, &configs);
        assert!(
            report
                .violations
                .iter()
                .any(|v| matches!(v, GlobalViolation::TransitLeak { .. })),
            "{:#?}",
            report.violations
        );
        // The customer is still reachable (filters only affect ISP↔ISP).
        assert!(!report
            .violations
            .iter()
            .any(|v| matches!(v, GlobalViolation::CustomerUnreachable { .. })));
    }

    #[test]
    fn missing_config_breaks_reachability() {
        let (t, roles) = star(2);
        let mut configs = reference_configs(&t, &roles);
        configs.remove("R2");
        let report = compose_and_check(&t, &roles, &configs);
        assert!(!report.holds());
        assert!(!report.session_problems.is_empty());
        assert!(report
            .violations
            .iter()
            .any(|v| matches!(v, GlobalViolation::CustomerUnreachable { .. })));
    }

    #[test]
    fn scenario_check_matches_star_check() {
        let (t, roles) = star(3);
        let scenario = Modularizer::star_scenario(&t, &roles);
        let configs = reference_configs(&t, &roles);
        let report = check_scenario(&scenario, &configs);
        assert!(
            report.holds(),
            "{:#?} / {:#?}",
            report.violations,
            report.session_problems
        );
        // A dropped edge config surfaces as generic missing-route
        // violations (the star check's CustomerUnreachable analogue).
        let mut broken = configs.clone();
        broken.remove("R2");
        let report = check_scenario(&scenario, &broken);
        assert!(!report.holds());
        assert!(report
            .violations
            .iter()
            .any(|v| matches!(v, GlobalViolation::MissingRoute { .. })));
    }

    #[test]
    fn stub_devices_match_their_specs() {
        let (t, _) = star(2);
        let stub = t.router("ISP-2").unwrap();
        let d = device_from_spec(stub);
        assert_eq!(d.name, "ISP-2");
        assert_eq!(d.bgp.as_ref().unwrap().networks, stub.networks);
        assert_eq!(d.interfaces.len(), 1);
    }
}

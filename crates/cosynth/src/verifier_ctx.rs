//! The worker-resident verifier context: a pool of recycled BDD
//! managers plus the per-session [`RouteSpaceCache`].
//!
//! Every symbolic local check runs inside a `RouteSpace`, and before
//! pooling every space build paid `Manager::with_capacity` — ~1.3 MB of
//! fresh table allocation per policy router per session, released again
//! a few milliseconds later. A fleet worker that stays resident can
//! amortize that: [`ManagerPool`] keeps cleared managers (tables intact
//! at whatever size they grew to) and hands them back to the next space
//! build, so a worker allocates tables once per concurrent space, not
//! once per session.
//!
//! The split of responsibilities:
//!
//! * [`ManagerPool`] — **worker-lifetime** state: cleared managers plus
//!   reuse/allocation counters and the peak node count observed at
//!   release time (read from `Manager::stats` by way of `node_count`).
//! * [`RouteSpaceCache`] — **session-lifetime** state: one warm space
//!   per router draft, invalidated by config-IR fingerprint.
//! * [`VerifierContext`] — both, wired together. Sessions call
//!   [`VerifierContext::begin_session`], which drains the previous
//!   session's spaces back into the pool and zeroes the cache counters,
//!   so per-session accounting (and with it every committed
//!   `BENCH_*.json` field) is byte-identical to a context created
//!   fresh for that one session.
//!
//! Determinism: a recycled manager reproduces a fresh manager's `Ref`s
//! for the same op sequence (refs are assigned in insertion order from
//! an empty arena; table capacity never enters the result), so pooled
//! and fresh-per-space fleets produce identical session content — the
//! determinism guard in `cosynth-fleet` pins this.

use crate::space_cache::RouteSpaceCache;
use bdd::Manager;
use policy_symbolic::RouteSpace;
use telemetry::{SessionTrace, Stage};

/// A pool of cleared, ready-to-recycle BDD managers with reuse
/// accounting. Managers are cleared on [`ManagerPool::release`] (not on
/// acquire), so the peak node count is captured while the arena is
/// still populated and an acquire is a plain `Vec::pop`.
#[derive(Default)]
pub struct ManagerPool {
    free: Vec<Manager>,
    /// When false, released managers are dropped instead of retained —
    /// the fresh-per-space baseline the determinism guard and the
    /// `manager_pool` bench block compare against.
    retain: bool,
    /// Acquisitions served by a recycled manager.
    pub reuses: usize,
    /// Acquisitions that had to allocate a fresh manager.
    pub allocs: usize,
    /// Largest node arena seen at release time (from
    /// [`Manager::node_count`], the `node_count` field of
    /// [`bdd::ManagerStats`]).
    pub peak_nodes: usize,
    /// Managers dropped by [`VerifierContext::quarantine`] instead of
    /// recycled: a panicked session may have left them mid-mutation, so
    /// their arenas cannot be trusted by the next tenant.
    pub quarantined: usize,
}

impl ManagerPool {
    /// A pool that retains and recycles released managers.
    pub fn new() -> Self {
        ManagerPool {
            retain: true,
            ..Default::default()
        }
    }

    /// A pool that never retains: every acquire allocates, every
    /// release drops. Counters still run, so baselines report the same
    /// shape.
    pub fn disabled() -> Self {
        ManagerPool::default()
    }

    /// Whether released managers are recycled.
    pub fn is_pooling(&self) -> bool {
        self.retain
    }

    /// Managers currently parked in the pool.
    pub fn idle(&self) -> usize {
        self.free.len()
    }

    /// Hands out a cleared manager: recycled if one is parked, freshly
    /// allocated otherwise.
    ///
    /// A *pooling* pool sizes fresh allocations to the workload it has
    /// actually observed (the node high-water mark of released
    /// managers, floor 2^10) instead of the conservative
    /// [`RouteSpace::DEFAULT_NODE_CAPACITY`]. This is the pool's
    /// second, larger lever after allocation reuse: per-device route
    /// spaces on this workload peak in the hundreds of nodes, so
    /// right-sized tables stay L2-resident and a build (or a
    /// [`Manager::clear`]) touches a couple hundred KB rather than the
    /// default sizing's ~1.2 MB — a one-shot construction cannot know
    /// that and must over-provision. If a workload outgrows the hint,
    /// the unique table grows organically and the grown manager is what
    /// gets recycled. A *disabled* pool reproduces the historical
    /// fresh-per-space path exactly (default capacity per build), which
    /// is what the `manager_pool` bench block's baseline measures.
    pub fn acquire(&mut self) -> Manager {
        match self.free.pop() {
            Some(m) => {
                self.reuses += 1;
                m
            }
            None => {
                self.allocs += 1;
                let hint = if self.retain {
                    self.peak_nodes.next_power_of_two().max(1 << 10)
                } else {
                    RouteSpace::DEFAULT_NODE_CAPACITY
                };
                Manager::with_capacity(hint)
            }
        }
    }

    /// Takes a manager back: records its high-water mark, clears it,
    /// and parks it for the next acquire (or drops it when pooling is
    /// disabled).
    pub fn release(&mut self, mut mgr: Manager) {
        self.peak_nodes = self.peak_nodes.max(mgr.node_count());
        if self.retain {
            mgr.clear();
            self.free.push(mgr);
        }
    }
}

/// Worker-resident verifier state: the manager pool plus the
/// session-scoped route-space cache. Create one per worker (or one per
/// session for one-shot runs — a context is also the cheap way to get
/// the old behaviour), call [`VerifierContext::begin_session`] at every
/// session start, and hand it to
/// [`crate::SynthesisSession::run_scenario_in`] /
/// [`crate::RepairSession::run_in`].
pub struct VerifierContext {
    /// Worker-lifetime manager pool.
    pub pool: ManagerPool,
    /// Session-lifetime space cache (drained back into the pool by
    /// [`VerifierContext::begin_session`]).
    pub cache: RouteSpaceCache,
    /// Sessions started on this context.
    pub sessions: usize,
    /// Space-cache hits accumulated over *completed* sessions (the
    /// live session's counters sit in `cache.hits` until the next
    /// `begin_session` folds them in).
    pub cache_hits_total: usize,
    /// Space-cache misses accumulated over completed sessions.
    pub cache_misses_total: usize,
    /// The live session's stage trace: [`Stage::SpaceBuild`] /
    /// [`Stage::SpaceHit`] spans recorded by [`Self::space_for`], plus
    /// any spans the session driver records here (repair localization's
    /// parse rounds). Reset by [`Self::begin_session`] and merged into
    /// the outcome's trace by the session driver.
    pub trace: SessionTrace,
    /// Worker-lifetime per-device verdict memo, consulted only by the
    /// incremental verifier (`crate::incremental`). Survives
    /// [`Self::begin_session`] by design: on a fleet pinned to one
    /// `(seed, family)` topology, sessions differ only in their intent
    /// and fault, so most devices' verdicts recur verbatim across
    /// sessions. Entries are pure values (no managers), so quarantine
    /// leaves them alone.
    pub(crate) memo: crate::incremental::VerdictMemo,
}

impl Default for VerifierContext {
    fn default() -> Self {
        Self::new()
    }
}

impl VerifierContext {
    /// A context with manager pooling on — the resident-worker shape.
    pub fn new() -> Self {
        Self::with_pool(ManagerPool::new())
    }

    /// A context that builds every space fresh — the baseline shape
    /// (identical results, no reuse).
    pub fn without_pooling() -> Self {
        Self::with_pool(ManagerPool::disabled())
    }

    fn with_pool(pool: ManagerPool) -> Self {
        VerifierContext {
            pool,
            cache: RouteSpaceCache::new(),
            sessions: 0,
            cache_hits_total: 0,
            cache_misses_total: 0,
            trace: SessionTrace::new(),
            memo: crate::incremental::VerdictMemo::default(),
        }
    }

    /// Starts a session: folds the previous session's cache counters
    /// into the lifetime totals, drains its warm spaces back into the
    /// manager pool, and zeroes the per-session counters. After this
    /// the cache is observationally a fresh `RouteSpaceCache`, which is
    /// what keeps per-session content and accounting byte-identical to
    /// an unpooled run.
    pub fn begin_session(&mut self) {
        self.sessions += 1;
        self.trace = SessionTrace::new();
        self.flush();
    }

    /// Folds the live session's cache counters into the lifetime totals
    /// and parks its spaces in the pool, without opening a new session.
    /// Workers call this once at retirement so the final session's
    /// counters (and manager high-water marks) reach the fleet report.
    pub fn flush(&mut self) {
        self.cache_hits_total += self.cache.hits;
        self.cache_misses_total += self.cache.misses;
        for space in self.cache.drain() {
            self.pool.release(space.into_manager());
        }
        self.cache.hits = 0;
        self.cache.misses = 0;
    }

    /// The space for `router`'s current draft — the pooled equivalent
    /// of [`RouteSpaceCache::space_for`]. The lookup is timed into the
    /// live session's trace: a rebuild records a [`Stage::SpaceBuild`]
    /// span, a warm answer a [`Stage::SpaceHit`] span (classified by
    /// whether the cache's miss counter moved, so trace counts always
    /// reconcile with the cache counters).
    pub fn space_for(
        &mut self,
        router: &str,
        device: &config_ir::Device,
        checks: &[bf_lite::LocalPolicyCheck],
    ) -> &mut RouteSpace {
        let misses_before = self.cache.misses;
        let start = std::time::Instant::now();
        let _ = self
            .cache
            .space_for_in(&mut self.pool, router, device, checks);
        let stage = if self.cache.misses > misses_before {
            Stage::SpaceBuild
        } else {
            Stage::SpaceHit
        };
        self.trace.record(stage, start.elapsed());
        self.cache.space_mut(router).expect("space just ensured")
    }

    /// Lifetime cache totals including the live session's counters.
    pub fn cache_totals(&self) -> (usize, usize) {
        (
            self.cache_hits_total + self.cache.hits,
            self.cache_misses_total + self.cache.misses,
        )
    }

    /// Poisons the live session's state after a panic: its counters are
    /// folded into the lifetime totals (the work *was* done), but every
    /// manager it owned is **dropped**, never released back into the
    /// pool — a panic may have unwound mid-mutation, leaving an arena no
    /// future tenant can trust. Each dropped manager bumps
    /// [`ManagerPool::quarantined`]. The context itself stays usable:
    /// after quarantine it is observationally a context whose pool is
    /// merely colder.
    pub fn quarantine(&mut self) {
        self.cache_hits_total += self.cache.hits;
        self.cache_misses_total += self.cache.misses;
        self.cache.hits = 0;
        self.cache.misses = 0;
        for space in self.cache.drain() {
            self.pool.quarantined += 1;
            drop(space);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use config_ir::{ClauseAction, IrClause, IrPolicy, Modifier};
    use std::collections::BTreeSet;

    fn tagging_device(name: &str, community: &str) -> config_ir::Device {
        let mut d = config_ir::Device::named(name);
        let mut p = IrPolicy::new("ADD_COMM");
        p.clauses.push(IrClause {
            id: "10".into(),
            action: ClauseAction::Permit,
            conditions: vec![],
            modifiers: vec![Modifier::SetCommunities {
                communities: BTreeSet::from([community.parse().unwrap()]),
                additive: true,
            }],
        });
        d.policies.push(p);
        d
    }

    fn carry_check(community: &str) -> bf_lite::LocalPolicyCheck {
        bf_lite::LocalPolicyCheck::PermittedRoutesCarry {
            chain: vec!["ADD_COMM".into()],
            community: community.parse().unwrap(),
        }
    }

    #[test]
    fn pool_recycles_released_managers() {
        let mut pool = ManagerPool::new();
        let m1 = pool.acquire();
        assert_eq!((pool.reuses, pool.allocs), (0, 1));
        pool.release(m1);
        assert_eq!(pool.idle(), 1);
        let _m2 = pool.acquire();
        assert_eq!((pool.reuses, pool.allocs), (1, 1));
        assert_eq!(pool.idle(), 0);
    }

    #[test]
    fn disabled_pool_never_retains_but_still_counts() {
        let mut pool = ManagerPool::disabled();
        let mut m = pool.acquire();
        m.new_vars(3);
        let v = m.var(0);
        let w = m.var(1);
        let _ = m.and(v, w);
        let nodes = m.node_count();
        pool.release(m);
        assert_eq!(pool.idle(), 0);
        assert_eq!(pool.peak_nodes, nodes);
        let _ = pool.acquire();
        assert_eq!((pool.reuses, pool.allocs), (0, 2));
    }

    #[test]
    fn begin_session_resets_cache_and_refills_pool() {
        let mut ctx = VerifierContext::new();
        ctx.begin_session();
        let d = tagging_device("r1", "100:1");
        let checks = [carry_check("100:1")];
        let space = ctx.space_for("r1", &d, &checks);
        assert!(bf_lite::check_local_policy_in(space, &d, &checks[0]).is_ok());
        let _ = ctx.space_for("r1", &d, &checks);
        assert_eq!((ctx.cache.hits, ctx.cache.misses), (1, 1));
        assert_eq!(ctx.pool.allocs, 1);

        // Next session: counters reset, the space's manager is parked,
        // and the rebuild is served from the pool.
        ctx.begin_session();
        assert_eq!((ctx.cache.hits, ctx.cache.misses), (0, 0));
        assert_eq!(ctx.cache.len(), 0, "spaces drained");
        assert_eq!(ctx.pool.idle(), 1);
        let _ = ctx.space_for("r1", &d, &checks);
        assert_eq!(ctx.pool.reuses, 1);
        assert_eq!(ctx.pool.allocs, 1, "no second allocation");
        assert_eq!(ctx.cache_totals(), (1, 2));
        assert!(ctx.pool.peak_nodes > 1, "release recorded the arena size");
    }

    #[test]
    fn quarantine_drops_managers_instead_of_recycling() {
        let mut ctx = VerifierContext::new();
        ctx.begin_session();
        let d = tagging_device("r1", "100:1");
        let checks = [carry_check("100:1")];
        let _ = ctx.space_for("r1", &d, &checks);
        assert_eq!(ctx.pool.allocs, 1);
        // The session panics: its manager must not reach the free list.
        ctx.quarantine();
        assert_eq!(ctx.pool.quarantined, 1);
        assert_eq!(ctx.pool.idle(), 0, "poisoned manager never parked");
        assert_eq!(ctx.cache.len(), 0);
        // The next session on this context allocates fresh.
        ctx.begin_session();
        let _ = ctx.space_for("r1", &d, &checks);
        assert_eq!(ctx.pool.reuses, 0, "nothing to recycle after quarantine");
        assert_eq!(ctx.pool.allocs, 2);
    }

    #[test]
    fn quarantine_conservation_law_over_random_op_sequences() {
        // Property-style: over a seeded random interleaving of sessions,
        // space builds, and quarantines, every manager ever allocated is
        // exactly one of parked / cached / quarantined — a quarantined
        // manager is never recycled and no counter drifts.
        let mut rng = llm_sim::rng::SimRng::seed_from_u64(0xC0FFEE);
        let routers = ["r1", "r2", "r3", "r4", "r5"];
        let mut ctx = VerifierContext::new();
        ctx.begin_session();
        for step in 0..400 {
            match rng.index(10) {
                0 => ctx.begin_session(),
                1 | 2 => ctx.quarantine(),
                _ => {
                    let name = routers[rng.index(routers.len())];
                    let community = format!("100:{}", 1 + rng.index(3));
                    let d = tagging_device(name, &community);
                    let checks = [carry_check(&community)];
                    let _ = ctx.space_for(name, &d, &checks);
                }
            }
            assert_eq!(
                ctx.pool.allocs,
                ctx.pool.idle() + ctx.cache.len() + ctx.pool.quarantined,
                "conservation violated at step {step}: allocs={} idle={} \
                 cached={} quarantined={}",
                ctx.pool.allocs,
                ctx.pool.idle(),
                ctx.cache.len(),
                ctx.pool.quarantined
            );
        }
        assert!(ctx.pool.quarantined > 0, "the sequence must quarantine");
        assert!(ctx.pool.reuses > 0, "and still exercise recycling");
    }

    #[test]
    fn pooled_and_fresh_spaces_agree_on_witnesses() {
        // A buggy draft checked through a *recycled* manager must yield
        // the exact witness a fresh space yields.
        let mut d = config_ir::Device::named("r1");
        let mut p = IrPolicy::new("ADD_COMM");
        p.clauses.push(IrClause::permit_all("10"));
        d.policies.push(p);
        let checks = [carry_check("100:1")];
        let fresh = bf_lite::check_local_policy(&d, &checks[0]).unwrap_err();

        let mut ctx = VerifierContext::new();
        // Warm the pool with an unrelated tenant first.
        ctx.begin_session();
        let other = tagging_device("r9", "222:2");
        let other_checks = [carry_check("222:2")];
        let _ = ctx.space_for("r9", &other, &other_checks);
        ctx.begin_session();
        assert!(ctx.pool.idle() > 0, "recycled manager available");
        let space = ctx.space_for("r1", &d, &checks);
        let pooled = bf_lite::check_local_policy_in(space, &d, &checks[0]).unwrap_err();
        assert_eq!(ctx.pool.reuses, 1, "the build must have recycled");
        assert_eq!(fresh, pooled);
    }
}

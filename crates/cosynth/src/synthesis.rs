//! Use case 2: global no-transit policy via local synthesis (Section 4).
//!
//! Local style: the Modularizer decomposes the global policy into
//! per-router prompts and Lightyear-style local checks; each router goes
//! through syntax → topology → semantics loops; the Composer then runs
//! the whole-network simulation as the final global check.
//!
//! Global style (the ablation of Section 4.1): the whole policy is given
//! at once and feedback is a whole-network counterexample — which the
//! paper found leaves GPT-4 "confused and oscillating between incorrect
//! strategies".

use crate::composer::{check_scenario, compose_and_check, GlobalCheckReport};
use crate::humanizer::{HumanFixKind, Humanizer};
use crate::iip::IipDatabase;
use crate::leverage::Leverage;
use crate::modularizer::{Modularizer, RouterAssignment};
use crate::session::{
    LoggedPrompt, PromptKind, RetryPolicy, SessionBudget, SessionLimits, SessionTranscript,
    TransportStats,
};
use crate::verifier_ctx::VerifierContext;
use bf_lite::Vendor;
use llm_sim::{CostLedger, LanguageModel};
use net_model::WarningKind;
use std::collections::BTreeMap;
use telemetry::{SessionTrace, Stage};
use topo_model::{star, Scenario, StarRoles, Topology};

/// Whether the policy is specified per router (local) or all at once
/// (global).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SpecStyle {
    /// Lightyear-style local policies per router.
    Local,
    /// One global specification (the oscillation ablation).
    Global,
}

/// The outcome of a synthesis session.
#[derive(Debug, Clone)]
pub struct SynthesisOutcome {
    /// Per-router final configs.
    pub configs: BTreeMap<String, String>,
    /// Whether all per-router loops verified (syntax + topology + local
    /// policies).
    pub verified_local: bool,
    /// The whole-network check report.
    pub global: GlobalCheckReport,
    /// Whether the session converged at all (the global style may not).
    pub converged: bool,
    /// Prompt accounting.
    pub leverage: Leverage,
    /// Full prompt log.
    pub log: Vec<LoggedPrompt>,
    /// Symbolic-space cache lookups answered from a warm space (see
    /// [`crate::space_cache`]). Zero for the global style, which runs no
    /// local symbolic checks.
    pub space_cache_hits: usize,
    /// Symbolic-space cache (re)builds: first sight of a router draft or
    /// a rectification edit to it.
    pub space_cache_misses: usize,
    /// Whether the session stopped early because it tripped its
    /// [`SessionBudget`] (a typed outcome, not a panic).
    pub deadline_exceeded: bool,
    /// Transport retry/escalation accounting for the whole session.
    pub transport: TransportStats,
    /// Where the session's wall-clock went, by pipeline stage. Span
    /// *counts* are deterministic session content; durations are
    /// wall-clock (and excluded from trace equality).
    pub trace: SessionTrace,
    /// Per-backend model-cost accounting for this session (calls ×
    /// unit milli-cost, with simulated latency). Empty for cost-free
    /// backends like the scripted test doubles.
    pub cost: CostLedger,
}

/// The synthesis session driver.
pub struct SynthesisSession {
    /// Loop bounds.
    pub limits: SessionLimits,
    /// The IIP database loaded at chat start.
    pub iips: IipDatabase,
    /// Specification style.
    pub style: SpecStyle,
    /// Attempt bound for the global style before declaring divergence.
    pub max_global_attempts: usize,
    /// Per-session deadline (default unlimited).
    pub budget: SessionBudget,
    /// Transport retry policy.
    pub retry: RetryPolicy,
    /// Re-verification strategy, accepted for API uniformity with
    /// [`crate::RepairSession`]. The synthesis loop is already
    /// edit-local by construction — each rectification round re-checks
    /// exactly the router being drafted, and a draft's symbolic space
    /// can only be built once its text exists — so every mode runs the
    /// same work and the flag is a content, trace, and counter no-op
    /// here; the fleet A/B test pins that too.
    pub verify: crate::incremental::VerifyMode,
}

impl Default for SynthesisSession {
    fn default() -> Self {
        SynthesisSession {
            limits: SessionLimits::default(),
            iips: IipDatabase::paper_default(),
            style: SpecStyle::Local,
            max_global_attempts: 6,
            budget: SessionBudget::default(),
            retry: RetryPolicy::default(),
            verify: crate::incremental::VerifyMode::default(),
        }
    }
}

impl SynthesisSession {
    /// Runs the session on a generated star with `n_isps` edge routers.
    pub fn run<M: LanguageModel + ?Sized>(&self, llm: &mut M, n_isps: usize) -> SynthesisOutcome {
        let (topology, roles) = star(n_isps);
        self.run_on(llm, &topology, &roles)
    }

    /// Runs the session on an existing topology.
    pub fn run_on<M: LanguageModel + ?Sized>(
        &self,
        llm: &mut M,
        topology: &Topology,
        roles: &StarRoles,
    ) -> SynthesisOutcome {
        match self.style {
            SpecStyle::Local => self.run_local(llm, topology, roles),
            SpecStyle::Global => self.run_global(llm, topology, roles),
        }
    }

    /// Runs the session on any generated scenario: the same per-router
    /// VPP loop as the star experiment, followed by the scenario's own
    /// whole-network expectations. Builds a one-shot verifier context;
    /// resident workers use [`SynthesisSession::run_scenario_in`].
    pub fn run_scenario<M: LanguageModel + ?Sized>(
        &self,
        llm: &mut M,
        scenario: &Scenario,
    ) -> SynthesisOutcome {
        self.run_scenario_in(llm, scenario, &mut VerifierContext::without_pooling())
    }

    /// [`SynthesisSession::run_scenario`] against a caller-owned
    /// [`VerifierContext`]: the context's manager pool survives the
    /// session, so a worker that runs many sessions amortizes BDD table
    /// allocation across all of them. Session content and accounting
    /// are byte-identical to the one-shot path.
    pub fn run_scenario_in<M: LanguageModel + ?Sized>(
        &self,
        llm: &mut M,
        scenario: &Scenario,
        ctx: &mut VerifierContext,
    ) -> SynthesisOutcome {
        let mut drive = self.drive_scenario(llm, scenario, ctx);
        let global = drive
            .trace
            .time(Stage::Sim, || check_scenario(scenario, &drive.configs));
        drive.into_outcome(global)
    }

    fn run_local<M: LanguageModel + ?Sized>(
        &self,
        llm: &mut M,
        topology: &Topology,
        roles: &StarRoles,
    ) -> SynthesisOutcome {
        // The star is just a scenario: the per-router loops (and with
        // them all leverage/escalation accounting) run through the one
        // shared path, so the two entry points cannot drift. Only the
        // final whole-network report differs — the star keeps its named
        // no-transit violation classes (TransitLeak & friends).
        let scenario = Modularizer::star_scenario(topology, roles);
        let mut ctx = VerifierContext::without_pooling();
        let mut drive = self.drive_scenario(llm, &scenario, &mut ctx);
        let global = drive.trace.time(Stage::Sim, || {
            compose_and_check(topology, roles, &drive.configs)
        });
        drive.into_outcome(global)
    }

    /// Drives every per-router syntax → topology → semantics loop of a
    /// scenario through one transcript and one space cache. This is the
    /// **single** accounting path behind both [`Self::run_on`] (the
    /// paper's star) and [`Self::run_scenario`] (generated scenarios):
    /// prompts, escalations from a failed verify, and cache counters are
    /// tallied here and nowhere else.
    fn drive_scenario<M: LanguageModel + ?Sized>(
        &self,
        llm: &mut M,
        scenario: &Scenario,
        ctx: &mut VerifierContext,
    ) -> ScenarioDrive {
        ctx.begin_session();
        let cost0 = llm.cost();
        let mut t = SessionTranscript::new(llm, self.iips.system_message())
            .with_budget(self.budget)
            .with_retry(self.retry);
        let mut configs = BTreeMap::new();
        let mut verified_local = true;
        let mut deadline_exceeded = false;
        let assignments = t.trace.time(Stage::PromptRender, || {
            Modularizer::assign_scenario(scenario)
        });
        for assignment in assignments {
            if t.over_budget() {
                // The deadline tripped between routers: remaining routers
                // get no drafts and the session reports the typed outcome.
                deadline_exceeded = true;
                verified_local = false;
                configs.insert(assignment.name.clone(), String::new());
                continue;
            }
            let (config, ok, over) =
                self.rectify_router(&mut t, ctx, &scenario.topology, &assignment);
            if over {
                deadline_exceeded = true;
            }
            if !ok {
                verified_local = false;
            }
            configs.insert(assignment.name.clone(), config);
        }
        let mut trace = t.trace;
        trace.merge(&ctx.trace);
        let cost = t.backend_cost().since(&cost0);
        ScenarioDrive {
            configs,
            verified_local,
            leverage: t.leverage,
            log: t.log,
            space_cache_hits: ctx.cache.hits,
            space_cache_misses: ctx.cache.misses,
            deadline_exceeded,
            transport: t.transport,
            trace,
            cost,
        }
    }

    /// Drives one router's syntax → topology → semantics loop. Returns
    /// the final config text and whether all three phases verified.
    ///
    /// `ctx` carries the session-scoped symbolic-space cache (and the
    /// worker's manager pool behind it): the semantic phase reuses one
    /// warm `RouteSpace` per draft instead of building a fresh BDD
    /// manager per check per round, and a rectification edit to this
    /// router invalidates only this router's entry.
    fn rectify_router<M: LanguageModel + ?Sized>(
        &self,
        t: &mut SessionTranscript<'_, M>,
        ctx: &mut VerifierContext,
        topology: &Topology,
        assignment: &RouterAssignment,
    ) -> (String, bool, bool) {
        let mut current = t.send_expecting_config(PromptKind::Task, assignment.prompt.clone(), "");
        let mut attempts: BTreeMap<String, usize> = BTreeMap::new();
        let mut rounds = 0usize;
        let mut router_ok = false;
        let mut over_budget = false;
        while rounds < self.limits.max_rounds {
            if t.over_budget() {
                over_budget = true;
                break;
            }
            rounds += 1;
            // Phase 1: syntax.
            let parsed = t.trace.time(Stage::Parse, || {
                bf_lite::parse_config(&current, Some(Vendor::Cisco))
            });
            if let Some(w) = parsed.warnings.first() {
                let key = format!("syntax:{:?}:{}", w.kind, w.text);
                let failed = attempts.get(&key).copied().unwrap_or(0);
                let next = if failed < self.limits.attempts_per_finding {
                    t.send_expecting_config(PromptKind::Auto, Humanizer::syntax(w), &current)
                } else {
                    let human = match w.kind {
                        WarningKind::MisplacedCommand => {
                            Humanizer::human_escalation(HumanFixKind::NeighborPlacement)
                        }
                        _ => format!(
                            "The following line is still invalid, please rewrite it \
                             correctly: '{}'",
                            w.text
                        ),
                    };
                    t.send_expecting_config(PromptKind::Human, human, &current)
                };
                if next == current {
                    bump(&mut attempts, &key);
                }
                current = next;
                continue;
            }
            // Phase 2: topology.
            let findings = topo_model::verify_router(topology, &assignment.name, &parsed.device);
            if let Some(f) = findings.first() {
                let key = format!("topo:{f:?}");
                let _ = bump(&mut attempts, &key);
                // Topology prompts always go through the automated
                // channel (the verifier's output is directly usable).
                current =
                    t.send_expecting_config(PromptKind::Auto, Humanizer::topology(f), &current);
                continue;
            }
            // Phase 3: local policy semantics (policy routers only).
            // One cached-space lookup per draft serves every symbolic
            // check this round (the fingerprint is loop-invariant);
            // concrete checks (local-pref probes) need no space at all.
            let mut space = assignment
                .checks
                .iter()
                .any(bf_lite::LocalPolicyCheck::is_symbolic)
                .then(|| ctx.space_for(&assignment.name, &parsed.device, &assignment.checks));
            let mut violation = None;
            for check in &assignment.checks {
                // The space mutably borrows `ctx`, so the check span is
                // recorded into the transcript-held trace; the two merge
                // at outcome assembly.
                let result = t.trace.time(Stage::Check, || match space.as_mut() {
                    Some(space) if check.is_symbolic() => {
                        bf_lite::check_local_policy_in(space, &parsed.device, check)
                    }
                    _ => bf_lite::check_local_policy(&parsed.device, check),
                });
                if let Err(witness) = result {
                    violation = Some((check.clone(), witness));
                    break;
                }
            }
            if let Some((check, witness)) = violation {
                let map = match &check {
                    bf_lite::LocalPolicyCheck::PermittedRoutesCarry { chain, .. }
                    | bf_lite::LocalPolicyCheck::RoutesWithCommunityDenied { chain, .. }
                    | bf_lite::LocalPolicyCheck::PermittedRoutesPreserve { chain, .. }
                    | bf_lite::LocalPolicyCheck::PermittedRoutesSetLocalPref { chain, .. } => {
                        chain.first().cloned().unwrap_or_default()
                    }
                };
                let key = format!("semantic:{}", check.describe());
                let failed = attempts.get(&key).copied().unwrap_or(0);
                let next = if failed < self.limits.attempts_per_finding {
                    t.send_expecting_config(
                        PromptKind::Auto,
                        Humanizer::semantic(&map, &check, &witness),
                        &current,
                    )
                } else {
                    // The AND/OR pathology: the counterexample alone
                    // fails; a human asks for separate stanzas.
                    t.send_expecting_config(
                        PromptKind::Human,
                        Humanizer::human_escalation(HumanFixKind::SeparateStanzas),
                        &current,
                    )
                };
                if next == current {
                    bump(&mut attempts, &key);
                }
                current = next;
                continue;
            }
            router_ok = true;
            break;
        }
        (current, router_ok, over_budget)
    }

    fn run_global<M: LanguageModel + ?Sized>(
        &self,
        llm: &mut M,
        topology: &Topology,
        roles: &StarRoles,
    ) -> SynthesisOutcome {
        let cost0 = llm.cost();
        let mut t = SessionTranscript::new(llm, self.iips.system_message())
            .with_budget(self.budget)
            .with_retry(self.retry);
        let prompt = t
            .trace
            .time(Stage::PromptRender, || Modularizer::global_prompt(topology));
        let mut response = t.send(PromptKind::Task, prompt);
        let mut configs = parse_multi_configs(&response);
        let mut converged = false;
        let mut global = t
            .trace
            .time(Stage::Sim, || compose_and_check(topology, roles, &configs));
        let mut deadline_exceeded = false;
        for _ in 0..self.max_global_attempts {
            if global.holds() {
                converged = true;
                break;
            }
            if t.over_budget() {
                deadline_exceeded = true;
                break;
            }
            // Whole-network counterexample feedback (Minesweeper-style),
            // which the paper found unactionable for GPT-4.
            let feedback = match global.violations.first() {
                Some(crate::composer::GlobalViolation::TransitLeak {
                    from_isp,
                    to_isp,
                    prefix,
                }) => format!(
                    "The no-transit policy is violated: a packet to {prefix} \
                     (announced by {from_isp}) can be forwarded from {to_isp} through \
                     the network. Fix the configurations."
                ),
                Some(crate::composer::GlobalViolation::CustomerUnreachable { at_isp }) => {
                    format!(
                        "The policy is violated: the CUSTOMER prefix is not reachable \
                         from {at_isp}. Fix the configurations."
                    )
                }
                Some(crate::composer::GlobalViolation::IspUnreachableFromCustomer {
                    isp, ..
                }) => format!(
                    "The policy is violated: {isp}'s prefix is not reachable from the \
                     CUSTOMER. Fix the configurations."
                ),
                Some(crate::composer::GlobalViolation::MissingRoute { at, prefix }) => format!(
                    "The policy is violated: {prefix} is not reachable from {at}. \
                     Fix the configurations."
                ),
                Some(crate::composer::GlobalViolation::ForbiddenRoute { at, prefix }) => format!(
                    "The policy is violated: a packet to {prefix} can be forwarded \
                     from {at} through the network. Fix the configurations."
                ),
                Some(crate::composer::GlobalViolation::WrongPreference {
                    at,
                    prefix,
                    expected_origin,
                    ..
                }) => format!(
                    "The policy is violated: {at} does not prefer the route to {prefix} \
                     originating from AS {expected_origin}. Fix the configurations."
                ),
                None => "The network does not converge. Fix the configurations.".to_string(),
            };
            response = t.send(PromptKind::Auto, feedback);
            configs = parse_multi_configs(&response);
            global = t
                .trace
                .time(Stage::Sim, || compose_and_check(topology, roles, &configs));
        }
        let cost = t.backend_cost().since(&cost0);
        SynthesisOutcome {
            configs,
            verified_local: false,
            global,
            converged,
            leverage: t.leverage,
            space_cache_hits: 0,
            space_cache_misses: 0,
            deadline_exceeded,
            transport: t.transport,
            trace: t.trace,
            log: t.log,
            cost,
        }
    }
}

/// The per-router-loop results of one scenario drive, before the final
/// whole-network check picks its report flavor.
struct ScenarioDrive {
    configs: BTreeMap<String, String>,
    verified_local: bool,
    leverage: Leverage,
    log: Vec<LoggedPrompt>,
    space_cache_hits: usize,
    space_cache_misses: usize,
    deadline_exceeded: bool,
    transport: TransportStats,
    trace: SessionTrace,
    cost: CostLedger,
}

impl ScenarioDrive {
    fn into_outcome(self, global: GlobalCheckReport) -> SynthesisOutcome {
        SynthesisOutcome {
            configs: self.configs,
            verified_local: self.verified_local,
            global,
            converged: self.verified_local,
            leverage: self.leverage,
            log: self.log,
            space_cache_hits: self.space_cache_hits,
            space_cache_misses: self.space_cache_misses,
            deadline_exceeded: self.deadline_exceeded,
            transport: self.transport,
            trace: self.trace,
            cost: self.cost,
        }
    }
}

fn bump(attempts: &mut BTreeMap<String, usize>, key: &str) -> usize {
    let e = attempts.entry(key.to_string()).or_insert(0);
    *e += 1;
    *e
}

/// Parses a multi-router response: `### NAME ###` section headers with
/// config bodies (fenced or raw).
fn parse_multi_configs(response: &str) -> BTreeMap<String, String> {
    let mut out = BTreeMap::new();
    let body = llm_sim::model::last_fenced_block(response).unwrap_or_else(|| response.to_string());
    let mut current_name: Option<String> = None;
    let mut current_text = String::new();
    for line in body.lines() {
        let trimmed = line.trim();
        if let Some(name) = trimmed
            .strip_prefix("###")
            .and_then(|r| r.strip_suffix("###"))
        {
            if let Some(n) = current_name.take() {
                out.insert(n, std::mem::take(&mut current_text));
            }
            current_name = Some(name.trim().to_string());
        } else if current_name.is_some() && !trimmed.starts_with("```") {
            current_text.push_str(line);
            current_text.push('\n');
        }
    }
    if let Some(n) = current_name {
        out.insert(n, current_text);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use llm_sim::{ErrorModel, SimulatedGpt4};

    #[test]
    fn flawless_model_synthesizes_with_zero_prompts() {
        let mut llm = SimulatedGpt4::new(ErrorModel::flawless(), 42);
        let s = SynthesisSession::default();
        let outcome = s.run(&mut llm, 3);
        assert!(outcome.verified_local);
        assert!(
            outcome.global.holds(),
            "{:#?} / {:#?}",
            outcome.global.violations,
            outcome.global.session_problems
        );
        assert_eq!(outcome.leverage.auto, 0);
        assert_eq!(outcome.leverage.human, 0);
    }

    #[test]
    fn paper_model_on_figure4_star_converges_with_two_human_prompts() {
        // The paper's experiment: 7 routers (hub + 6 edges), IIPs loaded.
        let mut llm = SimulatedGpt4::new(ErrorModel::paper_default(), 11);
        let s = SynthesisSession::default();
        let outcome = s.run(&mut llm, 6);
        assert!(outcome.verified_local, "{:#?}", outcome.log.last());
        assert!(
            outcome.global.holds(),
            "{:#?} / {:#?}",
            outcome.global.violations,
            outcome.global.session_problems
        );
        // The two egregious cases: AND/OR stanzas and neighbor placement.
        assert_eq!(outcome.leverage.human, 2, "{}", outcome.leverage);
        assert!(outcome.leverage.auto >= 4, "{}", outcome.leverage);
    }

    #[test]
    fn scenario_run_matches_star_run() {
        // The scenario path issues byte-identical prompts to the star
        // path, so the same seed must produce the same leverage.
        let (t, roles) = star(3);
        let scenario = Modularizer::star_scenario(&t, &roles);
        let s = SynthesisSession::default();
        let mut llm = SimulatedGpt4::new(ErrorModel::paper_default(), 11);
        let o = s.run_scenario(&mut llm, &scenario);
        assert!(o.verified_local, "{:#?}", o.log.last());
        assert!(
            o.global.holds(),
            "{:#?} / {:#?}",
            o.global.violations,
            o.global.session_problems
        );
        let mut llm2 = SimulatedGpt4::new(ErrorModel::paper_default(), 11);
        let o2 = s.run(&mut llm2, 3);
        assert_eq!(o.leverage, o2.leverage);
        assert_eq!(o.configs, o2.configs);
    }

    #[test]
    fn failed_final_verify_accounts_identically_on_both_paths() {
        // Regression guard for the unified accounting path: a session
        // whose routers never verify (and whose final whole-network
        // check therefore fails) must tally exactly the same automated
        // and human escalations whether it entered through the star API
        // or the scenario API. Before the unification the two entry
        // points duplicated the rectification drive, so their counts
        // could drift around a failed final verify.
        use llm_sim::ScriptedLlm;
        let session = SynthesisSession {
            limits: crate::session::SessionLimits {
                attempts_per_finding: 2,
                max_rounds: 5,
            },
            ..Default::default()
        };
        // A model that never returns a config: every round re-finds the
        // same topology/syntax findings until the budget is spent.
        let (t, roles) = star(3);
        let mut llm_star = ScriptedLlm::new(vec!["I cannot produce that.".to_string()]);
        let star_outcome = session.run_on(&mut llm_star, &t, &roles);
        let scenario = Modularizer::star_scenario(&t, &roles);
        let mut llm_scenario = ScriptedLlm::new(vec!["I cannot produce that.".to_string()]);
        let scenario_outcome = session.run_scenario(&mut llm_scenario, &scenario);
        assert!(!star_outcome.verified_local);
        assert!(!star_outcome.global.holds());
        assert!(!scenario_outcome.global.holds());
        assert_eq!(star_outcome.leverage, scenario_outcome.leverage);
        assert_eq!(star_outcome.log.len(), scenario_outcome.log.len());
        for (a, b) in star_outcome.log.iter().zip(&scenario_outcome.log) {
            assert_eq!(a.kind, b.kind);
            assert_eq!(a.prompt, b.prompt);
        }
        assert_eq!(star_outcome.configs, scenario_outcome.configs);
    }

    #[test]
    fn space_cache_is_exercised_across_rectification_rounds() {
        // The paper-calibrated model needs several rectification rounds,
        // so the same draft is re-verified repeatedly: the per-draft
        // space cache must serve warm spaces (hits) and rebuild only on
        // actual edits (misses bounded by distinct drafts, not rounds).
        let mut llm = SimulatedGpt4::new(ErrorModel::paper_default(), 11);
        let s = SynthesisSession::default();
        let outcome = s.run(&mut llm, 6);
        assert!(outcome.verified_local);
        assert!(outcome.space_cache_misses > 0, "spaces must be built");
        assert!(
            outcome.space_cache_hits > 0,
            "re-verification of unchanged drafts must hit the cache \
             (hits={}, misses={})",
            outcome.space_cache_hits,
            outcome.space_cache_misses
        );
    }

    #[test]
    fn trace_counts_are_deterministic_and_reconcile_with_counters() {
        let run = || {
            let mut llm = SimulatedGpt4::new(ErrorModel::paper_default(), 11);
            SynthesisSession::default().run(&mut llm, 6)
        };
        let a = run();
        let b = run();
        assert_eq!(a.trace, b.trace, "span counts are session content");
        assert_eq!(
            a.trace.get(Stage::Backend).count as usize,
            a.log.len(),
            "clean transport: one backend span per logged prompt"
        );
        assert_eq!(
            a.trace.get(Stage::SpaceBuild).count as usize,
            a.space_cache_misses,
            "every cache miss is a build span"
        );
        assert_eq!(
            a.trace.get(Stage::SpaceHit).count as usize,
            a.space_cache_hits,
            "every cache hit is a hit span"
        );
        assert_eq!(a.trace.get(Stage::Sim).count, 1, "one final global check");
        assert_eq!(a.trace.get(Stage::PromptRender).count, 1);
        assert!(
            a.trace.get(Stage::Parse).count > 0,
            "parse rounds are traced"
        );
        assert!(
            a.trace.get(Stage::Check).count > 0,
            "local checks are traced"
        );
        assert_eq!(
            a.trace.get(Stage::Localize).count,
            0,
            "synthesis sessions never localize"
        );
    }

    #[test]
    fn global_style_oscillates_and_fails() {
        let mut llm = SimulatedGpt4::new(ErrorModel::paper_default(), 5);
        let s = SynthesisSession {
            style: SpecStyle::Global,
            ..Default::default()
        };
        let outcome = s.run(&mut llm, 3);
        assert!(!outcome.converged, "global style must not converge");
        assert!(!outcome.global.holds());
        assert!(outcome.leverage.auto >= s.max_global_attempts);
    }

    #[test]
    fn multi_config_parsing() {
        let response = "strategy text\n```\n### R1 ###\nhostname R1\nrouter bgp 1\n### R2 ###\nhostname R2\n```\n";
        let configs = parse_multi_configs(response);
        assert_eq!(configs.len(), 2);
        assert!(configs["R1"].contains("router bgp 1"));
        assert!(configs["R2"].contains("hostname R2"));
    }

    #[test]
    fn prompt_budget_yields_typed_deadline_outcome() {
        let mut llm = SimulatedGpt4::new(ErrorModel::paper_default(), 11);
        let s = SynthesisSession {
            budget: crate::session::SessionBudget {
                max_prompts: Some(3),
                ..Default::default()
            },
            ..Default::default()
        };
        let outcome = s.run(&mut llm, 6);
        assert!(
            outcome.deadline_exceeded,
            "3 prompts cannot finish 7 routers"
        );
        assert!(!outcome.converged);
        assert!(
            outcome.log.len() <= 4,
            "at most one send past the ceiling, got {}",
            outcome.log.len()
        );
    }

    #[test]
    fn unlimited_budget_never_reports_deadline() {
        let mut llm = SimulatedGpt4::new(ErrorModel::paper_default(), 11);
        let outcome = SynthesisSession::default().run(&mut llm, 6);
        assert!(!outcome.deadline_exceeded);
        assert_eq!(outcome.transport, TransportStats::default());
    }

    #[test]
    fn flaky_transport_retries_and_still_converges() {
        let mut model = ErrorModel::paper_default();
        model.transport = llm_sim::TransportModel::flaky();
        let mut llm = SimulatedGpt4::new(model, 11);
        let s = SynthesisSession {
            retry: crate::session::RetryPolicy {
                max_retries: 8,
                ..Default::default()
            },
            ..Default::default()
        };
        let outcome = s.run(&mut llm, 6);
        assert!(
            outcome.transport.retries > 0,
            "flaky backend forces retries"
        );
        assert!(
            outcome.global.holds(),
            "retry absorbs transport faults: {:#?}",
            outcome.global.violations
        );
        assert!(outcome.transport.backoff_ms_total > 0);
    }

    #[test]
    fn iip_off_costs_more_auto_prompts() {
        // Ablation E9: without IIPs the preventable faults appear and
        // must be repaired, so the automated count grows.
        let run_with = |model: ErrorModel, seed: u64| {
            let mut llm = SimulatedGpt4::new(model, seed);
            let s = SynthesisSession {
                iips: IipDatabase::paper_default(),
                ..Default::default()
            };
            s.run(&mut llm, 3).leverage
        };
        let run_without = |seed: u64| {
            let mut llm = SimulatedGpt4::new(ErrorModel::without_iip(), seed);
            let s = SynthesisSession {
                iips: IipDatabase::empty(),
                ..Default::default()
            };
            s.run(&mut llm, 3).leverage
        };
        let mut with_total = 0usize;
        let mut without_total = 0usize;
        for seed in 0..3 {
            with_total += run_with(ErrorModel::paper_default(), seed).auto;
            without_total += run_without(seed).auto;
        }
        assert!(
            without_total > with_total,
            "without IIP {without_total} should exceed with IIP {with_total}"
        );
    }
}

//! The Modularizer: topology JSON → per-router prompts and local policy
//! specs (the Lightyear-style decomposition of the global no-transit
//! policy).

use bf_lite::LocalPolicyCheck;
use llm_sim::prompts;
use net_model::Community;
use std::net::Ipv4Addr;
use topo_model::{describe_network, describe_router, StarRoles, Topology};

/// The local policy assigned to one router: R1 tags at ingress from each
/// edge and filters at egress to each edge; edge routers carry no policy.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct LocalPolicySpec {
    /// `(neighbor, community, route-map name)` ingress tags.
    pub ingress_tags: Vec<(Ipv4Addr, Community, String)>,
    /// `(neighbor, communities-to-deny, route-map name)` egress filters.
    pub egress_filters: Vec<(Ipv4Addr, Vec<Community>, String)>,
}

/// Everything COSYNTH needs to drive one router's synthesis: the prompt,
/// the policy spec, and the verifier checks.
#[derive(Debug, Clone)]
pub struct RouterAssignment {
    /// Router name.
    pub name: String,
    /// The full synthesis prompt (description + policy + task sentence).
    pub prompt: String,
    /// The structured local policy (for building checks).
    pub policy: LocalPolicySpec,
    /// The Lightyear-style local checks the verifier runs.
    pub checks: Vec<LocalPolicyCheck>,
}

/// The Modularizer.
pub struct Modularizer;

impl Modularizer {
    /// The community assigned to edge router `Rk` (R2 → 100:1, R3 →
    /// 101:1, … exactly the paper's scheme).
    pub fn edge_community(edge_index: usize) -> Community {
        Community::new(100 + edge_index as u16, 1)
    }

    /// Decomposes the global no-transit policy over a star into
    /// per-router assignments, hub first.
    pub fn assign(topology: &Topology, roles: &StarRoles) -> Vec<RouterAssignment> {
        let mut out = Vec::new();
        let hub_spec = topology.router(&roles.hub).expect("hub exists");
        // Hub policy: tag per edge at ingress, filter others per edge at
        // egress.
        let mut policy = LocalPolicySpec::default();
        let mut checks = Vec::new();
        let edge_neighbors: Vec<(usize, Ipv4Addr)> = roles
            .edges
            .iter()
            .enumerate()
            .filter_map(|(i, edge)| {
                hub_spec
                    .neighbors
                    .iter()
                    .find(|n| &n.peer_router == edge)
                    .map(|n| (i, n.addr))
            })
            .collect();
        for &(i, addr) in &edge_neighbors {
            let community = Self::edge_community(i);
            let map = format!("ADD_COMM_{}", roles.edges[i]);
            policy.ingress_tags.push((addr, community, map.clone()));
            checks.push(LocalPolicyCheck::PermittedRoutesCarry {
                chain: vec![map.clone()],
                community,
            });
            checks.push(LocalPolicyCheck::PermittedRoutesPreserve {
                chain: vec![map],
                community: Community::new(65_000, 99),
            });
        }
        for &(i, addr) in &edge_neighbors {
            let others: Vec<Community> = edge_neighbors
                .iter()
                .filter(|&&(j, _)| j != i)
                .map(|&(j, _)| Self::edge_community(j))
                .collect();
            if others.is_empty() {
                continue;
            }
            let map = format!("FILTER_COMM_OUT_{}", roles.edges[i]);
            policy
                .egress_filters
                .push((addr, others.clone(), map.clone()));
            for c in others {
                checks.push(LocalPolicyCheck::RoutesWithCommunityDenied {
                    chain: vec![map.clone()],
                    community: c,
                });
            }
        }
        out.push(RouterAssignment {
            name: roles.hub.clone(),
            prompt: Self::prompt_for(topology, &roles.hub, &policy),
            policy,
            checks,
        });
        // Edge routers: plain eBGP forwarding, no policy.
        for edge in &roles.edges {
            let policy = LocalPolicySpec::default();
            out.push(RouterAssignment {
                name: edge.clone(),
                prompt: Self::prompt_for(topology, edge, &policy),
                policy,
                checks: Vec::new(),
            });
        }
        out
    }

    /// Builds the synthesis prompt for one router.
    fn prompt_for(topology: &Topology, name: &str, policy: &LocalPolicySpec) -> String {
        let mut p = String::new();
        p.push_str(&describe_router(topology, name).expect("router exists"));
        for (addr, c, map) in &policy.ingress_tags {
            p.push_str(&prompts::ingress_tag_sentence(*addr, *c, map));
            p.push('\n');
        }
        for (addr, cs, map) in &policy.egress_filters {
            p.push_str(&prompts::egress_filter_sentence(*addr, cs, map));
            p.push('\n');
        }
        p.push_str(prompts::SYNTH_TASK);
        p.push('\n');
        p
    }

    /// The global-specification prompt (the ablation's style): network
    /// description plus the global policy in one shot.
    pub fn global_prompt(topology: &Topology) -> String {
        format!("{}\n{}\n", describe_network(topology), prompts::GLOBAL_TASK)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use topo_model::star;

    #[test]
    fn hub_gets_tags_and_filters_edges_get_none() {
        let (t, roles) = star(3);
        let assignments = Modularizer::assign(&t, &roles);
        assert_eq!(assignments.len(), 4);
        let hub = &assignments[0];
        assert_eq!(hub.name, "R1");
        assert_eq!(hub.policy.ingress_tags.len(), 3);
        assert_eq!(hub.policy.egress_filters.len(), 3);
        // Each egress filter denies the other two communities.
        for (_, cs, _) in &hub.policy.egress_filters {
            assert_eq!(cs.len(), 2);
        }
        for a in &assignments[1..] {
            assert!(a.policy.ingress_tags.is_empty());
            assert!(a.checks.is_empty());
        }
    }

    #[test]
    fn community_scheme_matches_paper() {
        assert_eq!(Modularizer::edge_community(0).to_string(), "100:1");
        assert_eq!(Modularizer::edge_community(1).to_string(), "101:1");
        assert_eq!(Modularizer::edge_community(4).to_string(), "104:1");
    }

    #[test]
    fn hub_checks_cover_tagging_and_filtering() {
        let (t, roles) = star(2);
        let assignments = Modularizer::assign(&t, &roles);
        let hub = &assignments[0];
        let carry = hub
            .checks
            .iter()
            .filter(|c| matches!(c, LocalPolicyCheck::PermittedRoutesCarry { .. }))
            .count();
        let deny = hub
            .checks
            .iter()
            .filter(|c| matches!(c, LocalPolicyCheck::RoutesWithCommunityDenied { .. }))
            .count();
        let preserve = hub
            .checks
            .iter()
            .filter(|c| matches!(c, LocalPolicyCheck::PermittedRoutesPreserve { .. }))
            .count();
        assert_eq!(carry, 2);
        assert_eq!(preserve, 2);
        assert_eq!(deny, 2); // 2 edges × 1 other community each
    }

    #[test]
    fn prompts_parse_back_in_the_simulated_model() {
        let (t, roles) = star(2);
        let assignments = Modularizer::assign(&t, &roles);
        let hub = &assignments[0];
        let u = llm_sim::synth_task::understand_prompt(&hub.prompt);
        assert_eq!(u.name, "R1");
        assert_eq!(u.ingress_tags.len(), 2);
        assert_eq!(u.egress_filters.len(), 2);
        assert_eq!(u.neighbors.len(), 3); // 2 edges + customer
        assert!(hub.prompt.contains(prompts::SYNTH_TASK));
    }

    #[test]
    fn global_prompt_mentions_policy_and_network() {
        let (t, _) = star(2);
        let p = Modularizer::global_prompt(&t);
        assert!(p.contains("no-transit"));
        assert!(p.contains("is connected to"));
    }
}

//! The Modularizer: topology JSON → per-router prompts and local policy
//! specs (the Lightyear-style decomposition of the global no-transit
//! policy). Works over any [`Scenario`]; the paper's star is one
//! instance, built by [`Modularizer::star_scenario`].

use bf_lite::LocalPolicyCheck;
use llm_sim::prompts;
use net_model::Community;
use std::net::Ipv4Addr;
use topo_model::{
    describe_network, describe_router, Expectation, RouterPolicy, Scenario, StarRoles, Topology,
};

/// The local policy assigned to one router (re-exported from
/// `topo_model::scenario` so the generator, the Modularizer and the
/// fleet share one vocabulary).
pub type LocalPolicySpec = RouterPolicy;

/// Everything COSYNTH needs to drive one router's synthesis: the prompt,
/// the policy spec, and the verifier checks.
#[derive(Debug, Clone)]
pub struct RouterAssignment {
    /// Router name.
    pub name: String,
    /// The full synthesis prompt (description + policy + task sentence).
    pub prompt: String,
    /// The structured local policy (for building checks).
    pub policy: LocalPolicySpec,
    /// The Lightyear-style local checks the verifier runs.
    pub checks: Vec<LocalPolicyCheck>,
}

/// The Modularizer.
pub struct Modularizer;

impl Modularizer {
    /// The community probed by the preserve (additive) check — never a
    /// community any policy actually sets.
    pub const PRESERVE_PROBE: Community = Community {
        high: 65_000,
        low: 99,
    };

    /// The community assigned to edge router `Rk` (R2 → 100:1, R3 →
    /// 101:1, … exactly the paper's scheme).
    pub fn edge_community(edge_index: usize) -> Community {
        Community::new(100 + edge_index as u16, 1)
    }

    /// Decomposes the global no-transit policy over a star into
    /// per-router assignments, hub first. Equivalent to
    /// `assign_scenario(&star_scenario(topology, roles))`.
    pub fn assign(topology: &Topology, roles: &StarRoles) -> Vec<RouterAssignment> {
        Self::assign_scenario(&Self::star_scenario(topology, roles))
    }

    /// Decomposes any scenario into per-router assignments, one per
    /// internal router in topology order (routers without a policy get a
    /// plain-forwarding prompt and no checks).
    pub fn assign_scenario(scenario: &Scenario) -> Vec<RouterAssignment> {
        scenario
            .topology
            .internal_routers()
            .map(|r| {
                let policy = scenario.policy_for(&r.name).cloned().unwrap_or_default();
                RouterAssignment {
                    prompt: Self::prompt_for(&scenario.topology, &r.name, &policy),
                    checks: Self::checks_for(&policy),
                    name: r.name.clone(),
                    policy,
                }
            })
            .collect()
    }

    /// The Lightyear-style local checks implied by a policy: a carry and
    /// a preserve check per ingress tag, a value check per ingress
    /// preference, a deny check per filtered community.
    pub fn checks_for(policy: &LocalPolicySpec) -> Vec<LocalPolicyCheck> {
        let mut checks = Vec::new();
        for (_, community, map) in &policy.ingress_tags {
            checks.push(LocalPolicyCheck::PermittedRoutesCarry {
                chain: vec![map.clone()],
                community: *community,
            });
            checks.push(LocalPolicyCheck::PermittedRoutesPreserve {
                chain: vec![map.clone()],
                community: Self::PRESERVE_PROBE,
            });
        }
        for (_, value, map) in &policy.ingress_prefs {
            checks.push(LocalPolicyCheck::PermittedRoutesSetLocalPref {
                chain: vec![map.clone()],
                value: *value,
            });
        }
        for (_, communities, map) in &policy.egress_filters {
            for c in communities {
                checks.push(LocalPolicyCheck::RoutesWithCommunityDenied {
                    chain: vec![map.clone()],
                    community: *c,
                });
            }
        }
        checks
    }

    /// The paper's star experiment as a [`Scenario`]: the hub tags each
    /// edge's routes at ingress and filters the other edges' tags at
    /// egress; the expectations are the no-transit triple (ISPs
    /// mutually unreachable, customer reachable everywhere).
    pub fn star_scenario(topology: &Topology, roles: &StarRoles) -> Scenario {
        let hub_spec = topology.router(&roles.hub).expect("hub exists");
        let mut policy = LocalPolicySpec::default();
        let edge_neighbors: Vec<(usize, Ipv4Addr)> = roles
            .edges
            .iter()
            .enumerate()
            .filter_map(|(i, edge)| {
                hub_spec
                    .neighbors
                    .iter()
                    .find(|n| &n.peer_router == edge)
                    .map(|n| (i, n.addr))
            })
            .collect();
        for &(i, addr) in &edge_neighbors {
            let map = format!("ADD_COMM_{}", roles.edges[i]);
            policy
                .ingress_tags
                .push((addr, Self::edge_community(i), map));
        }
        for &(i, addr) in &edge_neighbors {
            let others: Vec<Community> = edge_neighbors
                .iter()
                .filter(|&&(j, _)| j != i)
                .map(|&(j, _)| Self::edge_community(j))
                .collect();
            if others.is_empty() {
                continue;
            }
            let map = format!("FILTER_COMM_OUT_{}", roles.edges[i]);
            policy.egress_filters.push((addr, others, map));
        }
        let mut expectations = Vec::new();
        for (j, isp_j) in roles.isps.iter().enumerate() {
            expectations.push(Expectation::Reachable {
                at: isp_j.clone(),
                prefix: roles.customer_prefix,
            });
            for (i, _) in roles.isps.iter().enumerate() {
                if i != j {
                    expectations.push(Expectation::Unreachable {
                        at: isp_j.clone(),
                        prefix: roles.isp_prefixes[i],
                    });
                }
            }
        }
        for p in &roles.isp_prefixes {
            expectations.push(Expectation::Reachable {
                at: roles.customer.clone(),
                prefix: *p,
            });
        }
        Scenario {
            name: format!("star-{}", roles.edges.len()),
            family: "star".into(),
            intent: "no-transit".into(),
            topology: topology.clone(),
            policies: vec![(roles.hub.clone(), policy)],
            expectations,
        }
    }

    /// Builds the synthesis prompt for one router.
    fn prompt_for(topology: &Topology, name: &str, policy: &LocalPolicySpec) -> String {
        let mut p = String::new();
        p.push_str(&describe_router(topology, name).expect("router exists"));
        for (addr, c, map) in &policy.ingress_tags {
            p.push_str(&prompts::ingress_tag_sentence(*addr, *c, map));
            p.push('\n');
        }
        for (addr, v, map) in &policy.ingress_prefs {
            p.push_str(&prompts::ingress_pref_sentence(*addr, *v, map));
            p.push('\n');
        }
        for (addr, cs, map) in &policy.egress_filters {
            p.push_str(&prompts::egress_filter_sentence(*addr, cs, map));
            p.push('\n');
        }
        p.push_str(prompts::SYNTH_TASK);
        p.push('\n');
        p
    }

    /// The global-specification prompt (the ablation's style): network
    /// description plus the global policy in one shot.
    pub fn global_prompt(topology: &Topology) -> String {
        format!("{}\n{}\n", describe_network(topology), prompts::GLOBAL_TASK)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use topo_model::star;

    #[test]
    fn hub_gets_tags_and_filters_edges_get_none() {
        let (t, roles) = star(3);
        let assignments = Modularizer::assign(&t, &roles);
        assert_eq!(assignments.len(), 4);
        let hub = &assignments[0];
        assert_eq!(hub.name, "R1");
        assert_eq!(hub.policy.ingress_tags.len(), 3);
        assert_eq!(hub.policy.egress_filters.len(), 3);
        // Each egress filter denies the other two communities.
        for (_, cs, _) in &hub.policy.egress_filters {
            assert_eq!(cs.len(), 2);
        }
        for a in &assignments[1..] {
            assert!(a.policy.ingress_tags.is_empty());
            assert!(a.checks.is_empty());
        }
    }

    #[test]
    fn community_scheme_matches_paper() {
        assert_eq!(Modularizer::edge_community(0).to_string(), "100:1");
        assert_eq!(Modularizer::edge_community(1).to_string(), "101:1");
        assert_eq!(Modularizer::edge_community(4).to_string(), "104:1");
    }

    #[test]
    fn hub_checks_cover_tagging_and_filtering() {
        let (t, roles) = star(2);
        let assignments = Modularizer::assign(&t, &roles);
        let hub = &assignments[0];
        let carry = hub
            .checks
            .iter()
            .filter(|c| matches!(c, LocalPolicyCheck::PermittedRoutesCarry { .. }))
            .count();
        let deny = hub
            .checks
            .iter()
            .filter(|c| matches!(c, LocalPolicyCheck::RoutesWithCommunityDenied { .. }))
            .count();
        let preserve = hub
            .checks
            .iter()
            .filter(|c| matches!(c, LocalPolicyCheck::PermittedRoutesPreserve { .. }))
            .count();
        assert_eq!(carry, 2);
        assert_eq!(preserve, 2);
        assert_eq!(deny, 2); // 2 edges × 1 other community each
    }

    #[test]
    fn prompts_parse_back_in_the_simulated_model() {
        let (t, roles) = star(2);
        let assignments = Modularizer::assign(&t, &roles);
        let hub = &assignments[0];
        let u = llm_sim::synth_task::understand_prompt(&hub.prompt);
        assert_eq!(u.name, "R1");
        assert_eq!(u.ingress_tags.len(), 2);
        assert_eq!(u.egress_filters.len(), 2);
        assert_eq!(u.neighbors.len(), 3); // 2 edges + customer
        assert!(hub.prompt.contains(prompts::SYNTH_TASK));
    }

    #[test]
    fn global_prompt_mentions_policy_and_network() {
        let (t, _) = star(2);
        let p = Modularizer::global_prompt(&t);
        assert!(p.contains("no-transit"));
        assert!(p.contains("is connected to"));
    }
}

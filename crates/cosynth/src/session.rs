//! Shared session machinery: transcripts, limits, and the LLM chat
//! wrapper.

use crate::leverage::Leverage;
use llm_sim::{LanguageModel, Message};

/// Who issued a prompt.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PromptKind {
    /// The initial task specification (counted as neither for leverage).
    Task,
    /// A verifier-generated rectification prompt.
    Auto,
    /// A manual correction prompt.
    Human,
}

/// One prompt/response exchange in the log.
#[derive(Debug, Clone)]
pub struct LoggedPrompt {
    /// Who issued it.
    pub kind: PromptKind,
    /// The prompt text.
    pub prompt: String,
    /// The model's response text.
    pub response: String,
}

/// Bounds on the automatic loops: "V may abandon automatic correction
/// after some number of trials, and the human must still correct
/// manually."
#[derive(Debug, Clone, Copy)]
pub struct SessionLimits {
    /// Automatic attempts per distinct finding before punting to the
    /// human.
    pub attempts_per_finding: usize,
    /// Total rectification rounds before the session gives up entirely.
    pub max_rounds: usize,
}

impl Default for SessionLimits {
    fn default() -> Self {
        SessionLimits {
            attempts_per_finding: 2,
            max_rounds: 200,
        }
    }
}

/// A running chat with the LLM plus the prompt accounting.
pub struct SessionTranscript<'a, M: LanguageModel + ?Sized> {
    llm: &'a mut M,
    messages: Vec<Message>,
    /// The full prompt/response log.
    pub log: Vec<LoggedPrompt>,
    /// Leverage counters.
    pub leverage: Leverage,
}

impl<'a, M: LanguageModel + ?Sized> SessionTranscript<'a, M> {
    /// Starts a session, optionally with an IIP system message.
    pub fn new(llm: &'a mut M, system: Option<String>) -> Self {
        let mut messages = Vec::new();
        if let Some(s) = system {
            messages.push(Message::system(s));
        }
        SessionTranscript {
            llm,
            messages,
            log: Vec::new(),
            leverage: Leverage::default(),
        }
    }

    /// Sends a prompt, records it, and returns the response text.
    pub fn send(&mut self, kind: PromptKind, prompt: impl Into<String>) -> String {
        let prompt = prompt.into();
        match kind {
            PromptKind::Task => {}
            PromptKind::Auto => self.leverage.record_auto(),
            PromptKind::Human => self.leverage.record_human(),
        }
        self.messages.push(Message::user(prompt.clone()));
        let response = self.llm.complete(&self.messages);
        self.messages.push(Message::assistant(response.clone()));
        self.log.push(LoggedPrompt {
            kind,
            prompt,
            response: response.clone(),
        });
        response
    }

    /// Sends a prompt and extracts the fenced config from the response,
    /// falling back to the previous config when the model returns none.
    pub fn send_expecting_config(
        &mut self,
        kind: PromptKind,
        prompt: impl Into<String>,
        previous: &str,
    ) -> String {
        let response = self.send(kind, prompt);
        llm_sim::model::last_fenced_block(&response).unwrap_or_else(|| previous.to_string())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use llm_sim::ScriptedLlm;

    #[test]
    fn transcript_counts_by_kind() {
        let mut llm = ScriptedLlm::new(vec!["ok".to_string()]);
        let mut t = SessionTranscript::new(&mut llm, None);
        t.send(PromptKind::Task, "do the thing");
        t.send(PromptKind::Auto, "fix A");
        t.send(PromptKind::Auto, "fix B");
        t.send(PromptKind::Human, "fix C manually");
        assert_eq!(t.leverage.auto, 2);
        assert_eq!(t.leverage.human, 1);
        assert_eq!(t.log.len(), 4);
        assert_eq!(t.log[0].kind, PromptKind::Task);
    }

    #[test]
    fn system_message_precedes_everything() {
        let mut llm = ScriptedLlm::new(vec!["ok".to_string()]);
        let mut t = SessionTranscript::new(&mut llm, Some("be careful".into()));
        t.send(PromptKind::Task, "task");
        assert_eq!(t.messages.len(), 3); // system + user + assistant
        assert_eq!(t.messages[0].role, llm_sim::Role::System);
    }

    #[test]
    fn expecting_config_falls_back() {
        let mut llm = ScriptedLlm::new(vec![
            "no code".to_string(),
            "```\nhostname r1\n```".to_string(),
        ]);
        let mut t = SessionTranscript::new(&mut llm, None);
        let c1 = t.send_expecting_config(PromptKind::Auto, "p", "old config\n");
        assert_eq!(c1, "old config\n");
        let c2 = t.send_expecting_config(PromptKind::Auto, "p", &c1);
        assert_eq!(c2, "hostname r1\n");
    }

    #[test]
    fn default_limits_are_sane() {
        let l = SessionLimits::default();
        assert!(l.attempts_per_finding >= 1);
        assert!(l.max_rounds >= 10);
    }
}

//! Shared session machinery: transcripts, limits, budgets, and the LLM
//! chat wrapper (including transport retry/backoff).

use crate::leverage::Leverage;
use llm_sim::rng::SimRng;
use llm_sim::{LanguageModel, Message};
use std::time::Instant;
use telemetry::SessionTrace;

/// Who issued a prompt.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PromptKind {
    /// The initial task specification (counted as neither for leverage).
    Task,
    /// A verifier-generated rectification prompt.
    Auto,
    /// A manual correction prompt.
    Human,
}

/// One prompt/response exchange in the log.
#[derive(Debug, Clone)]
pub struct LoggedPrompt {
    /// Who issued it.
    pub kind: PromptKind,
    /// The prompt text.
    pub prompt: String,
    /// The model's response text.
    pub response: String,
}

/// Bounds on the automatic loops: "V may abandon automatic correction
/// after some number of trials, and the human must still correct
/// manually."
#[derive(Debug, Clone, Copy)]
pub struct SessionLimits {
    /// Automatic attempts per distinct finding before punting to the
    /// human.
    pub attempts_per_finding: usize,
    /// Total rectification rounds before the session gives up entirely.
    pub max_rounds: usize,
}

impl Default for SessionLimits {
    fn default() -> Self {
        SessionLimits {
            attempts_per_finding: 2,
            max_rounds: 200,
        }
    }
}

/// A per-session deadline: wall-clock and/or prompt-count ceilings. The
/// default is unlimited, so every pre-existing caller keeps its
/// behaviour. A session that trips either ceiling stops where it is and
/// reports a typed `deadline_exceeded` outcome instead of occupying a
/// fleet worker forever.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SessionBudget {
    /// Wall-clock ceiling in milliseconds (None = unlimited).
    pub max_wall_ms: Option<u64>,
    /// Prompt-count ceiling across the whole session (None = unlimited).
    pub max_prompts: Option<usize>,
}

impl SessionBudget {
    /// Whether a session at `elapsed_ms` / `prompts` is over budget.
    pub fn exceeded(&self, elapsed_ms: u128, prompts: usize) -> bool {
        if let Some(ms) = self.max_wall_ms {
            if elapsed_ms >= u128::from(ms) {
                return true;
            }
        }
        if let Some(p) = self.max_prompts {
            if prompts >= p {
                return true;
            }
        }
        false
    }

    /// Whether any ceiling is set at all.
    pub fn is_limited(&self) -> bool {
        self.max_wall_ms.is_some() || self.max_prompts.is_some()
    }
}

/// Bounded retry-with-backoff for transport failures. Backoff is
/// *accounted*, not slept — the simulated transport has no real latency,
/// so sleeping would only slow the fleet; the session instead records
/// the delay it would have paid so latency reports stay honest.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RetryPolicy {
    /// Retries per prompt before escalating to the human channel.
    pub max_retries: usize,
    /// Base backoff in milliseconds; attempt `n` waits
    /// `base << (n-1)` plus seeded jitter.
    pub base_backoff_ms: u64,
    /// Seed for the deterministic jitter stream.
    pub jitter_seed: u64,
}

impl Default for RetryPolicy {
    fn default() -> Self {
        RetryPolicy {
            max_retries: 2,
            base_backoff_ms: 100,
            jitter_seed: 0,
        }
    }
}

/// Transport-layer accounting for one session: how many sends were
/// retried, how many exhausted their retries (escalating to the human
/// channel), and the total simulated backoff delay.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct TransportStats {
    /// Individual retried attempts (a send that fails twice counts 2).
    pub retries: usize,
    /// Sends whose retry budget ran out.
    pub escalations: usize,
    /// Total accounted (not slept) backoff delay in milliseconds.
    pub backoff_ms_total: u64,
}

impl TransportStats {
    /// Folds another session's counters into this one.
    pub fn absorb(&mut self, other: &TransportStats) {
        self.retries += other.retries;
        self.escalations += other.escalations;
        self.backoff_ms_total += other.backoff_ms_total;
    }
}

/// A running chat with the LLM plus the prompt accounting.
pub struct SessionTranscript<'a, M: LanguageModel + ?Sized> {
    llm: &'a mut M,
    messages: Vec<Message>,
    /// The full prompt/response log.
    pub log: Vec<LoggedPrompt>,
    /// Leverage counters.
    pub leverage: Leverage,
    /// The session's deadline (default unlimited).
    budget: SessionBudget,
    /// When the session started (for the wall-clock ceiling).
    started: Instant,
    /// Transport retry policy.
    retry: RetryPolicy,
    /// Seeded jitter stream for backoff accounting.
    jitter: SimRng,
    /// Transport retry/escalation counters for this session.
    pub transport: TransportStats,
    /// Per-session stage trace. The transcript records one
    /// [`telemetry::Stage::Backend`] span per completion *attempt*
    /// (retries included); session drivers record their pipeline stages
    /// here too and merge the context-held trace at outcome assembly.
    pub trace: SessionTrace,
}

impl<'a, M: LanguageModel + ?Sized> SessionTranscript<'a, M> {
    /// Starts a session, optionally with an IIP system message.
    pub fn new(llm: &'a mut M, system: Option<String>) -> Self {
        let mut messages = Vec::new();
        if let Some(s) = system {
            messages.push(Message::system(s));
        }
        let retry = RetryPolicy::default();
        SessionTranscript {
            llm,
            messages,
            log: Vec::new(),
            leverage: Leverage::default(),
            budget: SessionBudget::default(),
            started: Instant::now(),
            jitter: SimRng::seed_from_u64(retry.jitter_seed),
            retry,
            transport: TransportStats::default(),
            trace: SessionTrace::new(),
        }
    }

    /// Sets the session deadline (builder style).
    pub fn with_budget(mut self, budget: SessionBudget) -> Self {
        self.budget = budget;
        self
    }

    /// Sets the transport retry policy (builder style).
    pub fn with_retry(mut self, retry: RetryPolicy) -> Self {
        self.retry = retry;
        self.jitter = SimRng::seed_from_u64(retry.jitter_seed);
        self
    }

    /// The backend's cumulative cost ledger. The transcript borrows the
    /// backend exclusively, so outcome assembly reads the ledger through
    /// here; callers that reuse one backend across sessions snapshot the
    /// ledger first and diff with `CostLedger::since`.
    pub fn backend_cost(&self) -> llm_sim::CostLedger {
        self.llm.cost()
    }

    /// Whether the session has tripped its deadline. Callers check this
    /// at loop tops and stop work; the transcript itself never refuses a
    /// send (the caller may want one final wrap-up prompt).
    pub fn over_budget(&self) -> bool {
        self.budget
            .exceeded(self.started.elapsed().as_millis(), self.log.len())
    }

    /// Sends a prompt, records it, and returns the response text.
    ///
    /// Transport failures are retried up to the policy's budget with
    /// exponential backoff (accounted, not slept). When the budget runs
    /// out the failure escalates to the human channel — a human re-issues
    /// the request out of band, so the extra prompt is charged as human
    /// effort and leverage accounting stays honest — and the final
    /// attempt goes through the infallible `complete` path.
    pub fn send(&mut self, kind: PromptKind, prompt: impl Into<String>) -> String {
        let prompt = prompt.into();
        match kind {
            PromptKind::Task => {}
            PromptKind::Auto => self.leverage.record_auto(),
            PromptKind::Human => self.leverage.record_human(),
        }
        self.messages.push(Message::user(prompt.clone()));
        let mut attempt = 0usize;
        let response = loop {
            match self
                .llm
                .try_complete_traced(&self.messages, &mut self.trace)
            {
                Ok(r) => break r,
                Err(_err) if attempt < self.retry.max_retries => {
                    attempt += 1;
                    self.transport.retries += 1;
                    let base = self.retry.base_backoff_ms << (attempt - 1);
                    let jitter = if base == 0 {
                        0
                    } else {
                        self.jitter.next_u64() % (base / 2 + 1)
                    };
                    self.transport.backoff_ms_total += base + jitter;
                }
                Err(_err) => {
                    // Retry budget exhausted: the human channel re-issues
                    // the request, which always lands.
                    self.transport.escalations += 1;
                    self.leverage.record_human();
                    break self.llm.complete_traced(&self.messages, &mut self.trace);
                }
            }
        };
        self.messages.push(Message::assistant(response.clone()));
        self.log.push(LoggedPrompt {
            kind,
            prompt,
            response: response.clone(),
        });
        response
    }

    /// Sends a prompt and extracts the fenced config from the response,
    /// falling back to the previous config when the model returns none.
    pub fn send_expecting_config(
        &mut self,
        kind: PromptKind,
        prompt: impl Into<String>,
        previous: &str,
    ) -> String {
        let response = self.send(kind, prompt);
        llm_sim::model::last_fenced_block(&response).unwrap_or_else(|| previous.to_string())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use llm_sim::ScriptedLlm;

    #[test]
    fn transcript_counts_by_kind() {
        let mut llm = ScriptedLlm::new(vec!["ok".to_string()]);
        let mut t = SessionTranscript::new(&mut llm, None);
        t.send(PromptKind::Task, "do the thing");
        t.send(PromptKind::Auto, "fix A");
        t.send(PromptKind::Auto, "fix B");
        t.send(PromptKind::Human, "fix C manually");
        assert_eq!(t.leverage.auto, 2);
        assert_eq!(t.leverage.human, 1);
        assert_eq!(t.log.len(), 4);
        assert_eq!(t.log[0].kind, PromptKind::Task);
    }

    #[test]
    fn system_message_precedes_everything() {
        let mut llm = ScriptedLlm::new(vec!["ok".to_string()]);
        let mut t = SessionTranscript::new(&mut llm, Some("be careful".into()));
        t.send(PromptKind::Task, "task");
        assert_eq!(t.messages.len(), 3); // system + user + assistant
        assert_eq!(t.messages[0].role, llm_sim::Role::System);
    }

    #[test]
    fn expecting_config_falls_back() {
        let mut llm = ScriptedLlm::new(vec![
            "no code".to_string(),
            "```\nhostname r1\n```".to_string(),
        ]);
        let mut t = SessionTranscript::new(&mut llm, None);
        let c1 = t.send_expecting_config(PromptKind::Auto, "p", "old config\n");
        assert_eq!(c1, "old config\n");
        let c2 = t.send_expecting_config(PromptKind::Auto, "p", &c1);
        assert_eq!(c2, "hostname r1\n");
    }

    #[test]
    fn default_limits_are_sane() {
        let l = SessionLimits::default();
        assert!(l.attempts_per_finding >= 1);
        assert!(l.max_rounds >= 10);
    }

    /// A model whose transport fails the first `failures` attempts.
    struct FlakyLlm {
        failures: usize,
        completions: usize,
    }

    impl LanguageModel for FlakyLlm {
        fn complete(&mut self, _t: &[Message]) -> String {
            self.completions += 1;
            "ok".into()
        }

        fn try_complete(&mut self, t: &[Message]) -> Result<String, llm_sim::TransportError> {
            if self.failures > 0 {
                self.failures -= 1;
                Err(llm_sim::TransportError::Timeout)
            } else {
                Ok(self.complete(t))
            }
        }
    }

    #[test]
    fn default_budget_is_unlimited() {
        let mut llm = ScriptedLlm::new(vec!["ok".to_string()]);
        let mut t = SessionTranscript::new(&mut llm, None);
        for _ in 0..50 {
            t.send(PromptKind::Auto, "p");
        }
        assert!(!t.over_budget());
    }

    #[test]
    fn prompt_budget_trips_after_ceiling() {
        let mut llm = ScriptedLlm::new(vec!["ok".to_string()]);
        let mut t = SessionTranscript::new(&mut llm, None).with_budget(SessionBudget {
            max_prompts: Some(2),
            ..Default::default()
        });
        assert!(!t.over_budget());
        t.send(PromptKind::Task, "task");
        assert!(!t.over_budget());
        t.send(PromptKind::Auto, "fix");
        assert!(t.over_budget());
    }

    #[test]
    fn zero_wall_budget_is_immediately_exceeded() {
        let mut llm = ScriptedLlm::new(vec!["ok".to_string()]);
        let t = SessionTranscript::new(&mut llm, None).with_budget(SessionBudget {
            max_wall_ms: Some(0),
            ..Default::default()
        });
        assert!(t.over_budget());
    }

    #[test]
    fn transient_transport_failure_is_retried() {
        let mut llm = FlakyLlm {
            failures: 2,
            completions: 0,
        };
        let mut t = SessionTranscript::new(&mut llm, None);
        let r = t.send(PromptKind::Auto, "p");
        assert_eq!(r, "ok");
        assert_eq!(t.transport.retries, 2);
        assert_eq!(t.transport.escalations, 0);
        assert!(t.transport.backoff_ms_total >= 100 + 200);
        assert_eq!(t.leverage.human, 0, "retries are not human effort");
        assert_eq!(
            t.trace.get(telemetry::Stage::Backend).count,
            3,
            "one backend span per attempt: two failures plus the success"
        );
    }

    #[test]
    fn exhausted_retries_escalate_to_human() {
        let mut llm = FlakyLlm {
            failures: 10,
            completions: 0,
        };
        let mut t = SessionTranscript::new(&mut llm, None).with_retry(RetryPolicy {
            max_retries: 1,
            base_backoff_ms: 50,
            jitter_seed: 9,
        });
        let r = t.send(PromptKind::Auto, "p");
        assert_eq!(r, "ok", "the human re-issue always lands");
        assert_eq!(t.transport.retries, 1);
        assert_eq!(t.transport.escalations, 1);
        assert_eq!(t.leverage.human, 1, "escalation is charged to the human");
        assert_eq!(t.leverage.auto, 1, "the original auto prompt still counts");
    }

    #[test]
    fn backoff_accounting_is_deterministic_per_seed() {
        let run = |seed| {
            let mut llm = FlakyLlm {
                failures: 2,
                completions: 0,
            };
            let mut t = SessionTranscript::new(&mut llm, None).with_retry(RetryPolicy {
                jitter_seed: seed,
                ..Default::default()
            });
            t.send(PromptKind::Auto, "p");
            t.transport.backoff_ms_total
        };
        assert_eq!(run(4), run(4));
    }
}

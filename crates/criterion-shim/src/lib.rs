//! A dependency-free, drop-in shim for the subset of the Criterion
//! benchmarking API this workspace uses.
//!
//! The container this repository builds in has no network access to
//! crates.io, so the real `criterion` crate cannot be vendored. The
//! benches under `crates/cosynth-bench/benches/` only exercise a small
//! slice of its surface (`criterion_group!`/`criterion_main!`,
//! `Criterion::bench_function`, benchmark groups with throughput and
//! per-input ids); this crate implements exactly that slice with plain
//! `std::time::Instant` timing and median-of-samples reporting.
//!
//! Semantics match Criterion closely enough for trend tracking:
//!
//! * every benchmark is warmed up, then measured over `sample_size`
//!   samples (default 20), each sample batching enough iterations to
//!   run for at least ~2ms;
//! * the reported figure is the **median** per-iteration time, along
//!   with min/max across samples;
//! * when invoked by `cargo bench` the harness receives `--bench`; any
//!   other non-flag CLI argument is treated as a name filter, exactly
//!   like Criterion's substring filtering.

use std::time::{Duration, Instant};

/// Re-export: benches import `std::hint::black_box` directly, but some
/// Criterion users spell it `criterion::black_box`.
pub use std::hint::black_box;

/// Summary statistics over a set of samples: median with p10/p90 spread
/// (plus the extremes). Used by the shim's own reporting and exported
/// for `BENCH_*.json` writers (the fleet runner's per-session wall-clock
/// spread), so every bench file carries the same notion of spread.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SampleStats {
    /// Number of samples the stats were computed over.
    pub count: u64,
    /// Arithmetic mean.
    pub mean: f64,
    /// Smallest sample.
    pub min: f64,
    /// 10th percentile.
    pub p10: f64,
    /// Median (50th percentile).
    pub median: f64,
    /// 90th percentile.
    pub p90: f64,
    /// 99th percentile (the service-level tail-latency signal).
    pub p99: f64,
    /// Largest sample.
    pub max: f64,
}

impl SampleStats {
    /// Computes the stats over the samples (any unit). Returns `None`
    /// for an empty slice.
    pub fn from_samples(samples: &[f64]) -> Option<SampleStats> {
        if samples.is_empty() {
            return None;
        }
        let mut sorted = samples.to_vec();
        sorted.sort_by(|a, b| a.partial_cmp(b).expect("non-NaN"));
        Some(SampleStats {
            count: sorted.len() as u64,
            mean: sorted.iter().sum::<f64>() / sorted.len() as f64,
            min: sorted[0],
            p10: percentile_of_sorted(&sorted, 0.10),
            median: percentile_of_sorted(&sorted, 0.50),
            p90: percentile_of_sorted(&sorted, 0.90),
            p99: percentile_of_sorted(&sorted, 0.99),
            max: sorted[sorted.len() - 1],
        })
    }

    /// Renders the stats as a compact JSON object, two decimal places —
    /// the one serialization every `BENCH_*.json` latency block uses
    /// (previously copy-pasted per writer):
    /// `{"count":64,"mean":2.31,"min":...,"p10":...,"median":...,"p90":...,"p99":...,"max":...}`.
    pub fn to_json(&self) -> String {
        format!(
            "{{ \"count\": {}, \"mean\": {:.2}, \"min\": {:.2}, \"p10\": {:.2}, \
             \"median\": {:.2}, \"p90\": {:.2}, \"p99\": {:.2}, \"max\": {:.2} }}",
            self.count, self.mean, self.min, self.p10, self.median, self.p90, self.p99, self.max
        )
    }
}

/// Linear-interpolated percentile over an ascending-sorted slice.
/// `q` in `[0, 1]`. Panics on an empty slice.
pub fn percentile_of_sorted(sorted: &[f64], q: f64) -> f64 {
    assert!(!sorted.is_empty(), "percentile of empty sample set");
    let rank = q.clamp(0.0, 1.0) * (sorted.len() - 1) as f64;
    let lo = rank.floor() as usize;
    let hi = rank.ceil() as usize;
    if lo == hi {
        sorted[lo]
    } else {
        let frac = rank - lo as f64;
        sorted[lo] * (1.0 - frac) + sorted[hi] * frac
    }
}

/// A benchmark identifier: `function_id/parameter`.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// An id with a function name and a parameter rendered as `name/param`.
    pub fn new<P: std::fmt::Display>(function_id: &str, parameter: P) -> Self {
        BenchmarkId {
            id: format!("{function_id}/{parameter}"),
        }
    }

    /// An id that is just the parameter (used inside groups).
    pub fn from_parameter<P: std::fmt::Display>(parameter: P) -> Self {
        BenchmarkId {
            id: parameter.to_string(),
        }
    }
}

impl std::fmt::Display for BenchmarkId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.id)
    }
}

/// Throughput annotation for a benchmark group.
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    /// Bytes processed per iteration.
    Bytes(u64),
    /// Elements processed per iteration.
    Elements(u64),
}

/// The per-benchmark timing driver handed to `bench_function` closures.
pub struct Bencher {
    samples: Vec<Duration>,
    iters_per_sample: u64,
    sample_size: usize,
}

impl Bencher {
    fn new(sample_size: usize) -> Self {
        Bencher {
            samples: Vec::new(),
            iters_per_sample: 1,
            sample_size,
        }
    }

    /// Times the routine: calibrates a batch size, then records
    /// `sample_size` samples of wall-clock time per iteration.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        // Calibration: grow the batch until one batch takes >= 2ms, so
        // Instant overhead is negligible even for nanosecond routines.
        let mut iters: u64 = 1;
        loop {
            let start = Instant::now();
            for _ in 0..iters {
                black_box(routine());
            }
            let elapsed = start.elapsed();
            if elapsed >= Duration::from_millis(2) || iters >= 1 << 20 {
                self.iters_per_sample = iters;
                break;
            }
            iters = iters.saturating_mul(4).max(2);
        }
        self.samples.clear();
        for _ in 0..self.sample_size {
            let start = Instant::now();
            for _ in 0..self.iters_per_sample {
                black_box(routine());
            }
            self.samples.push(start.elapsed());
        }
    }

    /// Per-iteration timing stats, or `None` if `iter` was never called.
    fn stats_ns(&self) -> Option<SampleStats> {
        let ns: Vec<f64> = self
            .samples
            .iter()
            .map(|d| d.as_nanos() as f64 / self.iters_per_sample as f64)
            .collect();
        SampleStats::from_samples(&ns)
    }
}

fn human_time(ns: f64) -> String {
    if ns < 1_000.0 {
        format!("{ns:.1} ns")
    } else if ns < 1_000_000.0 {
        format!("{:.2} µs", ns / 1_000.0)
    } else if ns < 1_000_000_000.0 {
        format!("{:.2} ms", ns / 1_000_000.0)
    } else {
        format!("{:.3} s", ns / 1_000_000_000.0)
    }
}

/// The top-level benchmark driver.
pub struct Criterion {
    filter: Option<String>,
    default_sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        // Mirror Criterion: `cargo bench` passes `--bench`; a bare
        // positional argument filters benchmarks by substring.
        let mut filter = None;
        for a in std::env::args().skip(1) {
            if !a.starts_with('-') {
                filter = Some(a);
            }
        }
        Criterion {
            filter,
            default_sample_size: 20,
        }
    }
}

impl Criterion {
    /// Criterion's builder entry point; configuration is taken from the
    /// command line in [`Criterion::default`], so this is the identity.
    pub fn configure_from_args(self) -> Self {
        self
    }

    fn selected(&self, id: &str) -> bool {
        self.filter.as_deref().is_none_or(|f| id.contains(f))
    }

    fn run_one<F: FnMut(&mut Bencher)>(
        &mut self,
        id: &str,
        sample_size: usize,
        throughput: Option<Throughput>,
        mut f: F,
    ) {
        if !self.selected(id) {
            return;
        }
        let mut b = Bencher::new(sample_size);
        f(&mut b);
        let Some(stats) = b.stats_ns() else {
            println!("{id:<48} (no measurement)");
            return;
        };
        let median = stats.median;
        let mut line = format!(
            "{id:<48} time: [{} {} {}] p10: {} p90: {}",
            human_time(stats.min),
            human_time(median),
            human_time(stats.max),
            human_time(stats.p10),
            human_time(stats.p90)
        );
        if let Some(Throughput::Bytes(bytes)) = throughput {
            let gib = bytes as f64 / median * 1_000_000_000.0 / (1u64 << 30) as f64;
            line.push_str(&format!(" thrpt: {gib:.3} GiB/s"));
        }
        if let Some(Throughput::Elements(n)) = throughput {
            let meps = n as f64 / median * 1_000.0;
            line.push_str(&format!(" thrpt: {meps:.3} Melem/s"));
        }
        println!("{line}");
    }

    /// Benchmarks a single function.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: &str, f: F) -> &mut Self {
        let n = self.default_sample_size;
        self.run_one(id, n, None, f);
        self
    }

    /// Starts a named benchmark group.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            name: name.to_string(),
            sample_size: None,
            throughput: None,
        }
    }

    /// Prints the final summary line (no-op in the shim).
    pub fn final_summary(&mut self) {}
}

/// A group of related benchmarks sharing a name prefix and settings.
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
    sample_size: Option<usize>,
    throughput: Option<Throughput>,
}

impl BenchmarkGroup<'_> {
    /// Overrides the number of samples for benchmarks in this group.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = Some(n.max(2));
        self
    }

    /// Sets the throughput annotation for subsequent benchmarks.
    pub fn throughput(&mut self, t: Throughput) -> &mut Self {
        self.throughput = Some(t);
        self
    }

    /// Benchmarks a function under `group/id`.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: &str, f: F) -> &mut Self {
        let full = format!("{}/{}", self.name, id);
        let n = self
            .sample_size
            .unwrap_or(self.criterion.default_sample_size);
        let t = self.throughput;
        self.criterion.run_one(&full, n, t, f);
        self
    }

    /// Benchmarks a function with an explicit input value.
    pub fn bench_with_input<I, F: FnMut(&mut Bencher, &I)>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self {
        let full = format!("{}/{}", self.name, id);
        let n = self
            .sample_size
            .unwrap_or(self.criterion.default_sample_size);
        let t = self.throughput;
        self.criterion.run_one(&full, n, t, |b| f(b, input));
        self
    }

    /// Ends the group.
    pub fn finish(self) {}
}

/// Declares a group of benchmark functions, Criterion-style.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        pub fn $group() {
            let mut criterion = $crate::Criterion::default().configure_from_args();
            $( $target(&mut criterion); )+
        }
    };
}

/// Declares the bench `main` that runs the given groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bencher_measures_something() {
        let mut b = Bencher::new(3);
        b.iter(|| std::hint::black_box(21u64 * 2));
        let s = b.stats_ns().unwrap();
        assert!(s.median > 0.0 && s.median < 1_000_000.0, "{}", s.median);
        assert!(s.p10 <= s.median && s.median <= s.p90);
    }

    #[test]
    fn percentiles_interpolate() {
        let sorted = [1.0, 2.0, 3.0, 4.0, 5.0];
        assert_eq!(percentile_of_sorted(&sorted, 0.0), 1.0);
        assert_eq!(percentile_of_sorted(&sorted, 0.5), 3.0);
        assert_eq!(percentile_of_sorted(&sorted, 1.0), 5.0);
        assert!((percentile_of_sorted(&sorted, 0.9) - 4.6).abs() < 1e-9);
        let s = SampleStats::from_samples(&[5.0, 1.0, 3.0, 2.0, 4.0]).unwrap();
        assert_eq!(s.median, 3.0);
        assert_eq!(s.min, 1.0);
        assert_eq!(s.max, 5.0);
        assert_eq!(s.count, 5);
        assert_eq!(s.mean, 3.0);
        assert!(s.p10 < s.median && s.median < s.p90);
        assert!(s.p90 <= s.p99 && s.p99 <= s.max);
        assert!(SampleStats::from_samples(&[]).is_none());
    }

    #[test]
    fn stats_serialize_to_parseable_json() {
        let s = SampleStats::from_samples(&[1.0, 2.0, 3.0, 4.0]).unwrap();
        let j = s.to_json();
        assert_eq!(
            j,
            "{ \"count\": 4, \"mean\": 2.50, \"min\": 1.00, \"p10\": 1.30, \
             \"median\": 2.50, \"p90\": 3.70, \"p99\": 3.97, \"max\": 4.00 }"
        );
    }

    #[test]
    fn ids_render_like_criterion() {
        assert_eq!(BenchmarkId::new("gen", 5).to_string(), "gen/5");
        assert_eq!(BenchmarkId::from_parameter(64).to_string(), "64");
    }

    #[test]
    fn group_runs_and_respects_filter() {
        let mut c = Criterion {
            filter: Some("nope".into()),
            default_sample_size: 2,
        };
        let mut ran = false;
        c.bench_function("skipped", |b| {
            ran = true;
            b.iter(|| 1 + 1);
        });
        assert!(!ran, "filtered out");
    }
}

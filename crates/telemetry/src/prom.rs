//! Prometheus text exposition (format 0.0.4) for [`Snapshot`].
//!
//! The registry's counters, gauges, log2 histograms, and labeled
//! counter families render into the plain-text scrape format served by
//! `fleetd`'s `GET /metrics` endpoint:
//!
//! * counters become `<prefix><name>_total` (monotonic, so the
//!   conventional `_total` suffix applies),
//! * gauges keep their name verbatim,
//! * labeled families become one `<prefix><name>_total{key="value"}`
//!   sample per cell, with label values escaped per the exposition
//!   rules (`\\`, `\"`, `\n`),
//! * histograms become `<prefix><name>_seconds` with **cumulative**
//!   `_bucket{le="..."}` samples plus `_sum`/`_count`. A log2 bucket
//!   `i` covers `[2^i, 2^(i+1))` ns, so its exposition upper bound is
//!   `2^(i+1)` ns converted to seconds; the final bucket is always
//!   `le="+Inf"` and equals `_count` by construction.
//!
//! Metric names are sanitized to the Prometheus charset
//! (`[a-zA-Z0-9_:]`): the registry allows dots (the `--profile`
//! aggregator keys histograms as `case.family.stage`), which map to
//! underscores here.

use crate::registry::{HistSnapshot, Snapshot, BUCKETS};
use std::fmt::Write;

/// Maps a registry metric name into the Prometheus charset: every
/// character outside `[a-zA-Z0-9_:]` becomes `_`, and a leading digit
/// gets an underscore prefix.
pub fn sanitize_metric_name(name: &str) -> String {
    let mut out = String::with_capacity(name.len());
    for (i, c) in name.chars().enumerate() {
        match c {
            'a'..='z' | 'A'..='Z' | '_' | ':' => out.push(c),
            '0'..='9' => {
                if i == 0 {
                    out.push('_');
                }
                out.push(c);
            }
            _ => out.push('_'),
        }
    }
    out
}

/// Escapes a label value per the exposition format: backslash, double
/// quote, and newline must be escaped; everything else passes through.
pub fn escape_label_value(v: &str) -> String {
    let mut out = String::with_capacity(v.len());
    for c in v.chars() {
        match c {
            '\\' => out.push_str("\\\\"),
            '"' => out.push_str("\\\""),
            '\n' => out.push_str("\\n"),
            c => out.push(c),
        }
    }
    out
}

fn render_hist(out: &mut String, name: &str, h: &HistSnapshot) {
    let _ = writeln!(out, "# TYPE {name} histogram");
    let mut cumulative = 0u64;
    if h.count > 0 {
        let hi = h
            .buckets
            .iter()
            .rposition(|&n| n > 0)
            .expect("count > 0 implies a non-empty bucket");
        // Finite upper bounds stop at 2^63 ns (bucket 62); bucket 63's
        // bound would overflow and is subsumed by +Inf.
        for (i, &n) in h.buckets.iter().enumerate().take(hi.min(BUCKETS - 2) + 1) {
            cumulative += n;
            let le = (1u64 << (i + 1)) as f64 * 1e-9;
            let _ = writeln!(out, "{name}_bucket{{le=\"{le}\"}} {cumulative}");
        }
    }
    let _ = writeln!(out, "{name}_bucket{{le=\"+Inf\"}} {}", h.count);
    let _ = writeln!(out, "{name}_sum {}", h.sum_ns as f64 * 1e-9);
    let _ = writeln!(out, "{name}_count {}", h.count);
}

impl Snapshot {
    /// Renders the whole snapshot in Prometheus text exposition format,
    /// every metric name prefixed with `prefix` (e.g. `fleetd_`).
    pub fn to_prometheus(&self, prefix: &str) -> String {
        let mut out = String::new();
        for (name, v) in &self.counters {
            let name = format!("{prefix}{}_total", sanitize_metric_name(name));
            let _ = writeln!(out, "# TYPE {name} counter");
            let _ = writeln!(out, "{name} {v}");
        }
        for fam in &self.labeled {
            let name = format!("{prefix}{}_total", sanitize_metric_name(&fam.name));
            let key = sanitize_metric_name(&fam.label_key);
            let _ = writeln!(out, "# TYPE {name} counter");
            for (label, v) in &fam.cells {
                let _ = writeln!(out, "{name}{{{key}=\"{}\"}} {v}", escape_label_value(label));
            }
        }
        for (name, v) in &self.gauges {
            let name = format!("{prefix}{}", sanitize_metric_name(name));
            let _ = writeln!(out, "# TYPE {name} gauge");
            let _ = writeln!(out, "{name} {v}");
        }
        for (name, h) in &self.hists {
            let name = format!("{prefix}{}_seconds", sanitize_metric_name(name));
            render_hist(&mut out, &name, h);
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::registry::Registry;

    /// Pulls `name{...} value` samples (skipping `# TYPE` comments).
    fn samples(text: &str, name: &str) -> Vec<(String, f64)> {
        text.lines()
            .filter(|l| !l.starts_with('#'))
            .filter_map(|l| {
                let (key, value) = l.rsplit_once(' ')?;
                key.starts_with(name)
                    .then(|| (key.to_string(), value.parse().expect(l)))
            })
            .collect()
    }

    #[test]
    fn names_sanitize_to_the_prometheus_charset() {
        assert_eq!(sanitize_metric_name("session"), "session");
        assert_eq!(
            sanitize_metric_name("synthesis.ring.backend"),
            "synthesis_ring_backend"
        );
        assert_eq!(sanitize_metric_name("1weird-name"), "_1weird_name");
    }

    #[test]
    fn label_values_escape_per_the_exposition_rules() {
        assert_eq!(escape_label_value("tenant-a"), "tenant-a");
        assert_eq!(escape_label_value(r#"a"b"#), r#"a\"b"#);
        assert_eq!(escape_label_value(r"a\b"), r"a\\b");
        assert_eq!(escape_label_value("a\nb"), r"a\nb");
    }

    #[test]
    fn counters_gauges_and_labels_render() {
        let mut reg = Registry::new(2);
        let c = reg.counter("submitted");
        let g = reg.gauge("queue_depth");
        let t = reg.labeled_counter("tenant_sessions", "client");
        reg.add(0, c, 5);
        reg.add(1, c, 2);
        reg.gauge_set(g, 3);
        reg.add_labeled(t, "alice", 4);
        reg.add_labeled(t, "bo\"b", 1);
        let text = reg.snapshot().to_prometheus("fleetd_");
        assert!(text.contains("# TYPE fleetd_submitted_total counter"));
        assert!(text.contains("fleetd_submitted_total 7\n"));
        assert!(text.contains("# TYPE fleetd_queue_depth gauge"));
        assert!(text.contains("fleetd_queue_depth 3\n"));
        assert!(text.contains("fleetd_tenant_sessions_total{client=\"alice\"} 4"));
        assert!(
            text.contains("fleetd_tenant_sessions_total{client=\"bo\\\"b\"} 1"),
            "{text}"
        );
    }

    #[test]
    fn histogram_buckets_are_cumulative_monotone_and_inf_equals_count() {
        let mut reg = Registry::new(2);
        let h = reg.histogram("session");
        for (shard, ns) in [(0u64, 900u64), (1, 1_100), (0, 2_000_000), (1, 64)] {
            reg.observe_ns(shard as usize, h, ns);
        }
        let text = reg.snapshot().to_prometheus("fleetd_");
        let buckets = samples(&text, "fleetd_session_seconds_bucket");
        assert!(buckets.len() >= 2, "{text}");
        // Cumulative counts never decrease in le order (render order).
        for w in buckets.windows(2) {
            assert!(w[0].1 <= w[1].1, "{text}");
        }
        let (inf_key, inf) = buckets.last().unwrap();
        assert!(inf_key.contains("le=\"+Inf\""), "{text}");
        let count = samples(&text, "fleetd_session_seconds_count")[0].1;
        assert_eq!(*inf, count);
        assert_eq!(count, 4.0);
        let sum = samples(&text, "fleetd_session_seconds_sum")[0].1;
        assert!((sum - 2_002_064e-9).abs() < 1e-12, "{text}");
        // Every finite le is the log2 bucket upper bound in seconds.
        for (key, _) in &buckets[..buckets.len() - 1] {
            let le: f64 = key
                .split("le=\"")
                .nth(1)
                .and_then(|s| s.strip_suffix("\"}"))
                .unwrap()
                .parse()
                .unwrap();
            let ns = le * 1e9;
            assert!((ns.log2().round() - ns.log2()).abs() < 1e-9, "{key}");
        }
    }

    #[test]
    fn empty_histogram_renders_zero_inf_sum_count() {
        let mut reg = Registry::new(1);
        reg.histogram("empty");
        let text = reg.snapshot().to_prometheus("x_");
        assert!(text.contains("x_empty_seconds_bucket{le=\"+Inf\"} 0"));
        assert!(text.contains("x_empty_seconds_sum 0\n"));
        assert!(text.contains("x_empty_seconds_count 0\n"));
    }
}

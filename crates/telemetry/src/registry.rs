//! The fleetd metrics registry: named counters, gauges, and log2
//! latency histograms, sharded per worker.
//!
//! The usage pattern is register-then-share. Registration
//! ([`Registry::counter`] / [`Registry::gauge`] /
//! [`Registry::histogram`]) takes `&mut self` and returns a typed id;
//! it happens once, before workers spawn. After that every hot-path
//! update goes through `&self` — a relaxed atomic add into the caller's
//! shard — so the registry can sit behind an `Arc` with no locking and
//! no contended cache line (each shard's counter cell is padded to 64
//! bytes). [`Registry::snapshot`] sums the shards into plain numbers.
//!
//! Histograms use 64 log2 buckets over nanoseconds: an observation of
//! `ns` lands in bucket `floor(log2 ns)`, so the whole latency range
//! from 1 ns to ~584 years fits in a fixed 512-byte array per shard and
//! recording is a `leading_zeros` plus one atomic add. Percentiles are
//! reconstructed from the buckets by linear interpolation within the
//! matched bucket — at most a factor-of-two bound on any single
//! quantile, which is plenty for stage-cost breakdowns — and exported
//! as [`SampleStats`] so every consumer (the `{"event":"metrics"}`
//! line, `BENCH_telemetry.json`) shares one schema.

use crate::trace::{SessionTrace, Stage};
use criterion::SampleStats;
use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, Ordering::Relaxed};
use std::sync::Mutex;

/// Log2 buckets per histogram: bucket `i` holds observations in
/// `[2^i, 2^(i+1))` ns (bucket 0 also takes 0 ns).
pub const BUCKETS: usize = 64;

/// One shard cell, padded to a cache line so workers on different
/// shards never false-share.
#[repr(align(64))]
#[derive(Default)]
struct PadCell(AtomicU64);

struct CounterSlot {
    name: String,
    shards: Vec<PadCell>,
}

struct GaugeSlot {
    name: String,
    cell: AtomicU64,
}

struct HistShard {
    buckets: [AtomicU64; BUCKETS],
    count: AtomicU64,
    sum_ns: AtomicU64,
    min_ns: AtomicU64,
    max_ns: AtomicU64,
}

impl Default for HistShard {
    fn default() -> Self {
        HistShard {
            buckets: [(); BUCKETS].map(|_| AtomicU64::new(0)),
            count: AtomicU64::new(0),
            sum_ns: AtomicU64::new(0),
            min_ns: AtomicU64::new(u64::MAX),
            max_ns: AtomicU64::new(0),
        }
    }
}

struct HistSlot {
    name: String,
    shards: Vec<HistShard>,
}

/// A counter family keyed by a label value (e.g. per-tenant session
/// counts keyed by `client`). Labels arrive at runtime, so the cells
/// live behind a mutex instead of the pre-registered atomic lanes —
/// per-tenant folds happen once per completion, not on the hot path.
struct LabeledSlot {
    name: String,
    label_key: String,
    cells: Mutex<BTreeMap<String, u64>>,
}

/// Handle to a registered monotonic counter.
#[derive(Debug, Clone, Copy)]
pub struct CounterId(usize);

/// Handle to a registered gauge.
#[derive(Debug, Clone, Copy)]
pub struct GaugeId(usize);

/// Handle to a registered histogram.
#[derive(Debug, Clone, Copy)]
pub struct HistId(usize);

/// Handle to a registered labeled counter family.
#[derive(Debug, Clone, Copy)]
pub struct LabeledId(usize);

fn bucket_of(ns: u64) -> usize {
    if ns == 0 {
        0
    } else {
        63 - ns.leading_zeros() as usize
    }
}

/// The registry. See the module docs for the register-then-share
/// protocol and memory layout.
pub struct Registry {
    shards: usize,
    counters: Vec<CounterSlot>,
    gauges: Vec<GaugeSlot>,
    hists: Vec<HistSlot>,
    labeled: Vec<LabeledSlot>,
}

impl Registry {
    /// A registry with `shards` independent update lanes (one per
    /// worker; clamped to at least 1). Shard indices passed to update
    /// methods are taken modulo this count, so callers can pass a
    /// worker id directly.
    pub fn new(shards: usize) -> Self {
        Registry {
            shards: shards.max(1),
            counters: Vec::new(),
            gauges: Vec::new(),
            hists: Vec::new(),
            labeled: Vec::new(),
        }
    }

    /// Registers a monotonic counter. Call before sharing the registry.
    pub fn counter(&mut self, name: &str) -> CounterId {
        self.counters.push(CounterSlot {
            name: name.to_string(),
            shards: (0..self.shards).map(|_| PadCell::default()).collect(),
        });
        CounterId(self.counters.len() - 1)
    }

    /// Registers a gauge (a single settable value; `gauge_max` turns it
    /// into a high-water mark).
    pub fn gauge(&mut self, name: &str) -> GaugeId {
        self.gauges.push(GaugeSlot {
            name: name.to_string(),
            cell: AtomicU64::new(0),
        });
        GaugeId(self.gauges.len() - 1)
    }

    /// Registers a latency histogram (nanosecond observations, log2
    /// buckets).
    pub fn histogram(&mut self, name: &str) -> HistId {
        self.hists.push(HistSlot {
            name: name.to_string(),
            shards: (0..self.shards).map(|_| HistShard::default()).collect(),
        });
        HistId(self.hists.len() - 1)
    }

    /// Registers a labeled counter family: one logical counter fanned
    /// out by the runtime value of `label_key` (e.g. per-tenant session
    /// counts keyed by `client`). Call before sharing the registry.
    pub fn labeled_counter(&mut self, name: &str, label_key: &str) -> LabeledId {
        self.labeled.push(LabeledSlot {
            name: name.to_string(),
            label_key: label_key.to_string(),
            cells: Mutex::new(BTreeMap::new()),
        });
        LabeledId(self.labeled.len() - 1)
    }

    /// Adds `n` to a labeled counter's cell for `label`, creating the
    /// cell on first sight.
    pub fn add_labeled(&self, id: LabeledId, label: &str, n: u64) {
        let mut cells = self.labeled[id.0]
            .cells
            .lock()
            .unwrap_or_else(|e| e.into_inner());
        *cells.entry(label.to_string()).or_insert(0) += n;
    }

    /// Adds `n` to a counter on the caller's shard.
    pub fn add(&self, shard: usize, id: CounterId, n: u64) {
        self.counters[id.0].shards[shard % self.shards]
            .0
            .fetch_add(n, Relaxed);
    }

    /// Adds 1 to a counter on the caller's shard.
    pub fn inc(&self, shard: usize, id: CounterId) {
        self.add(shard, id, 1);
    }

    /// Sets a gauge.
    pub fn gauge_set(&self, id: GaugeId, v: u64) {
        self.gauges[id.0].cell.store(v, Relaxed);
    }

    /// Raises a gauge to `v` if `v` is higher (high-water mark).
    pub fn gauge_max(&self, id: GaugeId, v: u64) {
        self.gauges[id.0].cell.fetch_max(v, Relaxed);
    }

    /// Adds `n` to a gauge (e.g. a connection opened).
    pub fn gauge_add(&self, id: GaugeId, n: u64) {
        self.gauges[id.0].cell.fetch_add(n, Relaxed);
    }

    /// Subtracts `n` from a gauge, saturating at zero.
    pub fn gauge_sub(&self, id: GaugeId, n: u64) {
        let _ = self.gauges[id.0]
            .cell
            .fetch_update(Relaxed, Relaxed, |v| Some(v.saturating_sub(n)));
    }

    /// Records one observation of `ns` nanoseconds on the caller's
    /// shard.
    pub fn observe_ns(&self, shard: usize, id: HistId, ns: u64) {
        let h = &self.hists[id.0].shards[shard % self.shards];
        h.buckets[bucket_of(ns)].fetch_add(1, Relaxed);
        h.count.fetch_add(1, Relaxed);
        h.sum_ns.fetch_add(ns, Relaxed);
        h.min_ns.fetch_min(ns, Relaxed);
        h.max_ns.fetch_max(ns, Relaxed);
    }

    /// Merges every shard into a plain-number snapshot.
    pub fn snapshot(&self) -> Snapshot {
        Snapshot {
            counters: self
                .counters
                .iter()
                .map(|c| {
                    let total = c.shards.iter().map(|s| s.0.load(Relaxed)).sum();
                    (c.name.clone(), total)
                })
                .collect(),
            gauges: self
                .gauges
                .iter()
                .map(|g| (g.name.clone(), g.cell.load(Relaxed)))
                .collect(),
            hists: self
                .hists
                .iter()
                .map(|h| {
                    let mut snap = HistSnapshot::default();
                    for s in &h.shards {
                        for (i, b) in s.buckets.iter().enumerate() {
                            snap.buckets[i] += b.load(Relaxed);
                        }
                        snap.count += s.count.load(Relaxed);
                        snap.sum_ns += s.sum_ns.load(Relaxed);
                        snap.min_ns = snap.min_ns.min(s.min_ns.load(Relaxed));
                        snap.max_ns = snap.max_ns.max(s.max_ns.load(Relaxed));
                    }
                    (h.name.clone(), snap)
                })
                .collect(),
            labeled: self
                .labeled
                .iter()
                .map(|l| LabeledSnapshot {
                    name: l.name.clone(),
                    label_key: l.label_key.clone(),
                    cells: l
                        .cells
                        .lock()
                        .unwrap_or_else(|e| e.into_inner())
                        .iter()
                        .map(|(k, v)| (k.clone(), *v))
                        .collect(),
                })
                .collect(),
        }
    }
}

/// One histogram per [`Stage`], registered as `"<prefix><stage>"`. The
/// fleetd service and the `--profile` aggregator both fold completed
/// sessions' [`SessionTrace`]s through this: each session contributes
/// its per-stage *total* as one observation, so the histogram answers
/// "how much does a session spend in this stage" (stages a session
/// never entered contribute nothing).
pub struct StageHists {
    ids: [HistId; Stage::COUNT],
}

impl StageHists {
    /// Registers one histogram per stage under
    /// `"<prefix><stage-name>"` (e.g. prefix `"stage_"` yields
    /// `stage_backend`).
    pub fn register(reg: &mut Registry, prefix: &str) -> Self {
        StageHists {
            ids: Stage::ALL.map(|s| reg.histogram(&format!("{prefix}{}", s.name()))),
        }
    }

    /// Folds one session's trace in: per non-empty stage, one
    /// observation of that stage's total ns.
    pub fn observe(&self, reg: &Registry, shard: usize, trace: &SessionTrace) {
        for (stage, cell) in trace.stages() {
            reg.observe_ns(shard, self.ids[stage.index()], cell.total_ns);
        }
    }
}

/// A merged histogram: shard-summed buckets plus exact count/sum/min/max.
#[derive(Debug, Clone, PartialEq)]
pub struct HistSnapshot {
    /// Total observations.
    pub count: u64,
    /// Sum of all observations, ns.
    pub sum_ns: u64,
    /// Smallest observation, ns (`u64::MAX` when empty).
    pub min_ns: u64,
    /// Largest observation, ns.
    pub max_ns: u64,
    /// Log2 bucket counts (see [`BUCKETS`]).
    pub buckets: [u64; BUCKETS],
}

impl Default for HistSnapshot {
    fn default() -> Self {
        HistSnapshot {
            count: 0,
            sum_ns: 0,
            min_ns: u64::MAX,
            max_ns: 0,
            buckets: [0; BUCKETS],
        }
    }
}

impl HistSnapshot {
    /// Mean observation in ns (0 when empty).
    pub fn mean_ns(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum_ns as f64 / self.count as f64
        }
    }

    /// Approximate `q`-quantile in ns, reconstructed from the buckets:
    /// walk the cumulative counts to the matching bucket, then
    /// interpolate linearly inside it, clamped to the exact observed
    /// min/max.
    pub fn percentile_ns(&self, q: f64) -> f64 {
        if self.count == 0 {
            return 0.0;
        }
        let rank = q.clamp(0.0, 1.0) * (self.count - 1) as f64;
        let mut seen = 0u64;
        for (i, &n) in self.buckets.iter().enumerate() {
            if n == 0 {
                continue;
            }
            let lo_rank = seen as f64;
            seen += n;
            if rank < seen as f64 {
                let lo = (1u64 << i) as f64;
                let hi = if i + 1 < BUCKETS {
                    (1u64 << (i + 1)) as f64
                } else {
                    self.max_ns as f64
                };
                let frac = if n > 1 {
                    ((rank - lo_rank) / (n - 1) as f64).clamp(0.0, 1.0)
                } else {
                    0.0
                };
                let v = lo + (hi - lo) * frac;
                return v.clamp(self.min_ns as f64, self.max_ns as f64);
            }
        }
        self.max_ns as f64
    }

    /// The snapshot as [`SampleStats`] in **milliseconds** (the unit
    /// every `BENCH_*.json` latency block uses). `None` when empty.
    /// Min/max/count/mean are exact; the inner percentiles carry the
    /// bucket-interpolation error.
    pub fn stats_ms(&self) -> Option<SampleStats> {
        if self.count == 0 {
            return None;
        }
        const MS: f64 = 1_000_000.0;
        Some(SampleStats {
            count: self.count,
            mean: self.mean_ns() / MS,
            min: self.min_ns as f64 / MS,
            p10: self.percentile_ns(0.10) / MS,
            median: self.percentile_ns(0.50) / MS,
            p90: self.percentile_ns(0.90) / MS,
            p99: self.percentile_ns(0.99) / MS,
            max: self.max_ns as f64 / MS,
        })
    }
}

/// One labeled counter family at snapshot time.
#[derive(Debug, Clone, PartialEq)]
pub struct LabeledSnapshot {
    /// Family name.
    pub name: String,
    /// The label key every cell is keyed by (e.g. `client`).
    pub label_key: String,
    /// `(label value, total)` per cell, in label order.
    pub cells: Vec<(String, u64)>,
}

/// A point-in-time merge of the whole registry, in registration order.
#[derive(Debug, Clone, PartialEq)]
pub struct Snapshot {
    /// `(name, shard-summed total)` per counter.
    pub counters: Vec<(String, u64)>,
    /// `(name, value)` per gauge.
    pub gauges: Vec<(String, u64)>,
    /// `(name, merged histogram)` per histogram.
    pub hists: Vec<(String, HistSnapshot)>,
    /// Labeled counter families.
    pub labeled: Vec<LabeledSnapshot>,
}

impl Snapshot {
    /// A counter's total by name (0 when absent — absent and
    /// never-incremented are indistinguishable by design).
    pub fn counter(&self, name: &str) -> u64 {
        self.counters
            .iter()
            .find(|(n, _)| n == name)
            .map_or(0, |(_, v)| *v)
    }

    /// A gauge's value by name (0 when absent).
    pub fn gauge(&self, name: &str) -> u64 {
        self.gauges
            .iter()
            .find(|(n, _)| n == name)
            .map_or(0, |(_, v)| *v)
    }

    /// A histogram by name.
    pub fn hist(&self, name: &str) -> Option<&HistSnapshot> {
        self.hists.iter().find(|(n, _)| n == name).map(|(_, h)| h)
    }

    /// A labeled counter family by name.
    pub fn labeled(&self, name: &str) -> Option<&LabeledSnapshot> {
        self.labeled.iter().find(|l| l.name == name)
    }

    /// One cell of a labeled family (0 when the family or label is
    /// absent, matching [`Snapshot::counter`]'s convention).
    pub fn labeled_value(&self, name: &str, label: &str) -> u64 {
        self.labeled(name)
            .and_then(|l| l.cells.iter().find(|(k, _)| k == label))
            .map_or(0, |(_, v)| *v)
    }

    /// Renders the snapshot as the payload fields of a
    /// `{"event":"metrics"}` line: counters and gauges flat, non-empty
    /// histograms as `SampleStats` blocks in ms under `"latency_ms"`.
    /// The result is a JSON object fragment (no enclosing braces) so
    /// callers can splice event metadata around it.
    pub fn to_json_fields(&self) -> String {
        let mut out = String::new();
        for (name, v) in self.counters.iter().chain(self.gauges.iter()) {
            out.push_str(&format!("\"{name}\":{v},"));
        }
        for fam in &self.labeled {
            out.push_str(&format!("\"{}\":{{", fam.name));
            for (i, (label, v)) in fam.cells.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                out.push_str(&format!("{}:{v}", json_quote(label)));
            }
            out.push_str("},");
        }
        out.push_str("\"latency_ms\":{");
        let mut first = true;
        for (name, h) in &self.hists {
            if let Some(stats) = h.stats_ms() {
                if !first {
                    out.push(',');
                }
                first = false;
                out.push_str(&format!("\"{name}\":{}", stats.to_json()));
            }
        }
        out.push('}');
        out
    }
}

/// Quotes a string as a JSON string literal (the telemetry crate can't
/// use `topo_model::json::quote` — dependency direction — so the tiny
/// escaper lives here too).
pub(crate) fn json_quote(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_sum_across_shards() {
        let mut reg = Registry::new(4);
        let c = reg.counter("submitted");
        for shard in 0..8 {
            reg.inc(shard, c);
        }
        reg.add(2, c, 10);
        assert_eq!(reg.snapshot().counter("submitted"), 18);
        assert_eq!(reg.snapshot().counter("missing"), 0);
    }

    #[test]
    fn gauge_max_is_a_high_water_mark() {
        let mut reg = Registry::new(1);
        let g = reg.gauge("queue_depth_hwm");
        reg.gauge_max(g, 3);
        reg.gauge_max(g, 9);
        reg.gauge_max(g, 5);
        assert_eq!(reg.snapshot().gauge("queue_depth_hwm"), 9);
        reg.gauge_set(g, 1);
        assert_eq!(reg.snapshot().gauge("queue_depth_hwm"), 1);
    }

    #[test]
    fn histogram_buckets_and_exact_extremes() {
        let mut reg = Registry::new(2);
        let h = reg.histogram("stage_sim");
        for (shard, ns) in [(0, 100u64), (1, 1_000), (0, 1_000_000), (1, 3)] {
            reg.observe_ns(shard, h, ns);
        }
        let snap = reg.snapshot();
        let hist = snap.hist("stage_sim").unwrap();
        assert_eq!(hist.count, 4);
        assert_eq!(hist.min_ns, 3);
        assert_eq!(hist.max_ns, 1_000_000);
        assert_eq!(hist.sum_ns, 1_001_103);
        assert_eq!(hist.buckets.iter().sum::<u64>(), 4);
    }

    #[test]
    fn percentiles_are_monotone_and_bounded() {
        let mut reg = Registry::new(1);
        let h = reg.histogram("h");
        for ns in [10u64, 20, 40, 80, 160, 320, 640, 1280, 2560, 5120] {
            reg.observe_ns(0, h, ns);
        }
        let snap = reg.snapshot();
        let hist = snap.hist("h").unwrap();
        let qs: Vec<f64> = [0.0, 0.1, 0.5, 0.9, 1.0]
            .iter()
            .map(|&q| hist.percentile_ns(q))
            .collect();
        for w in qs.windows(2) {
            assert!(w[0] <= w[1], "quantiles must be monotone: {qs:?}");
        }
        assert!(qs[0] >= 10.0 && qs[4] <= 5120.0);
        let stats = hist.stats_ms().unwrap();
        assert_eq!(stats.count, 10);
        assert!((stats.min - 10e-6).abs() < 1e-12);
        assert!((stats.max - 5120e-6).abs() < 1e-12);
        assert!(stats.p10 <= stats.median && stats.median <= stats.p90);
    }

    #[test]
    fn empty_histogram_has_no_stats() {
        let mut reg = Registry::new(1);
        reg.histogram("empty");
        let snap = reg.snapshot();
        assert_eq!(snap.hist("empty").unwrap().stats_ms(), None);
        assert_eq!(snap.hist("empty").unwrap().percentile_ns(0.5), 0.0);
    }

    #[test]
    fn stage_hists_fold_traces_per_stage() {
        use crate::trace::{SessionTrace, Stage};
        let mut reg = Registry::new(2);
        let stages = StageHists::register(&mut reg, "stage_");
        let mut t = SessionTrace::new();
        t.record_ns(Stage::Backend, 5_000);
        t.record_ns(Stage::Backend, 5_000);
        t.record_ns(Stage::Sim, 1_000);
        stages.observe(&reg, 0, &t);
        stages.observe(&reg, 1, &t);
        let snap = reg.snapshot();
        let backend = snap.hist("stage_backend").unwrap();
        // Two sessions, each contributing its 10µs backend *total*.
        assert_eq!(backend.count, 2);
        assert_eq!(backend.sum_ns, 20_000);
        assert_eq!(snap.hist("stage_sim").unwrap().count, 2);
        assert_eq!(snap.hist("stage_parse").unwrap().count, 0);
    }

    #[test]
    fn snapshot_json_fields_parse_when_wrapped() {
        let mut reg = Registry::new(1);
        let c = reg.counter("submitted");
        let g = reg.gauge("queue_depth_hwm");
        let h = reg.histogram("session");
        reg.add(0, c, 7);
        reg.gauge_max(g, 4);
        reg.observe_ns(0, h, 2_000_000);
        let fields = reg.snapshot().to_json_fields();
        let doc = format!("{{{fields}}}");
        let parsed = topo_parse(&doc);
        assert!(parsed.contains("\"submitted\":7"));
        assert!(parsed.contains("queue_depth_hwm"));
        assert!(parsed.contains("latency_ms"));
    }

    /// The telemetry crate can't depend on topo-model (dependency
    /// direction), so this stands in for "a strict parser accepts it":
    /// brace/quote balance plus a round-trip of the interesting
    /// substrings. The fleet integration tests parse the real lines
    /// with `topo_model::json::parse`.
    fn topo_parse(doc: &str) -> String {
        let mut depth = 0i32;
        let mut in_str = false;
        let mut prev = '\0';
        for c in doc.chars() {
            match c {
                '"' if prev != '\\' => in_str = !in_str,
                '{' if !in_str => depth += 1,
                '}' if !in_str => depth -= 1,
                _ => {}
            }
            assert!(depth >= 0, "unbalanced braces in {doc}");
            prev = c;
        }
        assert_eq!(depth, 0, "unbalanced braces in {doc}");
        assert!(!in_str, "unterminated string in {doc}");
        doc.to_string()
    }
}

//! Per-session stage traces: where one session's wall-clock went.
//!
//! A [`SessionTrace`] is deliberately *not* a span list. Sessions run
//! hundreds of verify rounds, and a growable list of timestamped spans
//! would make the outcome size (and allocation profile) depend on
//! timing-adjacent control flow. Instead the trace is a fixed array of
//! [`StageCell`]s — `{count, total_ns}` per [`Stage`] — so recording a
//! span is two integer adds into inline storage, merging two traces is
//! elementwise addition, and the type stays `Copy`.
//!
//! Equality ignores the nanosecond totals: two traces compare equal
//! when their per-stage *counts* agree. Counts are a function of
//! session content (how many backend calls, how many parse rounds),
//! while totals are wall-clock — this is what lets outcomes that derive
//! `PartialEq` keep asserting determinism across runs whose timings
//! necessarily differ.

use std::time::{Duration, Instant};

/// A pipeline stage worth timing separately. The taxonomy follows the
/// synthesis/repair loop: prompt assembly, the (simulated) LLM call,
/// vendor parse/lower, route-space construction vs cache hit, symbolic
/// policy checks, bf-lite scenario simulation, and repair-loop fault
/// localization.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
#[repr(usize)]
pub enum Stage {
    /// Rendering the task/repair prompt for one router assignment.
    PromptRender,
    /// One backend completion attempt (retries count separately — a
    /// session that retried twice records three backend spans).
    Backend,
    /// Vendor-config parse + lowering to IR (`bf_lite::parse_config`).
    Parse,
    /// Building a `RouteSpace` from scratch (space-cache miss).
    SpaceBuild,
    /// Serving a `RouteSpace` from the session cache (hit path).
    SpaceHit,
    /// Symbolic local-policy checks inside an existing space.
    Check,
    /// bf-lite whole-scenario simulation (`check_scenario` /
    /// `compose_and_check`).
    Sim,
    /// Repair-loop fault localization (parse/topo/symbolic/campion).
    Localize,
}

impl Stage {
    /// Number of stages (the length of [`Stage::ALL`]).
    pub const COUNT: usize = 8;

    /// Every stage, in declaration order (the order traces serialize
    /// in).
    pub const ALL: [Stage; Stage::COUNT] = [
        Stage::PromptRender,
        Stage::Backend,
        Stage::Parse,
        Stage::SpaceBuild,
        Stage::SpaceHit,
        Stage::Check,
        Stage::Sim,
        Stage::Localize,
    ];

    /// The stable snake_case name used in JSON lines, metric names, and
    /// `BENCH_telemetry.json`.
    pub fn name(self) -> &'static str {
        match self {
            Stage::PromptRender => "prompt_render",
            Stage::Backend => "backend",
            Stage::Parse => "parse",
            Stage::SpaceBuild => "space_build",
            Stage::SpaceHit => "space_hit",
            Stage::Check => "check",
            Stage::Sim => "sim",
            Stage::Localize => "localize",
        }
    }

    /// Index into a per-stage array.
    pub fn index(self) -> usize {
        self as usize
    }
}

/// One stage's accumulator: how many spans were recorded and their
/// total duration.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct StageCell {
    /// Spans recorded for this stage.
    pub count: u64,
    /// Total time across those spans, in nanoseconds.
    pub total_ns: u64,
}

impl StageCell {
    /// Total time in (fractional) milliseconds.
    pub fn total_ms(&self) -> f64 {
        self.total_ns as f64 / 1_000_000.0
    }
}

/// Where a session spent its time, by stage. See the module docs for
/// the design constraints (fixed size, `Copy`, count-only equality).
#[derive(Debug, Clone, Copy, Default)]
pub struct SessionTrace {
    cells: [StageCell; Stage::COUNT],
}

/// Count-only equality: wall-clock totals are explicitly *not* content
/// (two identical runs never agree on nanoseconds), so they do not
/// participate. This keeps outcomes carrying a trace comparable across
/// reruns.
impl PartialEq for SessionTrace {
    fn eq(&self, other: &Self) -> bool {
        self.cells
            .iter()
            .zip(other.cells.iter())
            .all(|(a, b)| a.count == b.count)
    }
}

impl Eq for SessionTrace {}

impl SessionTrace {
    /// An empty trace (all cells zero).
    pub fn new() -> Self {
        SessionTrace::default()
    }

    /// Records one span of `elapsed` against `stage`.
    pub fn record(&mut self, stage: Stage, elapsed: Duration) {
        self.record_ns(stage, elapsed.as_nanos() as u64);
    }

    /// Records one span of `ns` nanoseconds against `stage`.
    pub fn record_ns(&mut self, stage: Stage, ns: u64) {
        let cell = &mut self.cells[stage.index()];
        cell.count += 1;
        cell.total_ns = cell.total_ns.saturating_add(ns);
    }

    /// Times `f` and records the elapsed time as one `stage` span,
    /// returning `f`'s result. The scoped-timer entry point used at
    /// every instrumentation site.
    pub fn time<R>(&mut self, stage: Stage, f: impl FnOnce() -> R) -> R {
        let start = Instant::now();
        let out = f();
        self.record(stage, start.elapsed());
        out
    }

    /// Adds every cell of `other` into `self` (used to merge the
    /// transcript-held trace with the context-held trace at outcome
    /// assembly).
    pub fn merge(&mut self, other: &SessionTrace) {
        for stage in Stage::ALL {
            let theirs = other.cells[stage.index()];
            let cell = &mut self.cells[stage.index()];
            cell.count += theirs.count;
            cell.total_ns = cell.total_ns.saturating_add(theirs.total_ns);
        }
    }

    /// The accumulator for one stage.
    pub fn get(&self, stage: Stage) -> StageCell {
        self.cells[stage.index()]
    }

    /// Iterates the non-empty stages in declaration order.
    pub fn stages(&self) -> impl Iterator<Item = (Stage, StageCell)> + '_ {
        Stage::ALL
            .into_iter()
            .map(|s| (s, self.cells[s.index()]))
            .filter(|(_, c)| c.count > 0)
    }

    /// Whether no span was ever recorded.
    pub fn is_empty(&self) -> bool {
        self.cells.iter().all(|c| c.count == 0)
    }

    /// Total recorded time across all stages, in nanoseconds.
    pub fn total_ns(&self) -> u64 {
        self.cells.iter().map(|c| c.total_ns).sum()
    }

    /// Renders the non-empty stages as a JSON object:
    /// `{"backend":{"count":4,"ms":1.203},...}`. Stage order is
    /// [`Stage::ALL`]; an empty trace renders as `{}`.
    pub fn to_json(&self) -> String {
        let mut out = String::from("{");
        for (i, (stage, cell)) in self.stages().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&format!(
                "\"{}\":{{\"count\":{},\"ms\":{:.3}}}",
                stage.name(),
                cell.count,
                cell.total_ms()
            ));
        }
        out.push('}');
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn record_and_merge_accumulate() {
        let mut a = SessionTrace::new();
        a.record_ns(Stage::Backend, 1_000);
        a.record_ns(Stage::Backend, 2_000);
        a.record_ns(Stage::Parse, 500);
        assert_eq!(
            a.get(Stage::Backend),
            StageCell {
                count: 2,
                total_ns: 3_000
            }
        );
        let mut b = SessionTrace::new();
        b.record_ns(Stage::Backend, 10);
        b.record_ns(Stage::Sim, 7);
        a.merge(&b);
        assert_eq!(
            a.get(Stage::Backend),
            StageCell {
                count: 3,
                total_ns: 3_010
            }
        );
        assert_eq!(a.get(Stage::Sim).count, 1);
        assert_eq!(a.total_ns(), 3_517);
        assert!(!a.is_empty());
        assert!(SessionTrace::new().is_empty());
    }

    #[test]
    fn equality_ignores_durations() {
        let mut a = SessionTrace::new();
        let mut b = SessionTrace::new();
        a.record_ns(Stage::Check, 1);
        b.record_ns(Stage::Check, 999_999);
        assert_eq!(a, b, "same counts, different wall-clock");
        b.record_ns(Stage::Check, 1);
        assert_ne!(a, b, "counts diverged");
    }

    #[test]
    fn time_runs_the_closure_and_records() {
        let mut t = SessionTrace::new();
        let v = t.time(Stage::Sim, || 41 + 1);
        assert_eq!(v, 42);
        assert_eq!(t.get(Stage::Sim).count, 1);
    }

    #[test]
    fn json_renders_nonempty_stages_in_order() {
        let mut t = SessionTrace::new();
        t.record_ns(Stage::Sim, 2_000_000);
        t.record_ns(Stage::PromptRender, 1_000_000);
        let j = t.to_json();
        assert_eq!(
            j,
            "{\"prompt_render\":{\"count\":1,\"ms\":1.000},\"sim\":{\"count\":1,\"ms\":2.000}}"
        );
        assert_eq!(SessionTrace::new().to_json(), "{}");
    }

    #[test]
    fn stage_names_are_unique_and_stable() {
        let names: std::collections::BTreeSet<_> = Stage::ALL.iter().map(|s| s.name()).collect();
        assert_eq!(names.len(), Stage::COUNT);
        assert_eq!(Stage::ALL[Stage::Backend.index()], Stage::Backend);
    }
}

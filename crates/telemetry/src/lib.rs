//! Zero-dependency observability for the synthesis fleet.
//!
//! The workspace builds offline, so the usual `metrics`/`tracing`
//! ecosystem is unavailable; this crate implements the slice the fleet
//! actually needs, in two layers:
//!
//! * [`trace`] — **session-stage tracing**. A [`SessionTrace`] is a
//!   fixed array of per-[`Stage`] `{count, total_ns}` cells carried on
//!   synthesis/repair outcomes. Recording is two relaxed integer adds;
//!   nothing in the pipeline ever *reads* a trace mid-session, so
//!   timing can never influence session content (the determinism guard
//!   in `cosynth-fleet` pins this).
//! * [`registry`] — a **metrics registry** for the long-running fleetd
//!   surface: named monotonic counters, gauges, and fixed-bucket log2
//!   latency histograms. Hot-path updates are relaxed atomics into
//!   per-worker shards (one cache line per shard); [`Registry::snapshot`]
//!   merges the shards into plain numbers. Histograms export
//!   [`criterion::SampleStats`]-compatible percentiles so `BENCH_*.json`
//!   writers and the `{"event":"metrics"}` line speak the same schema.
//! * [`prom`] — **Prometheus text exposition** over
//!   [`registry::Snapshot`]: counters/gauges/labeled families and
//!   cumulative histogram buckets in scrape format 0.0.4, the payload
//!   behind `fleetd`'s `GET /metrics` endpoint.
//!
//! Everything is `std`-only; the only workspace dependency is the
//! criterion shim, for the shared [`SampleStats`] spread type.
//!
//! [`SampleStats`]: criterion::SampleStats

pub mod prom;
pub mod registry;
pub mod trace;

pub use registry::{
    CounterId, GaugeId, HistId, HistSnapshot, LabeledId, LabeledSnapshot, Registry, Snapshot,
    StageHists,
};
pub use trace::{SessionTrace, Stage, StageCell};

//! The E11 extension: leverage as a function of network size and seed —
//! the distribution behind the paper's "5x to 10x" conclusion.
//!
//! ```sh
//! cargo run --release --example leverage_sweep
//! ```

use cosynth::SynthesisSession;
use llm_sim::{ErrorModel, SimulatedGpt4};

fn main() {
    println!(
        "{:>6} {:>6} {:>6} {:>6} {:>9} {:>9}",
        "n_isps", "seed", "auto", "human", "leverage", "verified"
    );
    let mut ratios = Vec::new();
    for n in [2usize, 3, 4, 5, 6, 7, 8] {
        for seed in 0u64..5 {
            let mut llm = SimulatedGpt4::new(ErrorModel::paper_default(), seed);
            let o = SynthesisSession::default().run(&mut llm, n);
            let ok = o.verified_local && o.global.holds();
            println!(
                "{n:>6} {seed:>6} {:>6} {:>6} {:>9.2} {ok:>9}",
                o.leverage.auto,
                o.leverage.human,
                o.leverage.ratio()
            );
            if ok {
                ratios.push(o.leverage.ratio());
            }
        }
    }
    ratios.sort_by(|a, b| a.partial_cmp(b).unwrap());
    let mean = ratios.iter().sum::<f64>() / ratios.len() as f64;
    let median = ratios[ratios.len() / 2];
    println!("\nverified runs: {}", ratios.len());
    println!(
        "leverage mean {mean:.1}x | median {median:.1}x | min {:.1}x | max {:.1}x",
        ratios.first().unwrap(),
        ratios.last().unwrap()
    );
    println!("paper's band: 5x-10x");
}

//! The local-synthesis use case in detail: generates the Figure 4 star,
//! shows the Modularizer's per-router prompts, drives the per-router VPP
//! loops, and attests the global no-transit policy with the BGP
//! simulator.
//!
//! ```sh
//! cargo run --example no_transit_star [n_isps] [seed]
//! ```

use cosynth::{Modularizer, SynthesisSession};
use llm_sim::{ErrorModel, SimulatedGpt4};

fn main() {
    let n_isps = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(6usize);
    let seed = std::env::args()
        .nth(2)
        .and_then(|s| s.parse().ok())
        .unwrap_or(7u64);

    let (topology, roles) = topo_model::star(n_isps);
    println!("=== Topology (Figure 4 star, {n_isps} ISPs) ===\n");
    println!("{}", topo_model::describe_network(&topology));

    println!("=== Modularizer: the hub's prompt ===\n");
    let assignments = Modularizer::assign(&topology, &roles);
    println!("{}", assignments[0].prompt);

    let mut llm = SimulatedGpt4::new(ErrorModel::paper_default(), seed);
    let outcome = SynthesisSession::default().run_on(&mut llm, &topology, &roles);

    println!("=== Results ===");
    println!("local checks verified: {}", outcome.verified_local);
    println!("{}", outcome.leverage);
    println!(
        "global no-transit holds: {} ({} sim rounds)",
        outcome.global.holds(),
        outcome.global.sim_rounds
    );
    for v in &outcome.global.violations {
        println!("violation: {v:?}");
    }

    println!(
        "\n=== R1's final configuration ===\n{}",
        outcome.configs["R1"]
    );
    assert!(outcome.global.holds(), "global policy must hold");
}

//! The Section 4.1 ablation: specifying the global no-transit policy all
//! at once (with whole-network counterexample feedback) versus the
//! Lightyear-style local decomposition. The paper found GPT-4 "confused
//! and oscillating between incorrect strategies" under the global style.
//!
//! ```sh
//! cargo run --example global_vs_local [seed]
//! ```

use cosynth::{SpecStyle, SynthesisSession};
use llm_sim::{ErrorModel, SimulatedGpt4};

fn main() {
    let seed = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(7u64);

    println!("=== Global specification style ===");
    let mut llm = SimulatedGpt4::new(ErrorModel::paper_default(), seed);
    let session = SynthesisSession {
        style: SpecStyle::Global,
        ..Default::default()
    };
    let global = session.run(&mut llm, 3);
    println!("converged: {}", global.converged);
    println!("global policy holds: {}", global.global.holds());
    println!("{}", global.leverage);
    println!("(the model oscillates between whole-network strategies)");

    println!("\n=== Local specification style ===");
    let mut llm = SimulatedGpt4::new(ErrorModel::paper_default(), seed);
    let local = SynthesisSession::default().run(&mut llm, 3);
    println!("converged: {}", local.converged);
    println!("global policy holds: {}", local.global.holds());
    println!("{}", local.leverage);

    assert!(!global.converged && local.converged);
    println!("\nConclusion (matches the paper): modular verification needs modular synthesis —");
    println!("local specifications localize errors to specific routers and route maps,");
    println!("so the LLM can act on the feedback.");
}

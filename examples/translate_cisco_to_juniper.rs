//! The translation use case in detail: prints the full VPP transcript —
//! every automated and human prompt, the regenerated Table 2, and the
//! final verified Juniper configuration.
//!
//! ```sh
//! cargo run --example translate_cisco_to_juniper [seed]
//! ```

use cosynth::{report, PromptKind, TranslationSession};
use llm_sim::{ErrorModel, SimulatedGpt4};

const CISCO: &str = include_str!("../testdata/ios-border.cfg");

fn main() {
    let seed = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(7u64);
    println!("=== Original Cisco configuration ===\n{CISCO}");
    let mut llm = SimulatedGpt4::new(ErrorModel::paper_default(), seed);
    let outcome = TranslationSession::default().run(&mut llm, CISCO);

    println!("=== VPP transcript (seed {seed}) ===");
    for (i, p) in outcome.log.iter().enumerate() {
        let tag = match p.kind {
            PromptKind::Task => "TASK ",
            PromptKind::Auto => "AUTO ",
            PromptKind::Human => "HUMAN",
        };
        println!("{i:>3} [{tag}] {}", p.prompt.lines().next().unwrap_or(""));
    }

    println!("\n=== {} ===", outcome.leverage);
    println!("\n{}", report::table2(&outcome.error_rows));
    println!(
        "=== Final verified Juniper configuration ===\n{}",
        outcome.final_config
    );
    assert!(outcome.verified, "session must end verified");
}

//! Quickstart: run both of the paper's use cases end to end in a few
//! lines each.
//!
//! ```sh
//! cargo run --example quickstart
//! ```

use cosynth::{SynthesisSession, TranslationSession};
use llm_sim::{ErrorModel, SimulatedGpt4};

const CISCO: &str = include_str!("../testdata/ios-border.cfg");

fn main() {
    // Use case 1: translate a Cisco config to Juniper under Verified
    // Prompt Programming. The LLM here is the calibrated GPT-4
    // simulation; any `llm_sim::LanguageModel` implementation works.
    let mut llm = SimulatedGpt4::new(ErrorModel::paper_default(), 7);
    let outcome = TranslationSession::default().run(&mut llm, CISCO);
    println!("translation verified: {}", outcome.verified);
    println!("  {}", outcome.leverage);
    println!(
        "  errors fixed by generated prompts: {}/{}",
        outcome
            .error_rows
            .iter()
            .filter(|r| r.fixed_by_auto)
            .count(),
        outcome.error_rows.len()
    );

    // Use case 2: synthesize no-transit configs for the Figure 4 star
    // (hub + 6 ISP-facing routers) and attest the global policy by
    // whole-network BGP simulation.
    let mut llm = SimulatedGpt4::new(ErrorModel::paper_default(), 7);
    let outcome = SynthesisSession::default().run(&mut llm, 6);
    println!(
        "\nno-transit synthesis verified: {}",
        outcome.verified_local
    );
    println!("  {}", outcome.leverage);
    println!("  global no-transit holds: {}", outcome.global.holds());
    println!(
        "  BGP simulation converged in {} rounds",
        outcome.global.sim_rounds
    );
}

//! Property tests on the vendor front ends and the cross-vendor
//! translation path: parse∘print identity, translation invariance, and
//! the full Cisco → IR → Junos → IR equivalence under Campion-lite.
//! Devices are generated from a seeded PRNG (the build is offline, so no
//! external property-testing crate).

use config_ir::{from_cisco, from_juniper, to_cisco, to_juniper, Device, IrBgp, IrNeighbor};
use cosynth_repro::testrand::Rng;
use net_model::{Asn, Community, Prefix, PrefixPattern};
use std::collections::BTreeSet;
use std::net::Ipv4Addr;

const CASES: usize = 64;

fn prefix24(rng: &mut Rng) -> Prefix {
    let a = rng.range(1, 201);
    let b = rng.below(256);
    format!("{a}.{b}.0.0/24").parse().unwrap()
}

fn community(rng: &mut Rng) -> Community {
    Community::new(rng.range(1, 1000) as u16, rng.below(10) as u16)
}

/// Generates a random but well-formed device in the supported feature
/// space: interfaces, a BGP process with neighbors and policies over
/// prefix sets / community sets with ge/le bounds and MED/LP modifiers.
fn random_device(rng: &mut Rng) -> Device {
    let prefixes: Vec<Prefix> = (0..rng.range(1, 4)).map(|_| prefix24(rng)).collect();
    let communities: Vec<Community> = (0..rng.range(1, 3)).map(|_| community(rng)).collect();
    let asn = rng.range(1, 60000) as u32;
    let med = rng.below(500) as u32;
    let additive = rng.coin();

    let mut d = Device::named("gen");
    // Prefix set with bounds derived from the generator.
    let patterns: Vec<PrefixPattern> = prefixes
        .iter()
        .map(|p| {
            let spread = rng.below(9) as u8;
            if rng.coin() {
                PrefixPattern::exact(*p)
            } else {
                let hi = (p.len() + spread).min(32);
                PrefixPattern::with_bounds(*p, Some(p.len()), Some(hi)).unwrap()
            }
        })
        .collect();
    d.prefix_sets
        .push(config_ir::IrPrefixSet::permitting("nets", patterns));
    for (i, c) in communities.iter().enumerate() {
        d.community_sets
            .push(config_ir::IrCommunitySet::single(format!("cs{i}"), *c));
    }
    let mut p = config_ir::IrPolicy::new("export-map");
    let mut clause = config_ir::IrClause {
        id: "10".into(),
        action: config_ir::ClauseAction::Permit,
        conditions: vec![config_ir::Condition::prefix_set("nets")],
        modifiers: vec![config_ir::Modifier::SetMed(med)],
    };
    clause.modifiers.push(config_ir::Modifier::SetCommunities {
        communities: BTreeSet::from([communities[0]]),
        additive,
    });
    p.clauses.push(clause);
    p.clauses.push(config_ir::IrClause::deny_all("100"));
    d.policies.push(p);
    let mut iface = config_ir::IrInterface::named("Ethernet0/0");
    iface.address = Some("10.0.0.1/24".parse().unwrap());
    d.interfaces.push(iface);
    let mut bgp = IrBgp::new(Asn(asn));
    bgp.router_id = Some(Ipv4Addr::new(1, 0, 0, 1));
    bgp.networks.push("10.0.0.0/24".parse().unwrap());
    let mut n = IrNeighbor::new("10.0.0.2".parse().unwrap());
    n.remote_as = Some(Asn(asn % 100 + 1));
    n.send_community = true;
    n.export_policy.push("export-map".into());
    bgp.neighbors.push(n);
    d.bgp = Some(bgp);
    d
}

/// Cisco emission → parse → lower is the identity on the IR.
#[test]
fn cisco_roundtrip_preserves_ir() {
    let mut rng = Rng::new(0xc15c0);
    for case in 0..CASES {
        let d = random_device(&mut rng);
        let (ast, notes) = to_cisco(&d);
        assert!(notes.is_empty(), "case {case}: {notes:?}");
        let text = cisco_cfg::print(&ast);
        let (reparsed, warnings) = cisco_cfg::parse(&text);
        assert!(warnings.is_empty(), "case {case}: {warnings:?}\n{text}");
        let (d2, _) = from_cisco(&reparsed);
        assert_eq!(&d.bgp, &d2.bgp, "case {case}");
        assert_eq!(&d.policies, &d2.policies, "case {case}");
        assert_eq!(&d.prefix_sets, &d2.prefix_sets, "case {case}");
        assert_eq!(&d.community_sets, &d2.community_sets, "case {case}");
    }
}

/// Junos emission → parse → lower preserves behaviour: the reference
/// translation shows no Campion differences against the original.
#[test]
fn translation_has_no_campion_findings() {
    let mut rng = Rng::new(0x10005);
    for case in 0..CASES {
        let d = random_device(&mut rng);
        let (jcfg, _) = to_juniper(&d);
        let text = juniper_cfg::print(&jcfg);
        let (reparsed, warnings) = juniper_cfg::parse(&text);
        assert!(warnings.is_empty(), "case {case}: {warnings:?}\n{text}");
        let (d2, _) = from_juniper(&reparsed);
        let findings = campion_lite::compare(&d, &d2);
        assert!(findings.is_empty(), "case {case}: {findings:#?}\n{text}");
    }
}

/// Printing is idempotent for both vendors.
#[test]
fn printers_are_idempotent() {
    let mut rng = Rng::new(0x1de4);
    for case in 0..CASES {
        let d = random_device(&mut rng);
        let (cast, _) = to_cisco(&d);
        let once = cisco_cfg::print(&cast);
        let (re, _) = cisco_cfg::parse(&once);
        assert_eq!(&once, &cisco_cfg::print(&re), "case {case}");
        let (jast, _) = to_juniper(&d);
        let jonce = juniper_cfg::print(&jast);
        let (jre, _) = juniper_cfg::parse(&jonce);
        assert_eq!(&jonce, &juniper_cfg::print(&jre), "case {case}");
    }
}

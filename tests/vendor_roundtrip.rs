//! Property tests on the vendor front ends and the cross-vendor
//! translation path: parse∘print identity, translation invariance, and
//! the full Cisco → IR → Junos → IR equivalence under Campion-lite.

use config_ir::{from_cisco, from_juniper, to_cisco, to_juniper, Device, IrBgp, IrNeighbor};
use net_model::{Asn, Community, Prefix, PrefixPattern};
use proptest::prelude::*;
use std::collections::BTreeSet;
use std::net::Ipv4Addr;

prop_compose! {
    fn arb_prefix24()(a in 1u8..=200, b in 0u8..=255) -> Prefix {
        format!("{a}.{b}.0.0/24").parse().unwrap()
    }
}

prop_compose! {
    fn arb_community()(h in 1u16..1000, l in 0u16..10) -> Community {
        Community::new(h, l)
    }
}

/// Generates a random but well-formed device in the supported feature
/// space: interfaces, a BGP process with neighbors and policies over
/// prefix sets / community sets with ge/le bounds and MED/LP modifiers.
fn arb_device() -> impl Strategy<Value = Device> {
    (
        prop::collection::vec(arb_prefix24(), 1..4),
        prop::collection::vec(arb_community(), 1..3),
        1u32..60000,
        prop::collection::vec((0u8..9, prop::bool::ANY), 1..4),
        0u32..500,
        prop::bool::ANY,
    )
        .prop_map(|(prefixes, communities, asn, spreads, med, additive)| {
            let mut d = Device::named("gen");
            // Prefix set with bounds derived from the generator.
            let patterns: Vec<PrefixPattern> = prefixes
                .iter()
                .zip(spreads.iter().cycle())
                .map(|(p, (spread, exact))| {
                    if *exact {
                        PrefixPattern::exact(*p)
                    } else {
                        let hi = (p.len() + spread).min(32);
                        PrefixPattern::with_bounds(*p, Some(p.len()), Some(hi)).unwrap()
                    }
                })
                .collect();
            d.prefix_sets
                .push(config_ir::IrPrefixSet::permitting("nets", patterns));
            for (i, c) in communities.iter().enumerate() {
                d.community_sets
                    .push(config_ir::IrCommunitySet::single(format!("cs{i}"), *c));
            }
            let mut p = config_ir::IrPolicy::new("export-map");
            let mut clause = config_ir::IrClause {
                id: "10".into(),
                action: config_ir::ClauseAction::Permit,
                conditions: vec![config_ir::Condition::prefix_set("nets")],
                modifiers: vec![config_ir::Modifier::SetMed(med)],
            };
            clause.modifiers.push(config_ir::Modifier::SetCommunities {
                communities: BTreeSet::from([communities[0]]),
                additive,
            });
            p.clauses.push(clause);
            p.clauses.push(config_ir::IrClause::deny_all("100"));
            d.policies.push(p);
            let mut iface = config_ir::IrInterface::named("Ethernet0/0");
            iface.address = Some("10.0.0.1/24".parse().unwrap());
            d.interfaces.push(iface);
            let mut bgp = IrBgp::new(Asn(asn));
            bgp.router_id = Some(Ipv4Addr::new(1, 0, 0, 1));
            bgp.networks.push("10.0.0.0/24".parse().unwrap());
            let mut n = IrNeighbor::new("10.0.0.2".parse().unwrap());
            n.remote_as = Some(Asn(asn % 100 + 1));
            n.send_community = true;
            n.export_policy.push("export-map".into());
            bgp.neighbors.push(n);
            d.bgp = Some(bgp);
            d
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Cisco emission → parse → lower is the identity on the IR.
    #[test]
    fn cisco_roundtrip_preserves_ir(d in arb_device()) {
        let (ast, notes) = to_cisco(&d);
        prop_assert!(notes.is_empty(), "{notes:?}");
        let text = cisco_cfg::print(&ast);
        let (reparsed, warnings) = cisco_cfg::parse(&text);
        prop_assert!(warnings.is_empty(), "{warnings:?}\n{text}");
        let (d2, _) = from_cisco(&reparsed);
        prop_assert_eq!(&d.bgp, &d2.bgp);
        prop_assert_eq!(&d.policies, &d2.policies);
        prop_assert_eq!(&d.prefix_sets, &d2.prefix_sets);
        prop_assert_eq!(&d.community_sets, &d2.community_sets);
    }

    /// Junos emission → parse → lower preserves behaviour: the reference
    /// translation shows no Campion differences against the original.
    #[test]
    fn translation_has_no_campion_findings(d in arb_device()) {
        let (jcfg, _) = to_juniper(&d);
        let text = juniper_cfg::print(&jcfg);
        let (reparsed, warnings) = juniper_cfg::parse(&text);
        prop_assert!(warnings.is_empty(), "{warnings:?}\n{text}");
        let (d2, _) = from_juniper(&reparsed);
        let findings = campion_lite::compare(&d, &d2);
        prop_assert!(findings.is_empty(), "{findings:#?}\n{text}");
    }

    /// Printing is idempotent for both vendors.
    #[test]
    fn printers_are_idempotent(d in arb_device()) {
        let (cast, _) = to_cisco(&d);
        let once = cisco_cfg::print(&cast);
        let (re, _) = cisco_cfg::parse(&once);
        prop_assert_eq!(&once, &cisco_cfg::print(&re));
        let (jast, _) = to_juniper(&d);
        let jonce = juniper_cfg::print(&jast);
        let (jre, _) = juniper_cfg::parse(&jonce);
        prop_assert_eq!(&jonce, &juniper_cfg::print(&jre));
    }
}

//! End-to-end integration: the translation use case across crates —
//! vendor front ends, IR, Campion-lite, the humanizer, the simulated
//! GPT-4, and the session driver.

use cosynth::{PromptKind, TranslationSession};
use llm_sim::{ErrorModel, FaultKind, SimulatedGpt4};

const CISCO: &str = include_str!("../testdata/ios-border.cfg");

/// Checks that the final config of a verified session is semantically
/// equivalent to the original under Campion-lite.
fn assert_equivalent(final_junos: &str) {
    let (cast, w) = cisco_cfg::parse(CISCO);
    assert!(w.is_empty());
    let (original, _) = config_ir::from_cisco(&cast);
    let parsed = bf_lite::parse_config(final_junos, Some(bf_lite::Vendor::Juniper));
    assert!(parsed.is_clean(), "{:?}", parsed.warnings);
    let findings = campion_lite::compare(&original, &parsed.device);
    assert!(findings.is_empty(), "{findings:#?}");
}

#[test]
fn verified_sessions_end_semantically_equivalent() {
    for seed in [0u64, 1, 7, 13, 42] {
        let mut llm = SimulatedGpt4::new(ErrorModel::paper_default(), seed);
        let outcome = TranslationSession::default().run(&mut llm, CISCO);
        assert!(outcome.verified, "seed {seed} did not verify");
        assert_equivalent(&outcome.final_config);
    }
}

#[test]
fn table2_shape_holds_across_seeds() {
    // Table 2's shape: the two policy-error hard cases (prefix lengths,
    // redistribution) are never fixed by generated prompts; everything
    // else is.
    for seed in [0u64, 7, 99] {
        let mut llm = SimulatedGpt4::new(ErrorModel::paper_default(), seed);
        let outcome = TranslationSession::default().run(&mut llm, CISCO);
        let by_error = |needle: &str| {
            outcome
                .error_rows
                .iter()
                .find(|r| r.error.contains(needle))
                .unwrap_or_else(|| panic!("row '{needle}' missing (seed {seed})"))
        };
        assert!(!by_error("prefix lengths").fixed_by_auto, "seed {seed}");
        assert!(!by_error("redistribution").fixed_by_auto, "seed {seed}");
        assert!(by_error("MED").fixed_by_auto, "seed {seed}");
        assert!(by_error("OSPF link cost").fixed_by_auto, "seed {seed}");
        assert!(by_error("local-as").fixed_by_auto, "seed {seed}");
    }
}

#[test]
fn leverage_in_paper_band() {
    let mut ratios = Vec::new();
    for seed in 0u64..8 {
        let mut llm = SimulatedGpt4::new(ErrorModel::paper_default(), seed);
        let outcome = TranslationSession::default().run(&mut llm, CISCO);
        assert!(outcome.verified);
        assert_eq!(
            outcome.leverage.human, 2,
            "seed {seed}: exactly the two hard cases"
        );
        ratios.push(outcome.leverage.ratio());
    }
    let mean = ratios.iter().sum::<f64>() / ratios.len() as f64;
    assert!(
        (4.0..=14.0).contains(&mean),
        "mean leverage {mean:.1} outside the plausible band ({ratios:?})"
    );
}

#[test]
fn task_prompt_is_not_counted_in_leverage() {
    let mut llm = SimulatedGpt4::new(ErrorModel::flawless(), 0);
    let outcome = TranslationSession::default().run(&mut llm, CISCO);
    assert!(outcome.verified);
    assert_eq!(outcome.leverage.auto + outcome.leverage.human, 0);
    assert_eq!(outcome.log.len(), 1, "only the task prompt was sent");
    assert_eq!(outcome.log[0].kind, PromptKind::Task);
}

#[test]
fn single_fault_sessions_converge_for_every_translation_fault() {
    for fault in FaultKind::TRANSLATION {
        let mut llm = SimulatedGpt4::new(ErrorModel::only(fault), 5);
        let outcome = TranslationSession::default().run(&mut llm, CISCO);
        assert!(outcome.verified, "{fault:?} session failed");
        assert_equivalent(&outcome.final_config);
    }
}

#[test]
fn reference_translation_needs_no_loop_at_all() {
    // The reference translator is the fixed point the loop converges to.
    let (junos, notes) = config_ir::reference_translate_cisco_to_juniper(CISCO);
    assert!(notes.is_empty(), "{notes:?}");
    assert_equivalent(&junos);
}

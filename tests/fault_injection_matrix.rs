//! The failure-injection contract, tested as a matrix: every fault class
//! the simulated GPT-4 can produce is (a) detected by its intended
//! verifier, (b) humanized into a prompt the model recognizes, and
//! (c) repaired or escalated exactly per its documented behaviour.

use cosynth::{SynthesisSession, TranslationSession};
use llm_sim::{ErrorModel, FaultKind, RepairBehavior, SimulatedGpt4};
use std::collections::BTreeSet;

const CISCO: &str = include_str!("../testdata/ios-border.cfg");

/// (a)+(b)+(c) for every translation fault, one at a time.
#[test]
fn every_translation_fault_detected_and_resolved() {
    for fault in FaultKind::TRANSLATION {
        // (a) Detection: the faulty draft is distinguishable from clean.
        let clean = llm_sim::translate_task::TranslationDraft::new(CISCO, BTreeSet::new());
        let faulty = llm_sim::translate_task::TranslationDraft::new(CISCO, BTreeSet::from([fault]));
        assert_ne!(
            clean.render(),
            faulty.render(),
            "{fault:?} must change the draft"
        );
        let parsed = bf_lite::parse_config(&faulty.render(), Some(bf_lite::Vendor::Juniper));
        let (cast, _) = cisco_cfg::parse(CISCO);
        let (original, _) = config_ir::from_cisco(&cast);
        let campion = campion_lite::compare(&original, &parsed.device);
        assert!(
            !parsed.warnings.is_empty() || !campion.is_empty(),
            "{fault:?} must be visible to a verifier"
        );
        // (c) Resolution: a session with only this fault ends verified,
        // with humans involved exactly when the catalogue says so.
        let mut llm = SimulatedGpt4::new(ErrorModel::only(fault), 17);
        let outcome = TranslationSession::default().run(&mut llm, CISCO);
        assert!(outcome.verified, "{fault:?} session must verify");
        let expected_humans = match fault.repair() {
            RepairBehavior::AutoFixable => 0,
            RepairBehavior::NeedsHuman | RepairBehavior::NeedsHumanWithSyntaxDetour => 1,
        };
        assert_eq!(
            outcome.leverage.human, expected_humans,
            "{fault:?}: human prompt count"
        );
    }
}

/// The same matrix for the synthesis faults, run on the Figure 4 star's
/// hub (where every synthesis fault class is applicable).
#[test]
fn every_synthesis_fault_detected_and_resolved() {
    for fault in FaultKind::SYNTHESIS {
        let mut model = ErrorModel::only(fault);
        // The IIP-preventable classes need the IIP ignored to appear.
        model.respect_iip = !fault.iip_preventable();
        let mut llm = SimulatedGpt4::new(model, 23);
        let session = SynthesisSession::default();
        let outcome = session.run(&mut llm, 3);
        assert!(outcome.verified_local, "{fault:?}: local loops must verify");
        assert!(
            outcome.global.holds(),
            "{fault:?}: global policy must hold after repair: {:#?}",
            outcome.global.violations
        );
        let expected_humans = match fault.repair() {
            RepairBehavior::AutoFixable => 0,
            _ => 1,
        };
        assert_eq!(
            outcome.leverage.human, expected_humans,
            "{fault:?}: human prompt count ({})",
            outcome.leverage
        );
    }
}

/// Regression pathologies: with reintroduction forced on, sessions still
/// terminate and leverage accounting stays consistent.
#[test]
fn heavy_regression_still_converges() {
    let mut model = ErrorModel::paper_default();
    model.p_regress_new = 0.6;
    model.p_reintroduce = 0.4;
    for seed in 0u64..3 {
        let mut llm = SimulatedGpt4::new(model.clone(), seed);
        let outcome = TranslationSession::default().run(&mut llm, CISCO);
        assert!(outcome.verified, "seed {seed} must still converge");
        assert_eq!(outcome.leverage.human, 2, "seed {seed}");
        assert!(
            outcome.leverage.auto >= 8,
            "regressions must cost extra automated prompts (seed {seed}: {})",
            outcome.leverage
        );
    }
}

/// The flawless ablation: no faults → no prompts → leverage structurally
/// collapses (the paper's "a future GPT-6" remark).
#[test]
fn flawless_model_needs_no_verifier_corrections() {
    let mut llm = SimulatedGpt4::new(ErrorModel::flawless(), 0);
    let t = TranslationSession::default().run(&mut llm, CISCO);
    assert!(t.verified);
    assert_eq!((t.leverage.auto, t.leverage.human), (0, 0));
    let mut llm = SimulatedGpt4::new(ErrorModel::flawless(), 0);
    let s = SynthesisSession::default().run(&mut llm, 6);
    assert!(s.global.holds());
    assert_eq!((s.leverage.auto, s.leverage.human), (0, 0));
}

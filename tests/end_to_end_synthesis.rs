//! End-to-end integration: the no-transit synthesis use case — the
//! Modularizer, topology verifier, local policy checks, Composer, and
//! the BGP simulator, driven through the full VPP loop.

use cosynth::{GlobalViolation, SpecStyle, SynthesisSession};
use llm_sim::{ErrorModel, SimulatedGpt4};

#[test]
fn stars_of_several_sizes_verify_and_hold_no_transit() {
    for n in [2usize, 4, 6] {
        let mut llm = SimulatedGpt4::new(ErrorModel::paper_default(), 3);
        let outcome = SynthesisSession::default().run(&mut llm, n);
        assert!(outcome.verified_local, "n={n}");
        assert!(
            outcome.global.holds(),
            "n={n}: {:#?} {:#?}",
            outcome.global.violations,
            outcome.global.session_problems
        );
    }
}

#[test]
fn figure4_star_has_two_human_prompts() {
    // With ≥2 edges both hard cases (AND/OR stanzas, misplaced neighbor
    // lines) apply, and only those two escalate.
    for seed in [0u64, 7, 21] {
        let mut llm = SimulatedGpt4::new(ErrorModel::paper_default(), seed);
        let outcome = SynthesisSession::default().run(&mut llm, 6);
        assert!(outcome.verified_local, "seed {seed}");
        assert_eq!(
            outcome.leverage.human, 2,
            "seed {seed}: {}",
            outcome.leverage
        );
    }
}

#[test]
fn synthesized_hub_filters_with_or_semantics() {
    // After the session, R1's egress filters must deny each community
    // independently — the OR-shaped fix of the paper's AND/OR bug.
    let mut llm = SimulatedGpt4::new(ErrorModel::paper_default(), 7);
    let outcome = SynthesisSession::default().run(&mut llm, 3);
    let parsed = bf_lite::parse_config(&outcome.configs["R1"], None);
    assert!(parsed.is_clean());
    for (edge, others) in [("R2", ["101:1", "102:1"]), ("R3", ["100:1", "102:1"])] {
        for c in others {
            let check = bf_lite::LocalPolicyCheck::RoutesWithCommunityDenied {
                chain: vec![format!("FILTER_COMM_OUT_{edge}")],
                community: c.parse().unwrap(),
            };
            assert!(
                bf_lite::check_local_policy(&parsed.device, &check).is_ok(),
                "{edge} must deny {c}"
            );
        }
    }
}

#[test]
fn global_spec_style_oscillates_without_converging() {
    let mut llm = SimulatedGpt4::new(ErrorModel::paper_default(), 9);
    let session = SynthesisSession {
        style: SpecStyle::Global,
        ..Default::default()
    };
    let outcome = session.run(&mut llm, 3);
    assert!(!outcome.converged);
    assert!(!outcome.global.holds());
    // The oscillation produced transit leaks or reachability failures.
    assert!(!outcome.global.violations.is_empty());
}

#[test]
fn violations_identify_the_offending_pair() {
    // Build correct configs, then break exactly one egress filter and
    // confirm the composer's violation names the right ISP pair.
    let (topology, roles) = topo_model::star(3);
    let mut llm = SimulatedGpt4::new(ErrorModel::flawless(), 0);
    let outcome = SynthesisSession::default().run_on(&mut llm, &topology, &roles);
    assert!(outcome.global.holds());
    let mut configs = outcome.configs.clone();
    // Remove the filter map attachment toward R2 from R1's config.
    let r1 = configs["R1"]
        .lines()
        .filter(|l| !l.contains("route-map FILTER_COMM_OUT_R2 out"))
        .collect::<Vec<_>>()
        .join("\n");
    configs.insert("R1".into(), r1);
    let report = cosynth::compose_and_check(&topology, &roles, &configs);
    assert!(!report.holds());
    for v in &report.violations {
        match v {
            GlobalViolation::TransitLeak { to_isp, .. } => {
                assert_eq!(to_isp, "ISP-2", "only ISP-2's filter was removed");
            }
            other => panic!("unexpected violation {other:?}"),
        }
    }
}

#[test]
fn iip_database_reduces_total_prompts() {
    let mut with_total = 0usize;
    let mut without_total = 0usize;
    for seed in 0u64..4 {
        let mut llm = SimulatedGpt4::new(ErrorModel::paper_default(), seed);
        let o = SynthesisSession::default().run(&mut llm, 3);
        with_total += o.leverage.auto + o.leverage.human;
        let mut llm = SimulatedGpt4::new(ErrorModel::without_iip(), seed);
        let s = SynthesisSession {
            iips: cosynth::IipDatabase::empty(),
            ..Default::default()
        };
        let o = s.run(&mut llm, 3);
        without_total += o.leverage.auto + o.leverage.human;
    }
    assert!(
        without_total > with_total,
        "IIPs must reduce total prompt count: {without_total} vs {with_total}"
    );
}

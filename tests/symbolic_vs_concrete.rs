//! Property tests: the symbolic policy engine and the concrete evaluator
//! must agree on every route — the two interpreters keep each other
//! honest. Policies, routes and devices are generated randomly.

use config_ir::{
    ClauseAction, Condition, Device, IrClause, IrCommunitySet, IrPolicy, IrPrefixSet, Modifier,
    PolicyEnv,
};
use net_model::{Community, Prefix, PrefixPattern, Protocol, RouteAdvertisement};
use policy_symbolic::{walk_policy, RouteSpace, SymState};
use proptest::prelude::*;
use std::collections::BTreeSet;
use std::net::Ipv4Addr;

/// The community universe the generators draw from.
fn universe() -> Vec<Community> {
    vec![
        "100:1".parse().unwrap(),
        "101:1".parse().unwrap(),
        "200:5".parse().unwrap(),
    ]
}

prop_compose! {
    fn arb_prefix()(bits in any::<u32>(), len in 0u8..=32) -> Prefix {
        Prefix::new(Ipv4Addr::from(bits), len).unwrap()
    }
}

prop_compose! {
    fn arb_pattern()(p in arb_prefix(), spread in 0u8..=8, from_len in prop::bool::ANY) -> PrefixPattern {
        let lo = p.len();
        let hi = (lo + spread).min(32);
        if from_len {
            PrefixPattern::with_bounds(p, Some(lo), Some(hi)).unwrap()
        } else {
            PrefixPattern::exact(p)
        }
    }
}

fn arb_condition() -> impl Strategy<Value = Condition> {
    prop_oneof![
        prop::collection::vec(arb_pattern(), 1..3).prop_map(|patterns| Condition::MatchPrefix {
            sets: vec![],
            patterns,
        }),
        prop::sample::select(vec![0usize, 1, 2]).prop_map(|i| {
            Condition::MatchCommunity(vec![format!("cs{i}")])
        }),
        prop::sample::select(Protocol::ALL.to_vec())
            .prop_map(|p| Condition::MatchProtocol(vec![p])),
    ]
}

fn arb_modifier() -> impl Strategy<Value = Modifier> {
    prop_oneof![
        (prop::sample::select(universe()), prop::bool::ANY).prop_map(|(c, additive)| {
            Modifier::SetCommunities {
                communities: BTreeSet::from([c]),
                additive,
            }
        }),
        (0u32..1000).prop_map(Modifier::SetMed),
        (0u32..500).prop_map(Modifier::SetLocalPref),
        prop::sample::select(vec![0usize, 1, 2])
            .prop_map(|i| Modifier::DeleteCommunities(format!("cs{i}"))),
    ]
}

fn arb_clause(id: usize) -> impl Strategy<Value = IrClause> {
    (
        prop::sample::select(vec![
            ClauseAction::Permit,
            ClauseAction::Deny,
            ClauseAction::FallThrough,
        ]),
        prop::collection::vec(arb_condition(), 0..3),
        prop::collection::vec(arb_modifier(), 0..3),
    )
        .prop_map(move |(action, conditions, modifiers)| IrClause {
            id: id.to_string(),
            action,
            conditions,
            modifiers,
        })
}

fn arb_policy() -> impl Strategy<Value = IrPolicy> {
    (
        prop::collection::vec(arb_clause(0), 1..5),
        prop::bool::ANY,
    )
        .prop_map(|(mut clauses, default_permit)| {
            for (i, c) in clauses.iter_mut().enumerate() {
                c.id = ((i + 1) * 10).to_string();
            }
            IrPolicy {
                name: "p".into(),
                clauses,
                default_action: if default_permit {
                    ClauseAction::Permit
                } else {
                    ClauseAction::Deny
                },
            }
        })
}

/// A device with the fixed named sets the generators reference.
fn device_with(policy: IrPolicy) -> Device {
    let mut d = Device::named("r");
    let u = universe();
    for (i, c) in u.iter().enumerate() {
        d.community_sets
            .push(IrCommunitySet::single(format!("cs{i}"), *c));
    }
    d.prefix_sets.push(IrPrefixSet::permitting(
        "fixed",
        vec![PrefixPattern::orlonger("10.0.0.0/8".parse().unwrap())],
    ));
    d.policies.push(policy);
    d
}

prop_compose! {
    fn arb_route()(
        bits in any::<u32>(),
        len in 0u8..=32,
        carry in prop::collection::btree_set(prop::sample::select(universe()), 0..=3),
        proto in prop::sample::select(Protocol::ALL.to_vec()),
    ) -> RouteAdvertisement {
        let mut r = RouteAdvertisement::of_protocol(
            Prefix::new(Ipv4Addr::from(bits), len).unwrap(),
            proto,
        );
        r.communities = carry;
        r
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// The headline agreement property: symbolic permit space equals the
    /// concrete evaluator's verdict on every sampled route.
    #[test]
    fn symbolic_and_concrete_agree(policy in arb_policy(), routes in prop::collection::vec(arb_route(), 1..8)) {
        let d = device_with(policy);
        let mut space = RouteSpace::for_devices(&[&d]);
        // All universe communities must be present even if the random
        // policy doesn't mention them (routes may carry them).
        let mut full = BTreeSet::new();
        full.extend(universe());
        full.extend(d.community_universe());
        let mut space_full = RouteSpace::new(full, BTreeSet::new());
        let _ = &mut space; // the narrow space is intentionally unused
        let init = SymState::input(&mut space_full);
        let top = space_full.mgr.top();
        let result = walk_policy(&mut space_full, &d, d.policy("p").unwrap(), top, &init, None);
        let env = PolicyEnv::new(&d);
        for route in routes {
            let a = space_full.encode(&route);
            let symbolic = space_full.mgr.eval(result.permit, |v| a[v as usize]);
            let concrete = config_ir::eval_policy(&env, d.policy("p").unwrap(), &route);
            prop_assert_eq!(symbolic, concrete.is_permit(), "route {}", route);
            // When permitted, output communities agree too.
            if let config_ir::PolicyOutcome::Permit(out) = concrete {
                for c in universe() {
                    let sym_has = result
                        .out
                        .comm
                        .get(&c)
                        .map(|f| space_full.mgr.eval(*f, |v| a[v as usize]))
                        .unwrap_or(false);
                    prop_assert_eq!(sym_has, out.communities.contains(&c), "community {} on {}", c, route);
                }
            }
        }
    }

    /// Permit and deny spaces always partition the whole route space.
    #[test]
    fn permit_deny_partition(policy in arb_policy()) {
        let d = device_with(policy);
        let mut space = RouteSpace::for_devices(&[&d]);
        let init = SymState::input(&mut space);
        let top = space.mgr.top();
        let r = walk_policy(&mut space, &d, d.policy("p").unwrap(), top, &init, None);
        prop_assert!(space.mgr.and(r.permit, r.deny).is_false());
        let union = space.mgr.or(r.permit, r.deny);
        prop_assert!(union.is_true());
    }
}

//! Property tests: the symbolic policy engine and the concrete evaluator
//! must agree on every route — the two interpreters keep each other
//! honest. Policies, routes and devices are generated from a seeded PRNG
//! (the build is offline, so no external property-testing crate).

use config_ir::{
    ClauseAction, Condition, Device, IrClause, IrCommunitySet, IrPolicy, IrPrefixSet, Modifier,
    PolicyEnv,
};
use cosynth_repro::testrand::Rng;
use net_model::{Community, Prefix, PrefixPattern, Protocol, RouteAdvertisement};
use policy_symbolic::{walk_policy, RouteSpace, SymState};
use std::collections::BTreeSet;
use std::net::Ipv4Addr;

/// The community universe the generators draw from.
fn universe() -> Vec<Community> {
    vec![
        "100:1".parse().unwrap(),
        "101:1".parse().unwrap(),
        "200:5".parse().unwrap(),
    ]
}

fn random_prefix(rng: &mut Rng) -> Prefix {
    let bits = rng.next_u64() as u32;
    let len = rng.below(33) as u8;
    Prefix::new(Ipv4Addr::from(bits), len).unwrap()
}

fn random_pattern(rng: &mut Rng) -> PrefixPattern {
    let p = random_prefix(rng);
    let spread = rng.below(9) as u8;
    let lo = p.len();
    let hi = (lo + spread).min(32);
    if rng.coin() {
        PrefixPattern::with_bounds(p, Some(lo), Some(hi)).unwrap()
    } else {
        PrefixPattern::exact(p)
    }
}

fn random_condition(rng: &mut Rng) -> Condition {
    match rng.below(3) {
        0 => Condition::MatchPrefix {
            sets: vec![],
            patterns: (0..rng.range(1, 3)).map(|_| random_pattern(rng)).collect(),
        },
        1 => Condition::MatchCommunity(vec![format!("cs{}", rng.below(3))]),
        _ => Condition::MatchProtocol(vec![
            Protocol::ALL[rng.below(Protocol::ALL.len() as u64) as usize],
        ]),
    }
}

fn random_modifier(rng: &mut Rng) -> Modifier {
    let u = universe();
    match rng.below(4) {
        0 => Modifier::SetCommunities {
            communities: BTreeSet::from([u[rng.below(3) as usize]]),
            additive: rng.coin(),
        },
        1 => Modifier::SetMed(rng.below(1000) as u32),
        2 => Modifier::SetLocalPref(rng.below(500) as u32),
        _ => Modifier::DeleteCommunities(format!("cs{}", rng.below(3))),
    }
}

fn random_policy(rng: &mut Rng) -> IrPolicy {
    let n_clauses = rng.range(1, 5);
    let mut clauses = Vec::new();
    for i in 0..n_clauses {
        let action = match rng.below(3) {
            0 => ClauseAction::Permit,
            1 => ClauseAction::Deny,
            _ => ClauseAction::FallThrough,
        };
        clauses.push(IrClause {
            id: ((i + 1) * 10).to_string(),
            action,
            conditions: (0..rng.below(3)).map(|_| random_condition(rng)).collect(),
            modifiers: (0..rng.below(3)).map(|_| random_modifier(rng)).collect(),
        });
    }
    IrPolicy {
        name: "p".into(),
        clauses,
        default_action: if rng.coin() {
            ClauseAction::Permit
        } else {
            ClauseAction::Deny
        },
    }
}

/// A device with the fixed named sets the generators reference.
fn device_with(policy: IrPolicy) -> Device {
    let mut d = Device::named("r");
    let u = universe();
    for (i, c) in u.iter().enumerate() {
        d.community_sets
            .push(IrCommunitySet::single(format!("cs{i}"), *c));
    }
    d.prefix_sets.push(IrPrefixSet::permitting(
        "fixed",
        vec![PrefixPattern::orlonger("10.0.0.0/8".parse().unwrap())],
    ));
    d.policies.push(policy);
    d
}

fn random_route(rng: &mut Rng) -> RouteAdvertisement {
    let u = universe();
    let mut r = RouteAdvertisement::of_protocol(
        random_prefix(rng),
        Protocol::ALL[rng.below(Protocol::ALL.len() as u64) as usize],
    );
    for c in u {
        if rng.coin() {
            r.communities.insert(c);
        }
    }
    r
}

/// The headline agreement property: symbolic permit space equals the
/// concrete evaluator's verdict on every sampled route, and output
/// communities agree on permitted routes.
#[test]
fn symbolic_and_concrete_agree() {
    let mut rng = Rng::new(0xa9ee);
    for case in 0..128 {
        let d = device_with(random_policy(&mut rng));
        // All universe communities must be present even if the random
        // policy doesn't mention them (routes may carry them).
        let mut full = BTreeSet::new();
        full.extend(universe());
        full.extend(d.community_universe());
        let mut space = RouteSpace::new(full, BTreeSet::new());
        let init = SymState::input(&mut space);
        let top = space.mgr.top();
        let result = walk_policy(&mut space, &d, d.policy("p").unwrap(), top, &init, None);
        let env = PolicyEnv::new(&d);
        for _ in 0..rng.range(1, 8) {
            let route = random_route(&mut rng);
            let a = space.encode(&route);
            let symbolic = space.mgr.eval(result.permit, |v| a[v as usize]);
            let concrete = config_ir::eval_policy(&env, d.policy("p").unwrap(), &route);
            assert_eq!(symbolic, concrete.is_permit(), "case {case}: route {route}");
            // When permitted, output communities agree too.
            if let config_ir::PolicyOutcome::Permit(out) = concrete {
                for c in universe() {
                    let sym_has = result
                        .out
                        .comm
                        .get(&c)
                        .map(|f| space.mgr.eval(*f, |v| a[v as usize]))
                        .unwrap_or(false);
                    assert_eq!(
                        sym_has,
                        out.communities.contains(&c),
                        "case {case}: community {c} on {route}"
                    );
                }
            }
        }
    }
}

/// Permit and deny spaces always partition the whole route space.
#[test]
fn permit_deny_partition() {
    let mut rng = Rng::new(0x9a27);
    for case in 0..128 {
        let d = device_with(random_policy(&mut rng));
        let mut space = RouteSpace::for_devices(&[&d]);
        let init = SymState::input(&mut space);
        let top = space.mgr.top();
        let r = walk_policy(&mut space, &d, d.policy("p").unwrap(), top, &init, None);
        assert!(
            space.mgr.and(r.permit, r.deny).is_false(),
            "case {case}: overlap"
        );
        let union = space.mgr.or(r.permit, r.deny);
        assert!(union.is_true(), "case {case}: not exhaustive");
    }
}

//! # cosynth-repro — the reproduction umbrella crate
//!
//! Re-exports every workspace crate under one roof so the examples in
//! `examples/` and the integration tests in `tests/` have a single import
//! point. Library users should depend on the individual crates
//! (`cosynth`, `bf-lite`, …) directly; this crate exists for the
//! reproduction package's own binaries and tests.

pub use bdd;
pub use bf_lite;
pub use campion_lite;
pub use cisco_cfg;
pub use config_ir;
pub use cosynth;
pub use juniper_cfg;
pub use llm_sim;
pub use net_model;
pub use policy_symbolic;
pub use topo_model;

/// The bundled border-router configuration used by the translation
/// experiments (same feature classes as the Batfish example the paper
/// used).
pub const BORDER_CFG: &str = include_str!("../testdata/ios-border.cfg");

#[cfg(test)]
mod tests {
    #[test]
    fn bundled_config_is_clean_cisco() {
        let parsed = super::bf_lite::parse_config(super::BORDER_CFG, None);
        assert_eq!(parsed.vendor, super::bf_lite::Vendor::Cisco);
        assert!(parsed.is_clean(), "{:?}", parsed.warnings);
        assert!(parsed.device.bgp.is_some());
    }
}

//! # cosynth-repro — the reproduction umbrella crate
//!
//! Re-exports every workspace crate under one roof so the examples in
//! `examples/` and the integration tests in `tests/` have a single import
//! point. Library users should depend on the individual crates
//! (`cosynth`, `bf-lite`, …) directly; this crate exists for the
//! reproduction package's own binaries and tests.

pub use bdd;
pub use bf_lite;
pub use campion_lite;
pub use cisco_cfg;
pub use config_ir;
pub use cosynth;
pub use cosynth_fleet;
pub use fault_inject;
pub use juniper_cfg;
pub use llm_sim;
pub use net_model;
pub use policy_symbolic;
pub use scenario_gen;
pub use telemetry;
pub use topo_model;

/// The bundled border-router configuration used by the translation
/// experiments (same feature classes as the Batfish example the paper
/// used).
pub const BORDER_CFG: &str = include_str!("../testdata/ios-border.cfg");

/// Deterministic randomness for the integration property tests in
/// `tests/` — a self-contained splitmix64 stream, since the offline
/// build has no property-testing crate. Not a public API.
#[doc(hidden)]
pub mod testrand {
    /// A seeded generator for test-case synthesis: convenience wrapper
    /// over the workspace's one splitmix64 implementation
    /// ([`llm_sim::rng::SimRng`]), so the stream definition lives in
    /// exactly one place.
    pub struct Rng(llm_sim::rng::SimRng);

    impl Rng {
        /// Seeds the stream.
        pub fn new(seed: u64) -> Rng {
            Rng(llm_sim::rng::SimRng::seed_from_u64(seed))
        }

        /// Next raw 64-bit value.
        pub fn next_u64(&mut self) -> u64 {
            self.0.next_u64()
        }

        /// Uniform draw in `[0, n)`.
        pub fn below(&mut self, n: u64) -> u64 {
            self.next_u64() % n
        }

        /// Uniform draw in `[lo, hi)`.
        pub fn range(&mut self, lo: u64, hi: u64) -> u64 {
            lo + self.below(hi - lo)
        }

        /// Fair coin.
        pub fn coin(&mut self) -> bool {
            self.next_u64() & 1 == 1
        }
    }
}

#[cfg(test)]
mod tests {
    #[test]
    fn bundled_config_is_clean_cisco() {
        let parsed = super::bf_lite::parse_config(super::BORDER_CFG, None);
        assert_eq!(parsed.vendor, super::bf_lite::Vendor::Cisco);
        assert!(parsed.is_clean(), "{:?}", parsed.warnings);
        assert!(parsed.device.bgp.is_some());
    }
}
